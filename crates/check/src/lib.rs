//! `stj-check`: the differential & metamorphic correctness harness.
//!
//! The pipeline's value proposition is deciding topological relations
//! *without* computing DE-9IM, so any silent disagreement with the ST2
//! oracle is a correctness bug. This crate systematically hunts for such
//! disagreements: a seeded adversarial pair corpus
//! ([`stj_datagen::adversarial`]) is pushed through every join method and
//! four invariants are enforced on each pair:
//!
//! - **(a) method agreement** — P+C, ST2, OP2 and APRIL all report the
//!   DE-9IM oracle's most specific relation;
//! - **(b) converse symmetry** — `find_relation(r, s)` is the converse
//!   of `find_relation(s, r)`;
//! - **(c) MBR-class admissibility** — the result is always in
//!   `MbrRelation::candidates()` for the pair's class;
//! - **(d) APRIL soundness** — `P ⊆ C` per object, no intermediate
//!   filter verdict contradicts refinement, and every `relate_p`
//!   predicate answer matches the DE-9IM semantics of the predicate.
//!
//! On failure the offending pair is shrunk to a (locally) minimal
//! counterexample and reported with WKT geometry so the repro can be
//! replayed (`stj relate` accepts the same WKT). Runs are deterministic
//! in the seed and independent of the thread count.

mod invariants;
mod report;
mod runner;
mod shrink;

pub use invariants::{check_pair, InvariantKind, PairVerdict};
pub use report::write_repro;
pub use runner::{run_check, CheckConfig, CheckReport, Violation};
pub use shrink::shrink_pair;
