//! The per-pair invariants (a)–(e), checked against the DE-9IM oracle,
//! plus the dataset-level executor-equivalence invariant (f) enforced by
//! the runner.

use stj_core::{
    find_relation, find_relation_april, find_relation_op2, find_relation_st2, intermediate_filter,
    relate_p, Dataset, IfOutcome, SpatialObject,
};
use stj_de9im::{relate, TopoRelation};
use stj_geom::Polygon;
use stj_index::MbrRelation;
use stj_raster::Grid;
use stj_store::{open_arena_from_bytes, write_arena_v2};

/// Which invariant a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// (a) A join method disagreed with the oracle's most specific
    /// relation.
    MethodAgreement,
    /// (b) `find_relation(s, r)` is not the converse of
    /// `find_relation(r, s)`.
    ConverseSymmetry,
    /// (c) The result is outside `MbrRelation::candidates()` for the
    /// pair's MBR class.
    MbrAdmissibility,
    /// (d) An APRIL approximation or filter verdict contradicts DE-9IM.
    AprilSoundness,
    /// (e) The pair answers differently after a v2 write / zero-copy
    /// open round trip through [`stj_core::DatasetArena`].
    StorageFidelity,
    /// (f) The streaming and materialized `TopologyJoin` executors
    /// disagree on links, stats, or candidate counts over a dataset
    /// assembled from the adversarial corpus (checked once per run by
    /// the runner, not per pair).
    ExecEquivalence,
    /// (g) The out-of-core driver over Hilbert-sharded files disagrees
    /// with the single-arena join on links, stats, or candidate counts
    /// — at one thread or at the run's thread count (checked once per
    /// run by the runner, over real shard files in a temp directory).
    ShardEquivalence,
    /// (h) The adaptive pipeline (`--adaptive on` / `force-skip`)
    /// disagrees with the static pipeline on links or per-relation
    /// counts over the adversarial corpus — at one thread or at the
    /// run's thread count (checked once per run by the runner).
    /// Skipping the APRIL stage only ever re-routes a pair to exact
    /// refinement, so any divergence is a bug.
    AdaptiveEquivalence,
}

impl InvariantKind {
    /// Every kind, in report order.
    pub const ALL: [InvariantKind; 8] = [
        InvariantKind::MethodAgreement,
        InvariantKind::ConverseSymmetry,
        InvariantKind::MbrAdmissibility,
        InvariantKind::AprilSoundness,
        InvariantKind::StorageFidelity,
        InvariantKind::ExecEquivalence,
        InvariantKind::ShardEquivalence,
        InvariantKind::AdaptiveEquivalence,
    ];

    /// Stable snake_case name, used as a key in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::MethodAgreement => "method_agreement",
            InvariantKind::ConverseSymmetry => "converse_symmetry",
            InvariantKind::MbrAdmissibility => "mbr_admissibility",
            InvariantKind::AprilSoundness => "april_soundness",
            InvariantKind::StorageFidelity => "storage_fidelity",
            InvariantKind::ExecEquivalence => "exec_equivalence",
            InvariantKind::ShardEquivalence => "shard_equivalence",
            InvariantKind::AdaptiveEquivalence => "adaptive_equivalence",
        }
    }
}

/// Outcome of checking one pair: either clean (with the pipeline's
/// decision stage, for filter-effectiveness accounting) or the first
/// invariant violated plus a human-readable detail line.
pub type PairVerdict = Result<stj_core::FindOutcome, (InvariantKind, String)>;

const ALL_RELATIONS: [TopoRelation; 8] = [
    TopoRelation::Disjoint,
    TopoRelation::Intersects,
    TopoRelation::Meets,
    TopoRelation::Equals,
    TopoRelation::Inside,
    TopoRelation::Contains,
    TopoRelation::CoveredBy,
    TopoRelation::Covers,
];

/// Checks invariants (a)–(e) for one polygon pair on `grid`.
///
/// Builds the APRIL approximations, runs every join method plus all
/// eight `relate_p` predicates, and compares everything against the
/// DE-9IM oracle; the pair is then pushed through a v2 write and
/// zero-copy open to confirm the arena-backed views answer
/// identically. Returns the first violation found.
pub fn check_pair(a: &Polygon, b: &Polygon, grid: &Grid) -> PairVerdict {
    let r = SpatialObject::build(a.clone(), grid);
    let s = SpatialObject::build(b.clone(), grid);

    // (d) structural half: P ⊆ C per object.
    for (label, obj) in [("a", &r), ("b", &s)] {
        if !obj.april.p.inside(&obj.april.c) {
            return Err((
                InvariantKind::AprilSoundness,
                format!("object {label}: APRIL P list not a subset of its C list"),
            ));
        }
    }

    let matrix = relate(a, b);
    let truth = TopoRelation::most_specific(&matrix);

    // (a) method agreement against the oracle.
    let pc = find_relation(r.view(), s.view());
    for (method, got) in [
        ("pc", pc),
        ("st2", find_relation_st2(r.view(), s.view())),
        ("op2", find_relation_op2(r.view(), s.view())),
        ("april", find_relation_april(r.view(), s.view())),
    ] {
        if got.relation != truth {
            return Err((
                InvariantKind::MethodAgreement,
                format!(
                    "{method} says {:?} (via {:?}), oracle says {truth:?}",
                    got.relation, got.determination
                ),
            ));
        }
    }

    // (b) converse symmetry.
    let rev = find_relation(s.view(), r.view());
    if rev.relation != truth.converse() {
        return Err((
            InvariantKind::ConverseSymmetry,
            format!(
                "find_relation(a,b) = {truth:?} but find_relation(b,a) = {:?} (expected {:?})",
                rev.relation,
                truth.converse()
            ),
        ));
    }

    // (c) admissibility: the truth must be in the MBR class candidates.
    let mbr_rel = MbrRelation::classify(&r.mbr, &s.mbr);
    if !mbr_rel.admits(truth) {
        return Err((
            InvariantKind::MbrAdmissibility,
            format!(
                "true relation {truth:?} outside candidates {:?} of MBR class {}",
                mbr_rel.candidates(),
                mbr_rel.name()
            ),
        ));
    }

    // (d) filter half: a Definite intermediate-filter verdict must match
    // the oracle...
    if !matches!(mbr_rel, MbrRelation::Disjoint | MbrRelation::Cross) {
        if let IfOutcome::Definite(rel) = intermediate_filter(mbr_rel, r.view(), s.view()) {
            if rel != truth {
                return Err((
                    InvariantKind::AprilSoundness,
                    format!(
                        "intermediate filter ({}) decided {rel:?}, oracle says {truth:?}",
                        mbr_rel.name()
                    ),
                ));
            }
        }
    }
    // ...and every relate_p predicate answer must match DE-9IM semantics.
    for p in ALL_RELATIONS {
        let out = relate_p(r.view(), s.view(), p);
        let expect = p.holds(&matrix);
        if out.holds != expect {
            return Err((
                InvariantKind::AprilSoundness,
                format!(
                    "relate_p({p:?}) = {} (via {:?}), DE-9IM says {expect}",
                    out.holds, out.determination
                ),
            ));
        }
    }

    // (e) storage fidelity: write the pair as an STJD v2 arena, reopen it
    // through the zero-copy path (bulk decode on platforms without it),
    // and require the borrowed views to answer exactly like the owned
    // objects did above.
    let ds = Dataset {
        name: "check-pair".to_string(),
        objects: vec![r.clone(), s.clone()],
    };
    let arena = ds.to_arena();
    let mut buf = Vec::new();
    if let Err(e) = write_arena_v2(&mut buf, &arena, grid) {
        return Err((
            InvariantKind::StorageFidelity,
            format!("v2 write failed: {e}"),
        ));
    }
    let reopened = match open_arena_from_bytes(&buf) {
        Ok((arena, _grid)) => arena,
        Err(e) => {
            return Err((
                InvariantKind::StorageFidelity,
                format!("v2 reopen failed: {e}"),
            ));
        }
    };
    let (zr, zs) = (reopened.object(0), reopened.object(1));
    let zc = find_relation(zr, zs);
    if zc.relation != pc.relation || zc.determination != pc.determination {
        return Err((
            InvariantKind::StorageFidelity,
            format!(
                "reopened arena says {:?} (via {:?}), owned objects said {:?} (via {:?})",
                zc.relation, zc.determination, pc.relation, pc.determination
            ),
        ));
    }
    for p in ALL_RELATIONS {
        let owned = relate_p(r.view(), s.view(), p);
        let stored = relate_p(zr, zs, p);
        if stored.holds != owned.holds || stored.determination != owned.determination {
            return Err((
                InvariantKind::StorageFidelity,
                format!(
                    "relate_p({p:?}) diverges after reopen: stored {} (via {:?}), owned {} (via {:?})",
                    stored.holds, stored.determination, owned.holds, owned.determination
                ),
            ));
        }
    }

    Ok(pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::Rect;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 8)
    }

    #[test]
    fn clean_pairs_pass() {
        let a = Polygon::rect(Rect::from_coords(100.0, 100.0, 300.0, 300.0));
        let b = Polygon::rect(Rect::from_coords(150.0, 150.0, 250.0, 250.0));
        assert!(check_pair(&a, &b, &grid()).is_ok());
        // Shared edge (meets) — historically the risky case.
        let c = Polygon::rect(Rect::from_coords(300.0, 100.0, 500.0, 300.0));
        assert!(check_pair(&a, &c, &grid()).is_ok());
    }

    #[test]
    fn regression_degenerate_cross_witness() {
        // The pair that motivated the strict-spanning Cross fix: shares
        // exactly one diagonal edge, MBR spanning ties on two sides.
        let trap = Polygon::from_coords(
            vec![(60.0, 50.0), (100.0, 50.0), (100.0, 80.0), (40.0, 80.0)],
            vec![],
        )
        .unwrap();
        let tri =
            Polygon::from_coords(vec![(60.0, 50.0), (40.0, 80.0), (40.0, 40.0)], vec![]).unwrap();
        assert!(check_pair(&trap, &tri, &grid()).is_ok());
        assert!(check_pair(&tri, &trap, &grid()).is_ok());
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<_> = InvariantKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "method_agreement",
                "converse_symmetry",
                "mbr_admissibility",
                "april_soundness",
                "storage_fidelity",
                "exec_equivalence",
                "shard_equivalence",
                "adaptive_equivalence"
            ]
        );
    }
}
