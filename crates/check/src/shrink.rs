//! Greedy counterexample shrinking.
//!
//! When a pair violates an invariant, the raw generated geometry is
//! rarely minimal — stars carry dozens of irrelevant vertices. The
//! shrinker repeatedly applies size-reducing transformations (drop
//! holes, halve rings, delete single vertices, round coordinates) and
//! keeps any transform under which the *same* invariant still fails,
//! until a fixpoint or an evaluation budget is reached. The result is a
//! locally minimal repro for the WKT dump.

use crate::invariants::{check_pair, InvariantKind};
use stj_geom::{Point, Polygon, Ring};
use stj_raster::Grid;

/// Upper bound on re-checks during shrinking: failures should be rare,
/// and each evaluation rebuilds rasters and runs every method.
const EVAL_BUDGET: usize = 400;

/// Shrinks a failing pair while invariant `kind` keeps failing. Returns
/// the smallest pair found (possibly the input itself).
pub fn shrink_pair(
    a: &Polygon,
    b: &Polygon,
    grid: &Grid,
    kind: InvariantKind,
) -> (Polygon, Polygon) {
    let mut cur_a = a.clone();
    let mut cur_b = b.clone();
    let mut evals = 0usize;
    let still_fails = |x: &Polygon, y: &Polygon, evals: &mut usize| {
        *evals += 1;
        matches!(check_pair(x, y, grid), Err((k, _)) if k == kind)
    };

    let mut changed = true;
    while changed && evals < EVAL_BUDGET {
        changed = false;
        // Shrink each side in turn against the other's current form.
        for side in 0..2 {
            let target = if side == 0 { &cur_a } else { &cur_b };
            let mut accepted = None;
            for cand in candidates(target) {
                if evals >= EVAL_BUDGET {
                    break;
                }
                let ok = if side == 0 {
                    still_fails(&cand, &cur_b, &mut evals)
                } else {
                    still_fails(&cur_a, &cand, &mut evals)
                };
                if ok {
                    accepted = Some(cand);
                    break;
                }
            }
            if let Some(cand) = accepted {
                if side == 0 {
                    cur_a = cand;
                } else {
                    cur_b = cand;
                }
                changed = true;
            }
        }
    }
    (cur_a, cur_b)
}

/// Candidate smaller versions of `p`, most aggressive first. Every
/// candidate is strictly smaller (fewer holes or vertices) except the
/// final coordinate-rounding attempts, which simplify the repro without
/// changing counts.
fn candidates(p: &Polygon) -> Vec<Polygon> {
    let mut out = Vec::new();
    let outer = p.outer();
    let holes = p.holes();

    // Drop all holes, then each hole individually.
    if !holes.is_empty() {
        out.push(Polygon::new(outer.clone(), Vec::new()));
        if holes.len() > 1 {
            for skip in 0..holes.len() {
                let kept: Vec<Ring> = holes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, h)| h.clone())
                    .collect();
                out.push(Polygon::new(outer.clone(), kept));
            }
        }
    }

    // Halve the outer ring (keep every other vertex).
    let v = outer.vertices();
    if v.len() >= 6 {
        let halved: Vec<Point> = v.iter().step_by(2).copied().collect();
        push_rebuilt(&mut out, halved, holes);
    }

    // Delete single vertices.
    if v.len() > 3 {
        for i in 0..v.len() {
            let mut pts = v.to_vec();
            pts.remove(i);
            push_rebuilt(&mut out, pts, holes);
        }
    }

    // Round coordinates (whole units, then tenths) — often turns a
    // noisy float repro into a readable one.
    for scale in [1.0, 10.0] {
        let rounded: Vec<Point> = v
            .iter()
            .map(|q| Point::new((q.x * scale).round() / scale, (q.y * scale).round() / scale))
            .collect();
        if rounded != v {
            push_rebuilt(&mut out, rounded, holes);
        }
    }

    out
}

/// Rebuilds a polygon from candidate outer vertices, skipping invalid
/// rings (too few distinct vertices after dedup, zero area, ...).
fn push_rebuilt(out: &mut Vec<Polygon>, pts: Vec<Point>, holes: &[Ring]) {
    if let Ok(ring) = Ring::new(pts) {
        if ring.area() > 0.0 {
            out.push(Polygon::new(ring, holes.to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::Rect;

    #[test]
    fn shrinking_a_clean_pair_is_identity() {
        // No invariant fails, so no candidate is ever accepted.
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), 8);
        let a = Polygon::rect(Rect::from_coords(100.0, 100.0, 300.0, 300.0));
        let b = Polygon::rect(Rect::from_coords(200.0, 200.0, 400.0, 400.0));
        let (sa, sb) = shrink_pair(&a, &b, &grid, InvariantKind::MethodAgreement);
        assert_eq!(sa, a);
        assert_eq!(sb, b);
    }

    #[test]
    fn candidates_are_valid_and_smaller() {
        let p = Polygon::from_coords(
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.1, 5.0),
                (10.0, 10.0),
                (5.0, 10.2),
                (0.0, 10.0),
            ],
            vec![vec![(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]],
        )
        .unwrap();
        let cands = candidates(&p);
        assert!(!cands.is_empty());
        // First candidate drops the hole.
        assert!(cands[0].holes().is_empty());
        for c in &cands {
            assert!(c.outer().area() > 0.0);
            assert!(
                c.num_vertices() < p.num_vertices() || c.outer().vertices() != p.outer().vertices()
            );
        }
    }
}
