//! WKT repro dumps for failing runs.
//!
//! The dump is a WKT-per-line file with `#` comment headers, i.e. the
//! exact format `stj_store::wktio::read_wkt_polygons` (and `stj relate
//! --wkt`) consumes: each violation contributes two polygon lines
//! preceded by comments identifying the pair, the invariant broken and
//! the observed mismatch.

use crate::runner::CheckReport;
use std::io::Write;

/// Writes the shrunk repro geometry of every retained violation.
pub fn write_repro<W: Write>(w: &mut W, report: &CheckReport) -> std::io::Result<()> {
    writeln!(
        w,
        "# stj-check repro dump — seed {} pairs {} ({} violation(s), {} retained)",
        report.config.seed,
        report.pairs,
        report.total_violations(),
        report.violations.len()
    )?;
    for v in &report.violations {
        writeln!(w, "#")?;
        writeln!(
            w,
            "# pair {} category {} invariant {}",
            v.index,
            v.category,
            v.kind.name()
        )?;
        writeln!(w, "# {}", v.detail)?;
        writeln!(w, "{}", v.a_wkt)?;
        writeln!(w, "{}", v.b_wkt)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::InvariantKind;
    use crate::runner::{CheckConfig, Violation};
    use stj_core::PipelineStats;

    #[test]
    fn repro_dump_is_readable_wkt() {
        let report = CheckReport {
            config: CheckConfig::default(),
            pairs: 10,
            violation_counts: [1, 0, 0, 0, 0, 0, 0, 0],
            violations: vec![Violation {
                index: 4,
                category: "shared_edge",
                kind: InvariantKind::MethodAgreement,
                detail: "pc says Intersects, oracle says Meets".into(),
                a_wkt: "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))".into(),
                b_wkt: "POLYGON ((10 0, 20 0, 20 10, 10 10, 10 0))".into(),
            }],
            category_counts: [0; stj_datagen::adversarial::CATEGORIES.len()],
            pipeline: PipelineStats::default(),
            elapsed_ms: 0,
        };
        let mut buf = Vec::new();
        write_repro(&mut buf, &report).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("invariant method_agreement"));
        // The dump must parse back through the WKT reader.
        let polys = stj_store::wktio::read_wkt_polygons(text.as_bytes()).unwrap();
        assert_eq!(polys.len(), 2);
    }
}
