//! The differential check runner: drives the adversarial corpus through
//! the invariants, sequentially or across scoped threads, and aggregates
//! a machine-readable report.

use crate::invariants::{check_pair, InvariantKind};
use crate::shrink::shrink_pair;
use std::time::Instant;
use stj_core::{
    AdaptiveMode, Dataset, DatasetArena, ExecStrategy, Link, PipelineStats, TopologyJoin,
};
use stj_datagen::adversarial::{adversarial_pair, adversarial_space, CATEGORIES};
use stj_geom::wkt::polygon_to_wkt;
use stj_obs::Json;
use stj_raster::Grid;
use stj_store::{external_join_files, write_sharded, ShardedDataset};

/// Cap on the dataset assembled for the executor-equivalence invariant
/// (f): the first `min(pairs, cap)` adversarial pairs contribute their
/// `a` polygons to the left dataset and `b` polygons to the right one.
/// The corpus packs every object into the same 1000×1000 space, so the
/// candidate count grows quadratically with the sample — the cap keeps
/// the dataset join a bounded fraction of the run while still exercising
/// skew-split tiles, replication dedup, and every adversarial category.
const EXEC_SAMPLE_CAP: u64 = 2048;

/// Shard count for the out-of-core equivalence invariant (g). Three
/// shards per side keeps the check cheap while exercising every driver
/// path: multi-shard overlap scheduling, id remapping, and the
/// cross-shard merge.
const SHARD_COUNT: usize = 3;

/// Configuration of a check run.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// RNG seed; a run is fully determined by `(seed, pairs)`.
    pub seed: u64,
    /// Number of adversarial pairs to generate and check.
    pub pairs: u64,
    /// Worker threads (1 = sequential). Results are identical for any
    /// thread count — per-pair seeding makes generation order-free.
    pub threads: usize,
    /// Hilbert grid order for the APRIL rasterization (paper default
    /// territory; 8 → 256×256 cells over the adversarial data space).
    pub grid_order: u32,
    /// Maximum violations to keep (with shrunk WKT) in the report;
    /// counting continues past the cap.
    pub max_violations: usize,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            seed: 0,
            pairs: 1000,
            threads: 1,
            grid_order: 8,
            max_violations: 16,
        }
    }
}

/// One recorded invariant violation, already shrunk.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Pair index under the run's seed (replayable).
    pub index: u64,
    /// Adversarial category that produced the pair.
    pub category: &'static str,
    /// The invariant broken.
    pub kind: InvariantKind,
    /// Human-readable mismatch description (from the *original* pair).
    pub detail: String,
    /// Shrunk first polygon, as WKT.
    pub a_wkt: String,
    /// Shrunk second polygon, as WKT.
    pub b_wkt: String,
}

/// Aggregated result of a check run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The configuration that produced this report.
    pub config: CheckConfig,
    /// Pairs checked.
    pub pairs: u64,
    /// Violation count per invariant kind (indexed by `InvariantKind::ALL`
    /// order); counts all violations, not just the retained ones.
    pub violation_counts: [u64; InvariantKind::ALL.len()],
    /// Retained (shrunk) violations, at most `config.max_violations`.
    pub violations: Vec<Violation>,
    /// Pairs checked per adversarial category.
    pub category_counts: [u64; CATEGORIES.len()],
    /// P+C decision-stage mix over the clean pairs.
    pub pipeline: PipelineStats,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u64,
}

impl CheckReport {
    /// Total violations across all invariant kinds.
    pub fn total_violations(&self) -> u64 {
        self.violation_counts.iter().sum()
    }

    /// Whether the run found any invariant violation.
    pub fn has_violations(&self) -> bool {
        self.total_violations() > 0
    }

    /// Renders the `stj-check-report/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut counts = Json::Obj(vec![]);
        counts.push("total", Json::U64(self.total_violations()));
        for (kind, n) in InvariantKind::ALL.iter().zip(self.violation_counts) {
            counts.push(kind.name(), Json::U64(n));
        }
        let mut categories = Json::Obj(vec![]);
        for (name, n) in CATEGORIES.iter().zip(self.category_counts) {
            categories.push(name, Json::U64(n));
        }
        let failures: Vec<Json> = self
            .violations
            .iter()
            .map(|v| {
                Json::object([
                    ("index", Json::U64(v.index)),
                    ("category", Json::str(v.category)),
                    ("invariant", Json::str(v.kind.name())),
                    ("detail", Json::str(v.detail.clone())),
                    ("a_wkt", Json::str(v.a_wkt.clone())),
                    ("b_wkt", Json::str(v.b_wkt.clone())),
                ])
            })
            .collect();
        Json::object([
            ("schema", Json::str("stj-check-report/v1")),
            ("seed", Json::U64(self.config.seed)),
            ("pairs", Json::U64(self.pairs)),
            ("threads", Json::from(self.config.threads)),
            ("grid_order", Json::U64(self.config.grid_order as u64)),
            ("elapsed_ms", Json::U64(self.elapsed_ms)),
            ("violations", counts),
            ("categories", categories),
            (
                "pipeline",
                Json::object([
                    ("by_mbr", Json::U64(self.pipeline.by_mbr)),
                    ("by_intermediate", Json::U64(self.pipeline.by_intermediate)),
                    ("refined", Json::U64(self.pipeline.refined)),
                    (
                        "undetermined_pct",
                        Json::F64(self.pipeline.undetermined_pct()),
                    ),
                ]),
            ),
            ("failures", Json::Arr(failures)),
        ])
    }
}

/// Per-worker accumulator, merged after the scoped threads join.
#[derive(Default)]
struct WorkerState {
    violation_counts: [u64; InvariantKind::ALL.len()],
    violations: Vec<Violation>,
    category_counts: [u64; CATEGORIES.len()],
    pipeline: PipelineStats,
}

impl WorkerState {
    fn merge(&mut self, other: WorkerState) {
        for (a, b) in self.violation_counts.iter_mut().zip(other.violation_counts) {
            *a += b;
        }
        self.violations.extend(other.violations);
        for (a, b) in self.category_counts.iter_mut().zip(other.category_counts) {
            *a += b;
        }
        self.pipeline.merge(&other.pipeline);
    }
}

fn kind_slot(kind: InvariantKind) -> usize {
    InvariantKind::ALL.iter().position(|k| *k == kind).unwrap()
}

fn check_range(config: &CheckConfig, grid: &Grid, lo: u64, hi: u64) -> WorkerState {
    let mut state = WorkerState::default();
    for index in lo..hi {
        let pair = adversarial_pair(config.seed, index);
        state.category_counts[(index % CATEGORIES.len() as u64) as usize] += 1;
        match check_pair(&pair.a, &pair.b, grid) {
            Ok(outcome) => state.pipeline.record(&outcome),
            Err((kind, detail)) => {
                state.violation_counts[kind_slot(kind)] += 1;
                if state.violations.len() < config.max_violations {
                    let (sa, sb) = shrink_pair(&pair.a, &pair.b, grid, kind);
                    state.violations.push(Violation {
                        index,
                        category: pair.category,
                        kind,
                        detail,
                        a_wkt: polygon_to_wkt(&sa),
                        b_wkt: polygon_to_wkt(&sb),
                    });
                }
            }
        }
    }
    state
}

/// Invariant (f): over datasets assembled from the adversarial corpus
/// (pair `i`'s `a` polygon becomes left object `i`, its `b` polygon
/// right object `i`, capped at [`EXEC_SAMPLE_CAP`] pairs), the streaming
/// executor must reproduce the materialized executor's links, stats, and
/// candidate count exactly — sequentially and at the run's thread count.
fn check_exec_equivalence(config: &CheckConfig, grid: &Grid) -> Result<(), Violation> {
    let sample = config.pairs.min(EXEC_SAMPLE_CAP);
    if sample == 0 {
        return Ok(());
    }
    let (left, right) = sample_arenas(config, grid, sample);
    let threads = config.threads.max(1);

    let baseline = TopologyJoin::new()
        .strategy(ExecStrategy::Materialized)
        .threads(1)
        .run(&left, &right);
    let mut base_links = baseline.links.clone();
    base_links.sort_by_key(|l| (l.r, l.s));

    for t in [1, threads] {
        let got = TopologyJoin::new()
            .strategy(ExecStrategy::Streaming)
            .threads(t)
            .run(&left, &right);
        let mut got_links = got.links.clone();
        got_links.sort_by_key(|l| (l.r, l.s));
        let detail = if got.candidates != baseline.candidates {
            Some(format!(
                "streaming({t} thread(s)) examined {} candidates, materialized {}",
                got.candidates, baseline.candidates
            ))
        } else if got.stats != baseline.stats {
            Some(format!(
                "streaming({t} thread(s)) stats {:?} != materialized {:?}",
                got.stats, baseline.stats
            ))
        } else if got_links != base_links {
            Some(link_diff_detail(t, &base_links, &got_links))
        } else {
            None
        };
        if let Some(detail) = detail {
            // Repro geometry: the first divergent link's pair of objects
            // (left object i is adversarial pair i's `a`, right object j
            // is pair j's `b`), or pair 0 for stat-level mismatches.
            let (i, j) = first_link_diff(&base_links, &got_links).unwrap_or((0, 0));
            return Err(Violation {
                index: u64::from(i),
                category: "exec_dataset",
                kind: InvariantKind::ExecEquivalence,
                detail,
                a_wkt: polygon_to_wkt(&adversarial_pair(config.seed, u64::from(i)).a),
                b_wkt: polygon_to_wkt(&adversarial_pair(config.seed, u64::from(j)).b),
            });
        }
    }
    Ok(())
}

/// Assembles the invariant (f)/(g) sample datasets: adversarial pair
/// `i`'s `a` polygon becomes left object `i`, its `b` polygon right
/// object `i`.
fn sample_arenas(config: &CheckConfig, grid: &Grid, sample: u64) -> (DatasetArena, DatasetArena) {
    let mut lefts = Vec::with_capacity(sample as usize);
    let mut rights = Vec::with_capacity(sample as usize);
    for index in 0..sample {
        let pair = adversarial_pair(config.seed, index);
        lefts.push(pair.a);
        rights.push(pair.b);
    }
    let threads = config.threads.max(1);
    (
        Dataset::build_parallel("check-exec-a", lefts, grid, threads).to_arena(),
        Dataset::build_parallel("check-exec-b", rights, grid, threads).to_arena(),
    )
}

/// Invariant (g): the out-of-core driver over [`SHARD_COUNT`] Hilbert
/// shards per side — real STJD/STJM files written to a temp directory
/// and reopened (mapped where supported) — must reproduce the
/// single-arena streaming join's links, stats, and candidate count
/// exactly, sequentially and at the run's thread count.
fn check_shard_equivalence(config: &CheckConfig, grid: &Grid) -> Result<(), Violation> {
    let sample = config.pairs.min(EXEC_SAMPLE_CAP);
    if sample == 0 {
        return Ok(());
    }
    let pair0 = adversarial_pair(config.seed, 0);
    let io_violation = |detail: String| Violation {
        index: 0,
        category: "shard_dataset",
        kind: InvariantKind::ShardEquivalence,
        detail,
        a_wkt: polygon_to_wkt(&pair0.a),
        b_wkt: polygon_to_wkt(&pair0.b),
    };

    let (left, right) = sample_arenas(config, grid, sample);
    let threads = config.threads.max(1);
    let baseline = TopologyJoin::new().threads(1).run(&left, &right);
    let mut base_links = baseline.links.clone();
    base_links.sort_by_key(|l| (l.r, l.s));

    let dir = std::env::temp_dir().join(format!(
        "stj-check-shards-{}-{:x}",
        std::process::id(),
        config.seed
    ));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return Err(io_violation(format!("create {}: {e}", dir.display())));
    }
    let result = (|| {
        for (name, arena) in [("left", &left), ("right", &right)] {
            let path = dir.join(format!("{name}.stjm"));
            write_sharded(&path, arena, grid, SHARD_COUNT)
                .map_err(|e| io_violation(format!("shard {}: {e}", path.display())))?;
        }
        let open = |name: &str| {
            ShardedDataset::open(&dir.join(format!("{name}.stjm")))
                .map_err(|e| io_violation(format!("open sharded {name}: {e}")))
        };
        let (sleft, sright) = (open("left")?, open("right")?);
        for t in [1, threads] {
            let join = TopologyJoin::new().threads(t);
            let got = external_join_files(&join, &sleft, &sright)
                .map_err(|e| io_violation(format!("external join ({t} thread(s)): {e}")))?;
            // External links come back already sorted by `(r, s)`.
            let detail = if got.candidates != baseline.candidates {
                Some(format!(
                    "sharded({t} thread(s)) examined {} candidates, single-arena {}",
                    got.candidates, baseline.candidates
                ))
            } else if got.stats != baseline.stats {
                Some(format!(
                    "sharded({t} thread(s)) stats {:?} != single-arena {:?}",
                    got.stats, baseline.stats
                ))
            } else if got.links != base_links {
                let at = first_link_diff(&base_links, &got.links);
                Some(format!(
                    "sharded({t} thread(s)) produced {} links, single-arena {}; \
                     first divergence at {at:?}",
                    got.links.len(),
                    base_links.len()
                ))
            } else {
                None
            };
            if let Some(detail) = detail {
                let (i, j) = first_link_diff(&base_links, &got.links).unwrap_or((0, 0));
                return Err(Violation {
                    index: u64::from(i),
                    category: "shard_dataset",
                    kind: InvariantKind::ShardEquivalence,
                    detail,
                    a_wkt: polygon_to_wkt(&adversarial_pair(config.seed, u64::from(i)).a),
                    b_wkt: polygon_to_wkt(&adversarial_pair(config.seed, u64::from(j)).b),
                });
            }
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Invariant (h): the adaptive pipeline — warm-up (`on`) and immediate
/// skip (`force-skip`) — must reproduce the static pipeline's links and
/// per-relation counts exactly over the adversarial sample, at one
/// thread and at the run's thread count. The pipeline's stage split
/// (`by_intermediate` vs `refined`) legitimately moves when a cell skips
/// the APRIL stage, so only order-independent outputs are compared:
/// candidate count, pair count, MBR-stage decisions, sorted links, and
/// the per-relation link histogram.
fn check_adaptive_equivalence(config: &CheckConfig, grid: &Grid) -> Result<(), Violation> {
    let sample = config.pairs.min(EXEC_SAMPLE_CAP);
    if sample == 0 {
        return Ok(());
    }
    let (left, right) = sample_arenas(config, grid, sample);
    let threads = config.threads.max(1);

    let baseline = TopologyJoin::new().threads(1).run(&left, &right);
    let mut base_links = baseline.links.clone();
    base_links.sort_by_key(|l| (l.r, l.s));
    let relation_counts = |links: &[Link]| {
        let mut counts = std::collections::BTreeMap::new();
        for l in links {
            *counts.entry(format!("{}", l.relation)).or_insert(0u64) += 1;
        }
        counts
    };
    let base_relations = relation_counts(&base_links);

    for mode in [AdaptiveMode::On, AdaptiveMode::ForceSkip] {
        for t in [1, threads] {
            let got = TopologyJoin::new()
                .adaptive(mode)
                .threads(t)
                .run(&left, &right);
            let mut got_links = got.links.clone();
            got_links.sort_by_key(|l| (l.r, l.s));
            let label = format!("adaptive {} ({t} thread(s))", mode.label());
            let detail = if got.candidates != baseline.candidates {
                Some(format!(
                    "{label} examined {} candidates, static {}",
                    got.candidates, baseline.candidates
                ))
            } else if got.stats.pairs != baseline.stats.pairs
                || got.stats.by_mbr != baseline.stats.by_mbr
            {
                Some(format!(
                    "{label} pair/MBR counts ({}, {}) != static ({}, {})",
                    got.stats.pairs, got.stats.by_mbr, baseline.stats.pairs, baseline.stats.by_mbr
                ))
            } else if relation_counts(&got_links) != base_relations {
                Some(format!(
                    "{label} relation histogram {:?} != static {base_relations:?}",
                    relation_counts(&got_links)
                ))
            } else if got_links != base_links {
                let at = first_link_diff(&base_links, &got_links);
                Some(format!(
                    "{label} produced {} links, static {}; first divergence at {at:?}",
                    got_links.len(),
                    base_links.len()
                ))
            } else {
                None
            };
            if let Some(detail) = detail {
                let (i, j) = first_link_diff(&base_links, &got_links).unwrap_or((0, 0));
                return Err(Violation {
                    index: u64::from(i),
                    category: "adaptive_dataset",
                    kind: InvariantKind::AdaptiveEquivalence,
                    detail,
                    a_wkt: polygon_to_wkt(&adversarial_pair(config.seed, u64::from(i)).a),
                    b_wkt: polygon_to_wkt(&adversarial_pair(config.seed, u64::from(j)).b),
                });
            }
        }
    }
    Ok(())
}

/// The first `(r, s)` where the sorted link lists diverge.
fn first_link_diff(base: &[Link], got: &[Link]) -> Option<(u32, u32)> {
    for (a, b) in base.iter().zip(got) {
        if a != b {
            return Some((a.r, a.s));
        }
    }
    match base.len().cmp(&got.len()) {
        std::cmp::Ordering::Less => got.get(base.len()).map(|l| (l.r, l.s)),
        std::cmp::Ordering::Greater => base.get(got.len()).map(|l| (l.r, l.s)),
        std::cmp::Ordering::Equal => None,
    }
}

fn link_diff_detail(threads: usize, base: &[Link], got: &[Link]) -> String {
    let at = first_link_diff(base, got);
    format!(
        "streaming({threads} thread(s)) produced {} links, materialized {}; first divergence at {:?}",
        got.len(),
        base.len(),
        at
    )
}

/// Runs the differential check described by `config`.
pub fn run_check(config: &CheckConfig) -> CheckReport {
    let start = Instant::now();
    let grid = Grid::new(adversarial_space(), config.grid_order);
    let threads = config.threads.max(1);

    let mut state = WorkerState::default();
    if threads == 1 || config.pairs < 2 {
        state = check_range(config, &grid, 0, config.pairs);
    } else {
        let chunk = config.pairs.div_ceil(threads as u64);
        let grid_ref = &grid;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let lo = (t * chunk).min(config.pairs);
                    let hi = ((t + 1) * chunk).min(config.pairs);
                    scope.spawn(move || check_range(config, grid_ref, lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("check worker panicked"))
                .collect::<Vec<_>>()
        });
        for r in results {
            state.merge(r);
        }
    }

    // Invariants (f), (g), (h): dataset-level executor equivalence,
    // out-of-core shard equivalence, and adaptive-pipeline equivalence.
    for check in [
        check_exec_equivalence,
        check_shard_equivalence,
        check_adaptive_equivalence,
    ] {
        if let Err(v) = check(config, &grid) {
            state.violation_counts[kind_slot(v.kind)] += 1;
            state.violations.push(v);
        }
    }

    // Deterministic report order regardless of worker interleaving.
    state.violations.sort_by_key(|v| v.index);
    state.violations.truncate(config.max_violations);

    CheckReport {
        config: *config,
        pairs: config.pairs,
        violation_counts: state.violation_counts,
        violations: state.violations,
        category_counts: state.category_counts,
        pipeline: state.pipeline,
        elapsed_ms: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean_and_covers_categories() {
        let report = run_check(&CheckConfig {
            seed: 0xA11CE,
            pairs: 110,
            ..CheckConfig::default()
        });
        assert_eq!(report.pairs, 110);
        assert_eq!(
            report.total_violations(),
            0,
            "violations: {:?}",
            report.violations
        );
        assert!(report.category_counts.iter().all(|&n| n >= 10));
        assert_eq!(report.pipeline.pairs, 110);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = CheckConfig {
            seed: 7,
            pairs: 66,
            ..CheckConfig::default()
        };
        let seq = run_check(&base);
        let par = run_check(&CheckConfig { threads: 4, ..base });
        assert_eq!(seq.violation_counts, par.violation_counts);
        assert_eq!(seq.category_counts, par.category_counts);
        assert_eq!(seq.pipeline, par.pipeline);
    }

    #[test]
    fn report_json_has_the_schema_and_counts() {
        let report = run_check(&CheckConfig {
            seed: 3,
            pairs: 22,
            ..CheckConfig::default()
        });
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"schema\": \"stj-check-report/v1\""));
        assert!(rendered.contains("\"pairs\": 22"));
        assert!(rendered.contains("\"method_agreement\""));
        assert!(rendered.contains("\"april_soundness\""));
        assert!(rendered.contains("\"storage_fidelity\""));
        assert!(rendered.contains("\"exec_equivalence\""));
        assert!(rendered.contains("\"shard_equivalence\""));
        assert!(rendered.contains("\"adaptive_equivalence\""));
        assert!(rendered.contains("\"shared_edge\""));
    }
}
