//! Adversarial pair corpus for the differential check harness
//! (`crates/check`).
//!
//! Each pair is drawn from a category of constructions chosen to sit on
//! the decision boundaries of the P+C pipeline: exact shared edges,
//! vertex-only contact, hole boundaries, collinear slivers, pairs with
//! equal MBRs but different shapes, and the degenerate/tied MBR
//! alignments that motivated the strict-spanning `Cross` fix. Lattice
//! coordinates are used deliberately so that MBR sides tie *exactly* —
//! the regime where an unsound filter shortcut disagrees with DE-9IM.
//!
//! Generation is deterministic and order-independent: pair `index` under
//! `seed` is always the same polygons, regardless of how many pairs are
//! requested or how work is partitioned across threads. Categories
//! rotate round-robin by index so every run covers all of them.

use crate::pairs::pair_with_relation;
use crate::star::{star_polygon, StarParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stj_de9im::TopoRelation;
use stj_geom::{Point, Polygon, Rect, Ring};

/// The adversarial categories, in round-robin order.
pub const CATEGORIES: [&str; 11] = [
    "shared_edge",
    "vertex_touch",
    "hole_boundary",
    "collinear_sliver",
    "equal_mbr",
    "degenerate_cross",
    "nested",
    "equal",
    "axis_rect",
    "random_star",
    "disjoint_close",
];

/// The data space all adversarial pairs live in. Check runs rasterize on
/// a grid over exactly this extent.
pub fn adversarial_space() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

/// One generated pair plus the category that produced it.
#[derive(Clone, Debug)]
pub struct AdversarialPair {
    /// Category name (one of [`CATEGORIES`]).
    pub category: &'static str,
    /// First polygon of the pair.
    pub a: Polygon,
    /// Second polygon of the pair.
    pub b: Polygon,
}

/// SplitMix64 finalizer: decorrelates `(seed, index)` into a per-pair
/// RNG seed so generation is independent of iteration order.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates adversarial pair `index` under `seed`.
pub fn adversarial_pair(seed: u64, index: u64) -> AdversarialPair {
    let cat = (index % CATEGORIES.len() as u64) as usize;
    let mut rng = StdRng::seed_from_u64(mix(seed, index));
    let (mut a, mut b) = match cat {
        0 => shared_edge(&mut rng),
        1 => vertex_touch(&mut rng),
        2 => hole_boundary(&mut rng),
        3 => collinear_sliver(&mut rng),
        4 => equal_mbr(&mut rng),
        5 => degenerate_cross(&mut rng),
        6 => nested(&mut rng),
        7 => equal(&mut rng),
        8 => axis_rect(&mut rng),
        9 => random_star(&mut rng),
        _ => disjoint_close(&mut rng),
    };
    if rng.gen_bool(0.5) {
        std::mem::swap(&mut a, &mut b);
    }
    AdversarialPair {
        category: CATEGORIES[cat],
        a,
        b,
    }
}

/// A lattice coordinate in `[lo, hi]`, always a multiple of `step` —
/// ties between independently drawn values are common by design.
fn lattice<R: Rng>(rng: &mut R, lo: i64, hi: i64, step: f64) -> f64 {
    rng.gen_range(lo..=hi) as f64 * step
}

fn rect_poly(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    Polygon::rect(Rect::from_coords(x0, y0, x1, y1))
}

fn tri(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> Polygon {
    Polygon::from_coords(vec![a, b, c], vec![]).expect("triangle valid")
}

/// Two bodies sharing a boundary arc exactly: axis-aligned rects glued
/// along an edge (full, partial, or super-extent contact), or triangles
/// glued along a random diagonal segment.
fn shared_edge<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    if rng.gen_bool(0.5) {
        // Rects sharing (part of) the vertical edge x = x1.
        let x0 = lattice(rng, 0, 20, 20.0);
        let x1 = x0 + lattice(rng, 1, 10, 20.0);
        let y0 = lattice(rng, 1, 20, 20.0);
        let y1 = y0 + lattice(rng, 1, 10, 20.0);
        let x2 = x1 + lattice(rng, 1, 8, 20.0);
        // Right rect's y-range: equal, nested, offset, or point-touching.
        let (ry0, ry1) = match rng.gen_range(0u32..4) {
            0 => (y0, y1),
            1 => (y0 + (y1 - y0) * 0.25, y0 + (y1 - y0) * 0.75),
            2 => (y0 - 20.0, y0 + (y1 - y0) * 0.5),
            _ => (y1, y1 + 40.0), // corner contact only
        };
        (rect_poly(x0, y0, x1, y1), rect_poly(x1, ry0, x2, ry1))
    } else {
        // Triangles on opposite sides of a shared diagonal edge p–q.
        let p = Point::new(lattice(rng, 15, 30, 20.0), lattice(rng, 15, 30, 20.0));
        let q = Point::new(
            p.x + lattice(rng, 1, 5, 20.0),
            p.y + lattice(rng, -5, 5, 20.0),
        );
        let (q, p) = if q == p {
            (Point::new(p.x + 40.0, p.y + 20.0), p)
        } else {
            (q, p)
        };
        let mid = Point::new((p.x + q.x) / 2.0, (p.y + q.y) / 2.0);
        let (nx, ny) = (-(q.y - p.y), q.x - p.x);
        let t = rng.gen_range(0.3..1.2);
        let m1 = (mid.x + nx * t, mid.y + ny * t);
        let m2 = (mid.x - nx * t, mid.y - ny * t);
        (
            tri((p.x, p.y), (q.x, q.y), m1),
            tri((p.x, p.y), (q.x, q.y), m2),
        )
    }
}

/// Bodies touching at exactly one point: corner-to-corner rects, or a
/// triangle apex landing on a rect corner or edge interior.
fn vertex_touch<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let x0 = lattice(rng, 2, 20, 20.0);
    let y0 = lattice(rng, 2, 20, 20.0);
    let w = lattice(rng, 1, 8, 20.0);
    let h = lattice(rng, 1, 8, 20.0);
    let a = rect_poly(x0, y0, x0 + w, y0 + h);
    let b = match rng.gen_range(0u32..3) {
        // Corner-to-corner.
        0 => rect_poly(x0 + w, y0 + h, x0 + w + 40.0, y0 + h + 40.0),
        // Apex on a's top-right corner.
        1 => tri(
            (x0 + w, y0 + h),
            (x0 + w + 60.0, y0 + h + 20.0),
            (x0 + w + 20.0, y0 + h + 60.0),
        ),
        // Apex in the interior of a's right edge.
        _ => tri(
            (x0 + w, y0 + h / 2.0),
            (x0 + w + 60.0, y0),
            (x0 + w + 60.0, y0 + h),
        ),
    };
    (a, b)
}

/// A square annulus (square with a square hole) against a body placed
/// relative to the hole: strictly inside it (disjoint), filling it
/// exactly (meets along the full hole ring), or poking across it.
fn hole_boundary<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let u = lattice(rng, 0, 15, 20.0);
    let w = lattice(rng, 8, 16, 20.0);
    let m = lattice(rng, 2, 3, 20.0); // hole margin
    let (h0, h1) = (u + m, u + w - m);
    let outer = Polygon::from_coords(
        vec![(u, u), (u + w, u), (u + w, u + w), (u, u + w)],
        vec![vec![(h0, h0), (h1, h0), (h1, h1), (h0, h1)]],
    )
    .expect("annulus valid");
    let b = match rng.gen_range(0u32..3) {
        // Strictly inside the hole: disjoint from the annulus.
        0 => rect_poly(h0 + 10.0, h0 + 10.0, h1 - 10.0, h1 - 10.0),
        // Fills the hole exactly: boundaries share the full ring, meets.
        1 => rect_poly(h0, h0, h1, h1),
        // Pokes across the hole's left wall: intersects.
        _ => rect_poly(h0 - 10.0, h0 + 10.0, h0 + 10.0, h1 - 10.0),
    };
    (outer, b)
}

/// Near-degenerate slivers: a long, hair-thin triangle riding on (or
/// crossing) the edge line of a fat rectangle, plus edges carrying
/// redundant collinear vertices.
fn collinear_sliver<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let x0 = lattice(rng, 0, 15, 20.0);
    let x1 = x0 + lattice(rng, 4, 12, 20.0);
    let y = lattice(rng, 5, 30, 20.0);
    let eps = match rng.gen_range(0u32..3) {
        0 => 1e-3,
        1 => 1e-6,
        _ => 0.5,
    };
    // Rect below the line y; add a redundant collinear vertex midway
    // along its top edge to exercise noding.
    let a = Polygon::from_coords(
        vec![
            (x0, y - 60.0),
            (x1, y - 60.0),
            (x1, y),
            ((x0 + x1) / 2.0, y),
            (x0, y),
        ],
        vec![],
    )
    .expect("rect with collinear vertex valid");
    let b = if rng.gen_bool(0.5) {
        // Sliver sits on top of the shared line: meets along the base.
        tri((x0, y), (x1, y), ((x0 + x1) / 2.0, y + eps))
    } else {
        // Sliver apex dips below the line: intersects.
        tri((x0, y), (x1, y), ((x0 + x1) / 2.0, y - eps))
    };
    (a, b)
}

/// Pairs with exactly equal MBRs but different shapes — the regime where
/// the `Equal` MBR class must keep `covered_by`/`covers`/`meets` alive.
fn equal_mbr<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let u = lattice(rng, 0, 20, 20.0);
    let w = lattice(rng, 4, 12, 20.0);
    let (x0, y0, x1, y1) = (u, u, u + w, u + w);
    match rng.gen_range(0u32..3) {
        // Square split along the diagonal: two triangles that meet.
        0 => (
            tri((x0, y0), (x1, y0), (x1, y1)),
            tri((x0, y0), (x1, y1), (x0, y1)),
        ),
        // Inscribed diamond: covered by the square, same MBR.
        1 => {
            let c = (x0 + x1) / 2.0;
            (
                rect_poly(x0, y0, x1, y1),
                Polygon::from_coords(vec![(c, y0), (x1, c), (c, y1), (x0, c)], vec![])
                    .expect("diamond valid"),
            )
        }
        // Square vs the same square with a notch bitten out of an edge
        // interior (MBR unchanged): covers.
        _ => {
            let n0 = x0 + w * 0.25;
            let n1 = x0 + w * 0.5;
            let d = w * 0.25;
            (
                rect_poly(x0, y0, x1, y1),
                Polygon::from_coords(
                    vec![
                        (x0, y0),
                        (x1, y0),
                        (x1, y1),
                        (n1, y1),
                        (n1, y1 - d),
                        (n0, y1 - d),
                        (n0, y1),
                        (x0, y1),
                    ],
                    vec![],
                )
                .expect("notched square valid"),
            )
        }
    }
}

/// The Figure 4(d) danger zone: cross-shaped MBR alignments with `k`
/// exact ties among the four spanning inequalities. With zero ties the
/// rect pair truly crosses; with ties it must not classify `Cross`, and
/// one sub-case is the shared-diagonal meets witness from the
/// `MbrRelation::classify` regression.
fn degenerate_cross<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    if rng.gen_bool(0.25) {
        // Trapezoid/triangle pair sharing only the edge (4,8)–(6,5),
        // translated onto a random lattice point: MBR spanning ties on
        // two sides, most specific relation is meets.
        let dx = lattice(rng, 0, 40, 20.0);
        let dy = lattice(rng, 0, 40, 20.0);
        let t = |x: f64, y: f64| (x * 10.0 + dx, y * 10.0 + dy);
        (
            Polygon::from_coords(
                vec![t(6.0, 5.0), t(10.0, 5.0), t(10.0, 8.0), t(4.0, 8.0)],
                vec![],
            )
            .expect("trapezoid valid"),
            Polygon::from_coords(vec![t(6.0, 5.0), t(4.0, 8.0), t(4.0, 4.0)], vec![])
                .expect("triangle valid"),
        )
    } else {
        // Wide × tall rect pair; each of the four spanning comparisons
        // independently ties with probability 1/2.
        let cx = lattice(rng, 15, 35, 20.0);
        let cy = lattice(rng, 15, 35, 20.0);
        let (hw, hh) = (120.0, 120.0);
        let (iw, ih) = (60.0, 60.0);
        let wide = rect_poly(cx - hw, cy - ih, cx + hw, cy + ih);
        let mut t = [cx - iw, cy - hh, cx + iw, cy + hh];
        if rng.gen_bool(0.5) {
            t[1] = cy - ih; // tie min.y with wide's
        }
        if rng.gen_bool(0.5) {
            t[3] = cy + ih; // tie max.y with wide's
        }
        if rng.gen_bool(0.5) {
            t[0] = cx - hw; // tie min.x — tall reaches wide's left edge
        }
        let tall = rect_poly(t[0], t[1], t[2], t[3]);
        (wide, tall)
    }
}

/// Containment family with shared boundary arcs, delegated to the
/// known-relation generators.
fn nested<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let rel = match rng.gen_range(0u32..4) {
        0 => TopoRelation::Inside,
        1 => TopoRelation::Contains,
        2 => TopoRelation::CoveredBy,
        _ => TopoRelation::Covers,
    };
    let complexity = rng.gen_range(16usize..96);
    pair_with_relation(rel, complexity, rng.gen())
}

/// Exactly equal bodies, optionally with the vertex cycle rotated so the
/// rings differ representationally.
fn equal<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let params = StarParams {
        center: Point::new(lattice(rng, 10, 40, 20.0), lattice(rng, 10, 40, 20.0)),
        avg_radius: rng.gen_range(30.0..90.0),
        irregularity: 0.5,
        spikiness: 0.2,
        num_vertices: rng.gen_range(6usize..40),
    };
    let a = star_polygon(rng, &params);
    let verts = a.outer().vertices();
    let k = rng.gen_range(0..verts.len());
    let mut rotated: Vec<Point> = verts[k..].to_vec();
    rotated.extend_from_slice(&verts[..k]);
    let b = Polygon::new(Ring::new(rotated).expect("rotated ring valid"), Vec::new());
    (a, b)
}

/// Axis-aligned rects on a coarse lattice: every MBR class (and every
/// kind of tie) shows up here with non-trivial probability.
fn axis_rect<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let draw = |rng: &mut R| {
        let x0 = lattice(rng, 0, 8, 100.0);
        let y0 = lattice(rng, 0, 8, 100.0);
        let w = lattice(rng, 1, 4, 100.0);
        let h = lattice(rng, 1, 4, 100.0);
        rect_poly(x0, y0, (x0 + w).min(1000.0), (y0 + h).min(1000.0))
    };
    let a = draw(rng);
    let b = draw(rng);
    (a, b)
}

/// Two random stars — unconstrained relation mix, including holes.
fn random_star<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    fn draw<R: Rng>(rng: &mut R) -> Polygon {
        let params = StarParams {
            center: Point::new(rng.gen_range(250.0..750.0), rng.gen_range(250.0..750.0)),
            avg_radius: rng.gen_range(30.0..140.0),
            irregularity: rng.gen_range(0.2..0.7),
            spikiness: rng.gen_range(0.05..0.4),
            num_vertices: rng.gen_range(5usize..48),
        };
        star_polygon(rng, &params)
    }
    (draw(rng), draw(rng))
}

/// Disjoint bodies whose MBRs overlap: triangles hugging opposite
/// corners of the shared region — the rasters must prove disjointness.
fn disjoint_close<R: Rng>(rng: &mut R) -> (Polygon, Polygon) {
    let x0 = lattice(rng, 0, 25, 20.0);
    let y0 = lattice(rng, 0, 25, 20.0);
    let d = lattice(rng, 4, 10, 20.0);
    let gap = rng.gen_range(1.0..20.0);
    let a = tri((x0, y0), (x0 + d, y0), (x0, y0 + d));
    let b = tri(
        (x0 + d, y0 + d),
        (x0 + d - gap.min(d - 1.0), y0 + d),
        (x0 + d, y0 + d - gap.min(d - 1.0)),
    );
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_independent() {
        for idx in [0u64, 7, 23, 101] {
            let p1 = adversarial_pair(42, idx);
            let p2 = adversarial_pair(42, idx);
            assert_eq!(p1.a, p2.a);
            assert_eq!(p1.b, p2.b);
            assert_eq!(p1.category, p2.category);
        }
    }

    #[test]
    fn categories_rotate_and_all_appear() {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..CATEGORIES.len() as u64 {
            seen.insert(adversarial_pair(7, idx).category);
        }
        assert_eq!(seen.len(), CATEGORIES.len());
    }

    #[test]
    fn pairs_stay_inside_the_data_space() {
        let space = adversarial_space();
        for idx in 0..220u64 {
            let p = adversarial_pair(0xC0FFEE, idx);
            for poly in [&p.a, &p.b] {
                let m = poly.mbr();
                assert!(
                    m.min.x >= space.min.x
                        && m.min.y >= space.min.y
                        && m.max.x <= space.max.x
                        && m.max.y <= space.max.y,
                    "idx {idx} category {} escapes the data space: {m:?}",
                    p.category
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = adversarial_pair(1, 9);
        let b = adversarial_pair(2, 9);
        assert!(a.a != b.a || a.b != b.b);
    }
}
