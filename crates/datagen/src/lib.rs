//! `stj-datagen`: seeded synthetic spatial datasets.
//!
//! The paper evaluates on TIGER 2015 and OSM polygon collections, which
//! cannot ship with this reproduction. This crate generates deterministic
//! synthetic stand-ins that preserve the statistical properties the
//! topology-join experiments depend on (see DESIGN.md §3):
//!
//! - [`star`]: random star polygons with controllable vertex count,
//!   irregularity, spikiness and optional holes;
//! - [`mod@tessellation`]: jittered space-filling coverages (counties) with
//!   exact shared boundaries, plus nested subdivision (zip codes);
//! - [`scenarios`]: the Table 2 dataset catalog and Table 3 combination
//!   list, with correlated placement (lakes in parks, buildings in
//!   parks) recreating the paper's relation mixes;
//! - [`pairs`]: single pairs with a known target relation, including the
//!   Figure 9 case-study pair;
//! - [`adversarial`]: the boundary-case pair corpus driven by the
//!   `stj check` differential harness (shared edges, vertex contact,
//!   holes, slivers, tied MBR alignments).

pub mod adversarial;
pub mod pairs;
pub mod scenarios;
pub mod star;
pub mod tessellation;

pub use adversarial::{adversarial_pair, adversarial_space, AdversarialPair, CATEGORIES};
pub use pairs::{fig9_lake_in_park, pair_with_relation};
pub use scenarios::{
    data_space, generate, generate_combo, scaled_count, ComboId, DatasetId, ALL_COMBOS,
};
pub use star::{star_polygon, star_polygon_with_holes, StarParams};
pub use tessellation::{subdivide, tessellation, Cell, Coverage};
