//! Random star-shaped polygon generation.
//!
//! Star-shaped polygons (vertices at increasing angles around a center,
//! with varying radii) are the workhorse of the synthetic datasets: they
//! are guaranteed simple, their vertex count and radius directly control
//! the paper's two complexity drivers (refinement cost and raster
//! footprint), and irregularity/spikiness parameters let a scenario mimic
//! smooth lakes versus jagged park boundaries.

use rand::Rng;
use std::f64::consts::TAU;
use stj_geom::{Point, Polygon, Ring};

/// Parameters of a star polygon.
#[derive(Clone, Copy, Debug)]
pub struct StarParams {
    /// Center of the polygon.
    pub center: Point,
    /// Mean vertex distance from the center.
    pub avg_radius: f64,
    /// Angular irregularity in `[0, 1]`: 0 gives evenly spaced vertices,
    /// 1 gives highly uneven angular steps.
    pub irregularity: f64,
    /// Radial variation in `[0, 1)`: 0 gives a circle-like shape, larger
    /// values produce spiky boundaries.
    pub spikiness: f64,
    /// Number of vertices (≥ 3).
    pub num_vertices: usize,
}

/// Generates a random star-shaped polygon.
///
/// Vertices are placed at strictly increasing angles, so the result is
/// always a simple polygon containing its center.
pub fn star_polygon<R: Rng>(rng: &mut R, params: &StarParams) -> Polygon {
    let ring = star_ring(rng, params);
    Polygon::new(ring, Vec::new())
}

/// Generates a star polygon with `num_holes` small star holes placed
/// safely inside it (hole radius bounded by a fraction of the minimum
/// outer radius, so holes never cross the outer ring).
pub fn star_polygon_with_holes<R: Rng>(
    rng: &mut R,
    params: &StarParams,
    num_holes: usize,
    hole_vertices: usize,
) -> Polygon {
    let min_radius = params.avg_radius * (1.0 - params.spikiness).max(0.05);
    let outer = star_ring(rng, params);
    let mut holes = Vec::with_capacity(num_holes);
    for _ in 0..num_holes {
        // Keep holes in a disc around the center small enough that
        // hole_center_dist + hole_max_radius < min outer radius.
        let hole_r = min_radius * rng.gen_range(0.08..0.2);
        let max_off = (min_radius - hole_r * 1.5).max(0.0) * 0.5;
        let ang = rng.gen_range(0.0..TAU);
        let off = rng.gen_range(0.0..=max_off);
        let hp = StarParams {
            center: Point::new(
                params.center.x + off * ang.cos(),
                params.center.y + off * ang.sin(),
            ),
            avg_radius: hole_r,
            irregularity: 0.3,
            spikiness: 0.2,
            num_vertices: hole_vertices.max(3),
        };
        holes.push(star_ring(rng, &hp));
    }
    Polygon::new(outer, holes)
}

fn star_ring<R: Rng>(rng: &mut R, params: &StarParams) -> Ring {
    let n = params.num_vertices.max(3);
    let irregularity = params.irregularity.clamp(0.0, 1.0);
    let spikiness = params.spikiness.clamp(0.0, 0.95);

    // Angular steps: uniform in [step*(1-irr), step*(1+irr)], then
    // normalized to sum to exactly 2π (keeps angles strictly increasing).
    let base = TAU / n as f64;
    let mut steps: Vec<f64> = (0..n)
        .map(|_| base * (1.0 + irregularity * rng.gen_range(-1.0..1.0)))
        .collect();
    let total: f64 = steps.iter().sum();
    for s in &mut steps {
        *s *= TAU / total;
    }

    let start = rng.gen_range(0.0..TAU);
    let mut angle = start;
    let mut pts = Vec::with_capacity(n);
    for step in steps {
        let radius = params.avg_radius * (1.0 + spikiness * rng.gen_range(-1.0..1.0));
        let radius = radius.max(params.avg_radius * 0.05);
        pts.push(Point::new(
            params.center.x + radius * angle.cos(),
            params.center.y + radius * angle.sin(),
        ));
        angle += step;
    }
    Ring::new(pts).expect("star ring has >= 3 distinct vertices")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stj_geom::polygon::Location;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generates_requested_vertex_counts() {
        let mut r = rng(1);
        for n in [3usize, 4, 16, 100, 1000] {
            let p = star_polygon(
                &mut r,
                &StarParams {
                    center: Point::new(50.0, 50.0),
                    avg_radius: 10.0,
                    irregularity: 0.5,
                    spikiness: 0.4,
                    num_vertices: n,
                },
            );
            assert_eq!(p.num_vertices(), n);
            assert!(p.area() > 0.0);
        }
    }

    #[test]
    fn center_is_interior() {
        let mut r = rng(2);
        for seed_run in 0..50 {
            let c = Point::new(10.0 + seed_run as f64, 20.0);
            let p = star_polygon(
                &mut r,
                &StarParams {
                    center: c,
                    avg_radius: 3.0,
                    irregularity: 0.8,
                    spikiness: 0.6,
                    num_vertices: 12,
                },
            );
            assert_eq!(p.locate(c), Location::Inside);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let params = StarParams {
            center: Point::new(0.0, 0.0),
            avg_radius: 5.0,
            irregularity: 0.5,
            spikiness: 0.3,
            num_vertices: 24,
        };
        let a = star_polygon(&mut rng(42), &params);
        let b = star_polygon(&mut rng(42), &params);
        assert_eq!(a, b);
        let c = star_polygon(&mut rng(43), &params);
        assert_ne!(a, c);
    }

    #[test]
    fn holes_stay_inside() {
        let mut r = rng(3);
        for _ in 0..20 {
            let p = star_polygon_with_holes(
                &mut r,
                &StarParams {
                    center: Point::new(0.0, 0.0),
                    avg_radius: 10.0,
                    irregularity: 0.4,
                    spikiness: 0.3,
                    num_vertices: 40,
                },
                2,
                8,
            );
            assert_eq!(p.holes().len(), 2);
            // Hole vertices must be strictly inside the outer ring.
            for h in p.holes() {
                for v in h.vertices() {
                    assert_eq!(p.outer().locate(*v), Location::Inside);
                }
            }
            // Area accounting is consistent.
            let holes_area: f64 = p.holes().iter().map(|h| h.area()).sum();
            assert!((p.area() - (p.outer().area() - holes_area)).abs() < 1e-9);
        }
    }

    #[test]
    fn radius_bounds_mbr() {
        let mut r = rng(4);
        let p = star_polygon(
            &mut r,
            &StarParams {
                center: Point::new(0.0, 0.0),
                avg_radius: 10.0,
                irregularity: 0.2,
                spikiness: 0.5,
                num_vertices: 64,
            },
        );
        let m = p.mbr();
        // All vertices within avg_radius * (1 + spikiness).
        assert!(m.max.x <= 15.0 + 1e-9 && m.min.x >= -15.0 - 1e-9);
        assert!(m.max.y <= 15.0 + 1e-9 && m.min.y >= -15.0 - 1e-9);
    }
}
