//! The synthetic dataset catalog mirroring the paper's Table 2 / Table 3
//! scenarios.
//!
//! We cannot redistribute TIGER/OSM, so each dataset is replaced by a
//! seeded generator reproducing its *statistical shape* (see DESIGN.md
//! §3): object counts (scaled down, documented per dataset), vertex-count
//! distributions, relative object sizes, and — crucially for topology
//! joins — the relation mix of each combination. Correlated placement
//! (lakes seeded inside parks, buildings clustered in parks, zip codes
//! nested in counties) recreates the containment/meet/overlap ratios the
//! paper's filters feed on.
//!
//! All generators are deterministic in (dataset, scale).

use crate::star::{star_polygon, star_polygon_with_holes, StarParams};
use crate::tessellation::{subdivide_levels, tessellation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stj_geom::{Point, Polygon, Rect};

/// The shared data space of every scenario.
pub fn data_space() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

/// Identifiers of the ten datasets of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// US landmarks (TIGER): mixed-size, mixed-complexity areas.
    TL,
    /// US water areas (TIGER): many small-to-medium areas.
    TW,
    /// US counties (TIGER): large space-filling coverage.
    TC,
    /// US zip codes (TIGER): finer coverage nested in counties.
    TZ,
    /// EU buildings (OSM): huge count of tiny simple polygons.
    OBE,
    /// EU lakes (OSM): medium areas, wide complexity range.
    OLE,
    /// EU parks (OSM): large areas, wide complexity range.
    OPE,
    /// NA buildings (OSM).
    OBN,
    /// NA lakes (OSM).
    OLN,
    /// NA parks (OSM).
    OPN,
}

impl DatasetId {
    /// Dataset name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::TL => "TL",
            DatasetId::TW => "TW",
            DatasetId::TC => "TC",
            DatasetId::TZ => "TZ",
            DatasetId::OBE => "OBE",
            DatasetId::OLE => "OLE",
            DatasetId::OPE => "OPE",
            DatasetId::OBN => "OBN",
            DatasetId::OLN => "OLN",
            DatasetId::OPN => "OPN",
        }
    }

    /// Recommended APRIL interval budget per list (see
    /// `stj_core::object::DEFAULT_MAX_INTERVALS`). Coverage datasets
    /// (counties, zip codes) take a tight budget: their pairs are cheap
    /// to refine, so cheap merge-joins matter more than filter power.
    /// Complex-object datasets keep full-resolution lists: their pairs
    /// are exactly the ones whose refinement the filters must avoid.
    pub fn interval_budget(self) -> usize {
        match self {
            DatasetId::TC | DatasetId::TZ => 2048,
            _ => 16384,
        }
    }

    /// Paper's object count for the real dataset (for the scaling note in
    /// Table 2 output).
    pub fn paper_count(self) -> u64 {
        match self {
            DatasetId::TL => 123_000,
            DatasetId::TW => 2_250_000,
            DatasetId::TC => 3_040,
            DatasetId::TZ => 26_100,
            DatasetId::OBE => 90_400_000,
            DatasetId::OLE => 1_960_000,
            DatasetId::OPE => 7_170_000,
            DatasetId::OBN => 9_380_000,
            DatasetId::OLN => 4_020_000,
            DatasetId::OPN => 999_000,
        }
    }
}

/// The seven dataset combinations of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComboId {
    /// Landmarks × water areas.
    TlTw,
    /// Landmarks × counties.
    TlTc,
    /// Counties × zip codes.
    TcTz,
    /// EU lakes × EU parks.
    OleOpe,
    /// NA lakes × NA parks.
    OlnOpn,
    /// EU buildings × EU parks.
    ObeOpe,
    /// NA buildings × NA parks.
    ObnOpn,
}

/// All seven combinations, in the paper's Table 3 order.
pub const ALL_COMBOS: [ComboId; 7] = [
    ComboId::TlTw,
    ComboId::TlTc,
    ComboId::TcTz,
    ComboId::OleOpe,
    ComboId::OlnOpn,
    ComboId::ObeOpe,
    ComboId::ObnOpn,
];

impl ComboId {
    /// The combination name as printed in the paper (`"TL-TW"` style).
    pub fn name(self) -> &'static str {
        match self {
            ComboId::TlTw => "TL-TW",
            ComboId::TlTc => "TL-TC",
            ComboId::TcTz => "TC-TZ",
            ComboId::OleOpe => "OLE-OPE",
            ComboId::OlnOpn => "OLN-OPN",
            ComboId::ObeOpe => "OBE-OPE",
            ComboId::ObnOpn => "OBN-OPN",
        }
    }

    /// The two datasets joined by this combination.
    pub fn datasets(self) -> (DatasetId, DatasetId) {
        match self {
            ComboId::TlTw => (DatasetId::TL, DatasetId::TW),
            ComboId::TlTc => (DatasetId::TL, DatasetId::TC),
            ComboId::TcTz => (DatasetId::TC, DatasetId::TZ),
            ComboId::OleOpe => (DatasetId::OLE, DatasetId::OPE),
            ComboId::OlnOpn => (DatasetId::OLN, DatasetId::OPN),
            ComboId::ObeOpe => (DatasetId::OBE, DatasetId::OPE),
            ComboId::ObnOpn => (DatasetId::OBN, DatasetId::OPN),
        }
    }
}

/// Scaled object count of a dataset at generation scale `scale`
/// (`scale = 1.0` is the default bench size, roughly 100–2000× smaller
/// than the paper's datasets).
pub fn scaled_count(id: DatasetId, scale: f64) -> usize {
    let base: f64 = match id {
        DatasetId::TL => 1500.0,
        DatasetId::TW => 6000.0,
        DatasetId::TC => 0.0, // tessellation-driven: k*k cells
        DatasetId::TZ => 0.0, // 4 children per county
        DatasetId::OBE => 30000.0,
        DatasetId::OLE => 6000.0,
        DatasetId::OPE => 8000.0,
        DatasetId::OBN => 15000.0,
        DatasetId::OLN => 5000.0,
        DatasetId::OPN => 3000.0,
    };
    ((base * scale) as usize).max(if base == 0.0 { 0 } else { 16 })
}

/// County tessellation resolution at `scale`.
fn county_k(scale: f64) -> usize {
    ((24.0 * scale.sqrt()) as usize).clamp(4, 96)
}

/// Generates one dataset at `scale`. Deterministic per (id, scale).
///
/// Parks are generated before their dependent datasets internally, so a
/// standalone dataset call is self-consistent with the combos:
/// `generate(OLE)` places lakes relative to the same parks `generate(OPE)`
/// returns.
pub fn generate(id: DatasetId, scale: f64) -> Vec<Polygon> {
    let space = data_space();
    match id {
        DatasetId::TL => landmarks(scale),
        DatasetId::TW => water(scale),
        DatasetId::TC => counties(scale),
        DatasetId::TZ => zipcodes(scale),
        DatasetId::OPE => parks(space, scaled_count(DatasetId::OPE, scale), 0xE0),
        DatasetId::OPN => parks(space, scaled_count(DatasetId::OPN, scale), 0xA0),
        DatasetId::OLE => lakes(
            &parks(space, scaled_count(DatasetId::OPE, scale), 0xE0),
            scaled_count(DatasetId::OLE, scale),
            0xE1,
        ),
        DatasetId::OLN => lakes(
            &parks(space, scaled_count(DatasetId::OPN, scale), 0xA0),
            scaled_count(DatasetId::OLN, scale),
            0xA1,
        ),
        DatasetId::OBE => buildings(
            &parks(space, scaled_count(DatasetId::OPE, scale), 0xE0),
            scaled_count(DatasetId::OBE, scale),
            0xE2,
        ),
        DatasetId::OBN => buildings(
            &parks(space, scaled_count(DatasetId::OPN, scale), 0xA0),
            scaled_count(DatasetId::OBN, scale),
            0xA2,
        ),
    }
}

/// Generates the two datasets of a combination (correlated placement).
pub fn generate_combo(combo: ComboId, scale: f64) -> (Vec<Polygon>, Vec<Polygon>) {
    let (r, s) = combo.datasets();
    (generate(r, scale), generate(s, scale))
}

fn rng_for(tag: u64) -> StdRng {
    StdRng::seed_from_u64(0x5354_4A00 ^ tag)
}

/// Log-uniform sample in `[lo, hi]`.
fn log_uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

fn uniform_point<R: Rng>(rng: &mut R, space: &Rect, margin: f64) -> Point {
    Point::new(
        rng.gen_range(space.min.x + margin..space.max.x - margin),
        rng.gen_range(space.min.y + margin..space.max.y - margin),
    )
}

/// Vertex count correlated with object radius, as in real OSM/TIGER
/// polygons (bigger areas carry more boundary detail). The correlation
/// is what drives the paper's Figure 8(a): small objects rasterize to
/// few or no full cells *and* are cheap to refine, while complex objects
/// are both filter-friendly and expensive to refine.
fn vertices_for_radius<R: Rng>(rng: &mut R, radius: f64, per_unit: f64, max: usize) -> usize {
    let noise = log_uniform(rng, 0.5, 2.0);
    ((per_unit * radius.powf(1.4) * noise) as usize).clamp(4, max)
}

/// OSM-style parks: large star polygons with a wide, log-uniform
/// complexity range; ~8% carry holes (clearings).
fn parks(space: Rect, count: usize, seed: u64) -> Vec<Polygon> {
    let mut rng = rng_for(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let radius = log_uniform(&mut rng, 0.012, 18.0);
        let n = vertices_for_radius(&mut rng, radius, 16.0, 1400);
        let params = StarParams {
            center: uniform_point(&mut rng, &space, 20.0),
            avg_radius: radius,
            irregularity: rng.gen_range(0.3..0.8),
            spikiness: rng.gen_range(0.1..0.45),
            num_vertices: n.max(4),
        };
        let poly = if rng.gen_bool(0.08) {
            let holes = rng.gen_range(1..=2);
            star_polygon_with_holes(&mut rng, &params, holes, 8)
        } else {
            star_polygon(&mut rng, &params)
        };
        out.push(poly);
    }
    out
}

/// OSM-style lakes, placed relative to `parks`: 45% seeded inside a park
/// (containment), 15% straddling a park boundary (overlap/meets), the
/// rest uniform.
fn lakes(parks: &[Polygon], count: usize, seed: u64) -> Vec<Polygon> {
    let space = data_space();
    let mut rng = rng_for(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let (center, radius) = if !parks.is_empty() && rng.gen_bool(0.6) {
            let park = &parks[rng.gen_range(0..parks.len())];
            let pm = park.mbr();
            let pr = pm.width().min(pm.height()) * 0.5;
            let inside = rng.gen_bool(0.75);
            let c = pm.center();
            if inside {
                // Small lake near the park center: likely inside.
                let off = pr * rng.gen_range(0.0..0.3);
                let ang = rng.gen_range(0.0..std::f64::consts::TAU);
                (
                    Point::new(c.x + off * ang.cos(), c.y + off * ang.sin()),
                    pr * rng.gen_range(0.1..0.5),
                )
            } else {
                // Lake straddling the park's rim.
                let ang = rng.gen_range(0.0..std::f64::consts::TAU);
                (
                    Point::new(c.x + pr * ang.cos(), c.y + pr * ang.sin()),
                    pr * rng.gen_range(0.2..0.6),
                )
            }
        } else {
            (
                uniform_point(&mut rng, &space, 15.0),
                log_uniform(&mut rng, 0.008, 10.0),
            )
        };
        let n = vertices_for_radius(&mut rng, radius.max(0.2), 28.0, 1200);
        let params = StarParams {
            center,
            avg_radius: radius.max(0.2),
            irregularity: rng.gen_range(0.2..0.7),
            spikiness: rng.gen_range(0.05..0.35),
            num_vertices: n,
        };
        out.push(star_polygon(&mut rng, &params));
    }
    out
}

/// OSM-style buildings: tiny, simple (4–14 vertex) polygons; 55%
/// clustered inside parks (the paper's human-intervention scenario).
fn buildings(parks: &[Polygon], count: usize, seed: u64) -> Vec<Polygon> {
    let space = data_space();
    let mut rng = rng_for(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let center = if !parks.is_empty() && rng.gen_bool(0.55) {
            let park = &parks[rng.gen_range(0..parks.len())];
            let pm = park.mbr();
            Point::new(
                rng.gen_range(pm.min.x..=pm.max.x),
                rng.gen_range(pm.min.y..=pm.max.y),
            )
        } else {
            uniform_point(&mut rng, &space, 2.0)
        };
        let params = StarParams {
            center,
            avg_radius: rng.gen_range(0.02..0.12),
            irregularity: rng.gen_range(0.1..0.5),
            spikiness: rng.gen_range(0.05..0.3),
            num_vertices: rng.gen_range(4..=14),
        };
        out.push(star_polygon(&mut rng, &params));
    }
    out
}

/// TIGER-style landmarks: wildly mixed sizes and complexities, some
/// co-located with water bodies (including exact duplicates, which
/// exercise the `equals` path).
fn landmarks(scale: f64) -> Vec<Polygon> {
    let space = data_space();
    let count = scaled_count(DatasetId::TL, scale);
    let mut rng = rng_for(0x71);
    let water = water(scale);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        if i % 50 == 0 && i / 50 < water.len() {
            // An exact duplicate of a water area (a lake that is also a
            // landmark): the `equals` relation exists in the wild.
            out.push(water[i / 50].clone());
            continue;
        }
        if !water.is_empty() && rng.gen_bool(0.4) {
            // Landmarks co-located with water bodies (lakeside parks,
            // dams, beaches): the source of most TL-TW candidate pairs.
            let w = &water[rng.gen_range(0..water.len())];
            let wm = w.mbr();
            let wr = wm.width().max(wm.height()) * 0.5;
            let c = wm.center();
            let ang = rng.gen_range(0.0..std::f64::consts::TAU);
            let off = wr * rng.gen_range(0.0..1.2);
            let params = StarParams {
                center: Point::new(c.x + off * ang.cos(), c.y + off * ang.sin()),
                avg_radius: (wr * rng.gen_range(0.3..1.5)).max(0.05),
                irregularity: rng.gen_range(0.2..0.7),
                spikiness: rng.gen_range(0.05..0.4),
                num_vertices: vertices_for_radius(&mut rng, (wr * 0.9).max(0.05), 18.0, 400),
            };
            out.push(star_polygon(&mut rng, &params));
            continue;
        }
        let radius = log_uniform(&mut rng, 0.02, 25.0);
        let params = StarParams {
            center: uniform_point(&mut rng, &space, 26.0),
            avg_radius: radius,
            irregularity: rng.gen_range(0.2..0.8),
            spikiness: rng.gen_range(0.05..0.5),
            num_vertices: vertices_for_radius(&mut rng, radius, 18.0, 500),
        };
        out.push(star_polygon(&mut rng, &params));
    }
    out
}

/// TIGER-style water areas.
fn water(scale: f64) -> Vec<Polygon> {
    let space = data_space();
    let count = scaled_count(DatasetId::TW, scale);
    let mut rng = rng_for(0x72);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let radius = log_uniform(&mut rng, 0.01, 8.0);
        let params = StarParams {
            center: uniform_point(&mut rng, &space, 10.0),
            avg_radius: radius,
            irregularity: rng.gen_range(0.2..0.7),
            spikiness: rng.gen_range(0.05..0.4),
            num_vertices: vertices_for_radius(&mut rng, radius, 22.0, 300),
        };
        out.push(star_polygon(&mut rng, &params));
    }
    out
}

/// TIGER-style counties: a jittered space-filling coverage.
fn counties(scale: f64) -> Vec<Polygon> {
    let k = county_k(scale);
    let mut rng = rng_for(0x73);
    tessellation(&mut rng, data_space(), k, 64, 0.3).polygons()
}

/// TIGER-style zip codes: each county split recursively into sixteen
/// children sharing the county's boundary polylines exactly. Interior
/// grandchildren are strictly `inside` their county; rim grandchildren
/// are `covered by` it — the relation mix of real nested coverages.
fn zipcodes(scale: f64) -> Vec<Polygon> {
    let k = county_k(scale);
    let mut rng = rng_for(0x73); // same coverage as counties
    let cov = tessellation(&mut rng, data_space(), k, 64, 0.3);
    let mut rng2 = rng_for(0x74);
    subdivide_levels(&mut rng2, &cov, 0.5, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = generate(DatasetId::OLE, 0.02);
        let b = generate(DatasetId::OLE, 0.02);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
    }

    #[test]
    fn counts_scale() {
        let small = generate(DatasetId::TW, 0.01);
        let large = generate(DatasetId::TW, 0.05);
        assert!(large.len() > small.len());
        assert_eq!(small.len(), scaled_count(DatasetId::TW, 0.01));
    }

    #[test]
    fn all_datasets_generate_valid_polygons() {
        for id in [
            DatasetId::TL,
            DatasetId::TW,
            DatasetId::TC,
            DatasetId::TZ,
            DatasetId::OBE,
            DatasetId::OLE,
            DatasetId::OPE,
            DatasetId::OBN,
            DatasetId::OLN,
            DatasetId::OPN,
        ] {
            let polys = generate(id, 0.005);
            assert!(!polys.is_empty(), "{id:?}");
            for p in &polys {
                assert!(p.num_vertices() >= 3, "{id:?}");
                assert!(p.area() > 0.0, "{id:?}");
                assert!(!p.mbr().is_empty());
            }
        }
    }

    #[test]
    fn counties_tile_and_zipcodes_nest() {
        let tc = generate(DatasetId::TC, 0.02);
        let tz = generate(DatasetId::TZ, 0.02);
        assert_eq!(tz.len(), tc.len() * 16);
        let county_area: f64 = tc.iter().map(Polygon::area).sum();
        let zip_area: f64 = tz.iter().map(Polygon::area).sum();
        assert!((county_area - zip_area).abs() < 1e-6 * county_area);
        let space = data_space();
        assert!((county_area - space.area()).abs() < 1e-6 * space.area());
    }

    #[test]
    fn landmark_duplicates_exist_in_water() {
        let tl = generate(DatasetId::TL, 0.05);
        let tw = generate(DatasetId::TW, 0.05);
        let dup = &tl[0];
        assert!(tw.iter().any(|w| w == dup), "expected equals pairs");
    }

    #[test]
    fn combo_names_and_datasets() {
        for c in ALL_COMBOS {
            let (r, s) = c.datasets();
            assert!(c.name().contains(r.name()));
            assert!(c.name().contains(s.name()));
            assert!(r.paper_count() > 0 && s.paper_count() > 0);
        }
    }

    #[test]
    fn buildings_are_tiny() {
        let obe = generate(DatasetId::OBE, 0.003);
        for b in &obe {
            assert!(b.num_vertices() <= 14);
            assert!(b.mbr().width() < 1.0);
        }
    }
}
