//! Single-pair generators with a known target relation.
//!
//! Used by tests (known-answer checks for the pipeline) and by the
//! Figure 9 case study (a high-complexity `inside` pair). Each generator
//! is deterministic in its seed and returns `(r, s)` such that
//! `find_relation(r, s)` should equal the requested relation — callers
//! verify against the DE-9IM oracle.

use crate::star::{star_polygon, StarParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stj_de9im::TopoRelation;
use stj_geom::{Point, Polygon, Ring};

/// Generates a polygon pair whose most specific relation is `rel`.
///
/// `complexity` steers the per-polygon vertex count (the paper's
/// complexity measure is the pair's summed vertex count).
pub fn pair_with_relation(rel: TopoRelation, complexity: usize, seed: u64) -> (Polygon, Polygon) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = complexity.max(8) / 2;
    let center = Point::new(500.0, 500.0);
    match rel {
        TopoRelation::Disjoint => {
            let a = smooth_star(&mut rng, Point::new(300.0, 300.0), 50.0, n);
            let b = smooth_star(&mut rng, Point::new(700.0, 700.0), 50.0, n);
            (a, b)
        }
        TopoRelation::Intersects => {
            let a = smooth_star(&mut rng, Point::new(470.0, 500.0), 60.0, n);
            let b = smooth_star(&mut rng, Point::new(530.0, 500.0), 60.0, n);
            (a, b)
        }
        TopoRelation::Meets => {
            // An annular sector glued to the outside of a star along a
            // shared boundary arc: boundaries meet, interiors don't.
            let a = smooth_star(&mut rng, center, 80.0, n);
            let b = shared_arc_outside(&a, center, 1.6);
            (a, b)
        }
        TopoRelation::Equals => {
            let a = smooth_star(&mut rng, center, 70.0, n);
            (a.clone(), a)
        }
        TopoRelation::Inside => {
            // Outer generously larger; inner scaled well into it.
            let outer = smooth_star(&mut rng, center, 100.0, n);
            let inner = scaled_copy(&outer, center, 0.4);
            (inner, outer)
        }
        TopoRelation::Contains => {
            let (inner, outer) = pair_with_relation(TopoRelation::Inside, complexity, seed ^ 1);
            (outer, inner)
        }
        TopoRelation::CoveredBy => {
            // Inner shares a contiguous boundary arc with the outer and
            // retreats toward the center for the remainder.
            let outer = smooth_star(&mut rng, center, 90.0, n);
            let inner = shared_arc_inside(&outer, center, 0.4);
            (inner, outer)
        }
        TopoRelation::Covers => {
            let (inner, outer) = pair_with_relation(TopoRelation::CoveredBy, complexity, seed ^ 1);
            (outer, inner)
        }
    }
}

/// The Figure 9 case study: a high-complexity lake strictly inside a
/// high-complexity park, both with large MBRs and rich `P` lists.
pub fn fig9_lake_in_park(seed: u64) -> (Polygon, Polygon) {
    let mut rng = StdRng::seed_from_u64(seed);
    let center = Point::new(500.0, 500.0);
    // Radii chosen so that, on the paper's 2^16-cell grid over the
    // [0,1000]^2 data space, both objects carry interval lists in the
    // hundreds-to-thousands (the paper's pair has ~500/~1800 intervals):
    // large enough for the P-list proofs to fire, small enough that the
    // merge-joins stay orders of magnitude cheaper than refinement.
    let park = smooth_star(&mut rng, center, 9.0, 2616);
    let lake = {
        let shifted = Point::new(center.x - 1.2, center.y + 0.6);
        smooth_star(&mut rng, shifted, 3.1, 2240)
    };
    (lake, park)
}

/// A low-spikiness star polygon: close to convex, so scaled copies nest.
fn smooth_star<R: Rng>(rng: &mut R, center: Point, radius: f64, n: usize) -> Polygon {
    star_polygon(
        rng,
        &StarParams {
            center,
            avg_radius: radius,
            irregularity: 0.4,
            spikiness: 0.12,
            num_vertices: n.max(4),
        },
    )
}

/// A copy of `poly` scaled by `factor < (1-spikiness)/(1+spikiness)`
/// toward `center`, guaranteeing strict containment for star polygons
/// around the same center.
fn scaled_copy(poly: &Polygon, center: Point, factor: f64) -> Polygon {
    let pts: Vec<Point> = poly
        .outer()
        .vertices()
        .iter()
        .map(|v| {
            Point::new(
                center.x + (v.x - center.x) * factor,
                center.y + (v.y - center.y) * factor,
            )
        })
        .collect();
    Polygon::new(Ring::new(pts).expect("scaled ring valid"), Vec::new())
}

/// A polygon covered by `outer`, sharing the boundary arc over the first
/// half of `outer`'s vertices exactly and retreating to a scaled copy
/// (factor toward `center`) for the rest.
///
/// Valid for star polygons around `center`: angles stay strictly
/// increasing, and the transition edges stay inside the corresponding
/// center–vertex–vertex triangles, which lie inside `outer`.
fn shared_arc_inside(outer: &Polygon, center: Point, factor: f64) -> Polygon {
    let v = outer.outer().vertices();
    let n = v.len();
    let m = (n / 2).max(1);
    let mut pts: Vec<Point> = v[..=m].to_vec();
    for p in &v[m + 1..] {
        pts.push(scale_toward(*p, center, factor));
    }
    Polygon::new(
        Ring::new(pts).expect("shared-arc inner ring valid"),
        Vec::new(),
    )
}

/// An annular sector glued to the *outside* of star polygon `a` along
/// the boundary arc over the first half of its vertices: the shared arc
/// plus a radially scaled-out return arc. Its interior is strictly
/// outside `a`, so the pair's most specific relation is `meets`.
fn shared_arc_outside(a: &Polygon, center: Point, factor: f64) -> Polygon {
    debug_assert!(factor > 1.0);
    let v = a.outer().vertices();
    let m = (v.len() / 2).max(1);
    let mut pts: Vec<Point> = v[..=m].to_vec();
    for p in v[..=m].iter().rev() {
        pts.push(scale_toward(*p, center, factor));
    }
    Polygon::new(
        Ring::new(pts).expect("shared-arc outer ring valid"),
        Vec::new(),
    )
}

#[inline]
fn scale_toward(p: Point, center: Point, factor: f64) -> Point {
    Point::new(
        center.x + (p.x - center.x) * factor,
        center.y + (p.y - center.y) * factor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_de9im::relate;

    const ALL: [TopoRelation; 8] = [
        TopoRelation::Disjoint,
        TopoRelation::Intersects,
        TopoRelation::Meets,
        TopoRelation::Equals,
        TopoRelation::Inside,
        TopoRelation::Contains,
        TopoRelation::CoveredBy,
        TopoRelation::Covers,
    ];

    #[test]
    fn generated_pairs_have_requested_relation() {
        for rel in ALL {
            for seed in 0..5u64 {
                for complexity in [16usize, 64, 256] {
                    let (r, s) = pair_with_relation(rel, complexity, seed);
                    let got = TopoRelation::most_specific(&relate(&r, &s));
                    assert_eq!(got, rel, "rel {rel:?} seed {seed} complexity {complexity}");
                }
            }
        }
    }

    #[test]
    fn complexity_controls_vertex_count() {
        let (r, s) = pair_with_relation(TopoRelation::Intersects, 1000, 7);
        let total = r.num_vertices() + s.num_vertices();
        assert!((900..=1100).contains(&total), "total {total}");
    }

    #[test]
    fn fig9_pair_is_inside_and_complex() {
        let (lake, park) = fig9_lake_in_park(42);
        assert_eq!(lake.num_vertices(), 2240);
        assert_eq!(park.num_vertices(), 2616);
        let rel = TopoRelation::most_specific(&relate(&lake, &park));
        assert_eq!(rel, TopoRelation::Inside);
    }

    #[test]
    fn pairs_are_deterministic() {
        let a = pair_with_relation(TopoRelation::Meets, 100, 3);
        let b = pair_with_relation(TopoRelation::Meets, 100, 3);
        assert_eq!(a, b);
    }
}
