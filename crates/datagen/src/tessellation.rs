//! Jittered tessellations — administrative-boundary-like coverages.
//!
//! The TIGER county (TC) and zip-code (TZ) datasets are space-filling
//! coverages: neighbouring areas share exact boundary polylines, so their
//! dominant relations are `meets` (siblings) and `inside`/`covered by`
//! (nesting levels). This module reproduces that structure:
//!
//! - [`tessellation`] builds a `k × k` coverage of quads over a region,
//!   with jittered shared lattice corners and subdivided, jittered shared
//!   edges — adjacent cells share their boundary polylines *exactly*;
//! - [`subdivide`] splits every cell of a coverage into four children
//!   that reuse the parent's boundary polylines exactly, so each child is
//!   `covered by` its parent and `meets` its siblings.

use rand::Rng;
use stj_geom::{Point, Polygon, Rect, Ring};

/// A tessellation cell: its polygon plus its grid position.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Column in the coverage lattice.
    pub col: usize,
    /// Row in the coverage lattice.
    pub row: usize,
    /// The cell polygon. Boundary polylines are shared exactly with
    /// lattice neighbours.
    pub polygon: Polygon,
}

/// A complete coverage produced by [`tessellation`], retaining the
/// structure needed by [`subdivide`].
#[derive(Clone, Debug)]
pub struct Coverage {
    k: usize,
    subdiv: usize,
    /// Jittered lattice corners, `(k+1) × (k+1)`, row-major.
    corners: Vec<Point>,
    /// Horizontal edge interior points: edge `(i,j)→(i+1,j)` has `subdiv-1`
    /// interior points; indexed `[j * k + i]`.
    h_edges: Vec<Vec<Point>>,
    /// Vertical edge interior points: edge `(i,j)→(i,j+1)`; indexed
    /// `[j * (k+1) + i]`.
    v_edges: Vec<Vec<Point>>,
    /// The produced cells.
    pub cells: Vec<Cell>,
}

impl Coverage {
    #[inline]
    fn corner(&self, i: usize, j: usize) -> Point {
        self.corners[j * (self.k + 1) + i]
    }

    #[inline]
    fn h_edge(&self, i: usize, j: usize) -> &[Point] {
        &self.h_edges[j * self.k + i]
    }

    #[inline]
    fn v_edge(&self, i: usize, j: usize) -> &[Point] {
        &self.v_edges[j * (self.k + 1) + i]
    }

    /// Edge subdivision used when the coverage was built.
    pub fn subdiv(&self) -> usize {
        self.subdiv
    }

    /// The cell polygons in row-major order.
    pub fn polygons(&self) -> Vec<Polygon> {
        self.cells.iter().map(|c| c.polygon.clone()).collect()
    }
}

/// Builds a jittered `k × k` coverage of `region`.
///
/// - Interior lattice corners are jittered by up to `jitter` (fraction of
///   a cell, `< 0.5` to preserve validity); border corners stay put so
///   the coverage exactly tiles `region`'s border.
/// - Every lattice edge is subdivided into `subdiv` segments whose
///   interior points receive perpendicular jitter, shared exactly between
///   the two adjacent cells.
pub fn tessellation<R: Rng>(
    rng: &mut R,
    region: Rect,
    k: usize,
    subdiv: usize,
    jitter: f64,
) -> Coverage {
    assert!(k >= 1 && subdiv >= 1);
    let jitter = jitter.clamp(0.0, 0.45);
    let (w, h) = (region.width() / k as f64, region.height() / k as f64);

    // Jittered lattice corners (border corners pinned).
    let mut corners = Vec::with_capacity((k + 1) * (k + 1));
    for j in 0..=k {
        for i in 0..=k {
            let x = region.min.x + i as f64 * w;
            let y = region.min.y + j as f64 * h;
            let (dx, dy) = if i == 0 || i == k || j == 0 || j == k {
                (0.0, 0.0)
            } else {
                (
                    rng.gen_range(-jitter..jitter) * w,
                    rng.gen_range(-jitter..jitter) * h,
                )
            };
            corners.push(Point::new(x + dx, y + dy));
        }
    }
    let corner = |i: usize, j: usize| corners[j * (k + 1) + i];

    // Subdivided edges with small perpendicular jitter. Keep the jitter a
    // fraction of the corner jitter so edges of adjacent cells cannot
    // cross. Border edges stay straight so the coverage tiles `region`
    // exactly.
    let edge_jitter = jitter * 0.3;
    let subdivide_edge = |a: Point, b: Point, border: bool, rng: &mut R| -> Vec<Point> {
        let mut pts = Vec::with_capacity(subdiv.saturating_sub(1));
        let d = b - a;
        let len = (d.x * d.x + d.y * d.y).sqrt().max(f64::MIN_POSITIVE);
        let (nx, ny) = (-d.y / len, d.x / len);
        for t in 1..subdiv {
            let f = t as f64 / subdiv as f64;
            let off = if border {
                0.0
            } else {
                rng.gen_range(-edge_jitter..=edge_jitter) * len / subdiv as f64
            };
            pts.push(Point::new(
                a.x + d.x * f + nx * off,
                a.y + d.y * f + ny * off,
            ));
        }
        pts
    };

    let mut h_edges = Vec::with_capacity(k * (k + 1));
    for j in 0..=k {
        for i in 0..k {
            let border = j == 0 || j == k;
            h_edges.push(subdivide_edge(corner(i, j), corner(i + 1, j), border, rng));
        }
    }
    let mut v_edges = Vec::with_capacity((k + 1) * k);
    for j in 0..k {
        for i in 0..=k {
            let border = i == 0 || i == k;
            v_edges.push(subdivide_edge(corner(i, j), corner(i, j + 1), border, rng));
        }
    }

    let mut cov = Coverage {
        k,
        subdiv,
        corners,
        h_edges,
        v_edges,
        cells: Vec::with_capacity(k * k),
    };

    for j in 0..k {
        for i in 0..k {
            let mut pts: Vec<Point> = Vec::with_capacity(4 * subdiv);
            // Bottom edge, left→right.
            pts.push(cov.corner(i, j));
            pts.extend_from_slice(cov.h_edge(i, j));
            // Right edge, bottom→top.
            pts.push(cov.corner(i + 1, j));
            pts.extend_from_slice(cov.v_edge(i + 1, j));
            // Top edge, right→left.
            pts.push(cov.corner(i + 1, j + 1));
            let mut top: Vec<Point> = cov.h_edge(i, j + 1).to_vec();
            top.reverse();
            pts.extend(top);
            // Left edge, top→bottom.
            pts.push(cov.corner(i, j + 1));
            let mut left: Vec<Point> = cov.v_edge(i, j).to_vec();
            left.reverse();
            pts.extend(left);
            let ring = Ring::new(pts).expect("tessellation cell ring valid");
            cov.cells.push(Cell {
                col: i,
                row: j,
                polygon: Polygon::new(ring, Vec::new()),
            });
        }
    }
    cov
}

/// A quadrilateral cell represented by its four boundary polylines, in
/// counter-clockwise order; `sides[i]` runs from corner `i` to corner
/// `i+1` (mod 4), endpoints inclusive.
///
/// The polyline representation is what makes *recursive* subdivision
/// exact: children reuse halves of the parent's side polylines verbatim,
/// and sibling children share their spoke polylines verbatim, so nested
/// coverages relate by `covered by` / `meets` exactly — like real
/// administrative hierarchies (zip codes in counties).
#[derive(Clone, Debug)]
pub struct QuadCell {
    /// The four boundary polylines, CCW, endpoints inclusive.
    pub sides: [Vec<Point>; 4],
}

impl QuadCell {
    /// The cell as a polygon.
    pub fn polygon(&self) -> Polygon {
        let mut pts: Vec<Point> =
            Vec::with_capacity(self.sides.iter().map(Vec::len).sum::<usize>());
        for side in &self.sides {
            // Skip each side's last point: it is the next side's first.
            pts.extend_from_slice(&side[..side.len() - 1]);
        }
        let ring = Ring::new(pts).expect("quad cell ring valid");
        Polygon::new(ring, Vec::new())
    }

    /// Whether every side has a middle vertex (odd point count ≥ 3),
    /// i.e. the cell can be subdivided once more.
    pub fn subdividable(&self) -> bool {
        self.sides.iter().all(|s| s.len() >= 3 && s.len() % 2 == 1)
    }

    /// Splits the cell into four children meeting at a jittered center.
    ///
    /// Children reuse the parent's side-polyline halves exactly and
    /// share three-point spokes (midpoint–center polylines with a middle
    /// vertex, so children remain subdividable).
    ///
    /// # Panics
    /// Panics if `!self.subdividable()`.
    pub fn subdivide<R: Rng>(&self, rng: &mut R, center_jitter: f64) -> [QuadCell; 4] {
        assert!(self.subdividable(), "sides need odd point counts >= 3");
        let halves: [usize; 4] = std::array::from_fn(|i| self.sides[i].len() / 2);
        let mids: [Point; 4] = std::array::from_fn(|i| self.sides[i][halves[i]]);

        let centroid = Point::new(
            mids.iter().map(|p| p.x).sum::<f64>() / 4.0,
            mids.iter().map(|p| p.y).sum::<f64>() / 4.0,
        );
        let span = mids[0].dist(mids[2]).min(mids[1].dist(mids[3]));
        let jitter = center_jitter.clamp(0.0, 1.0) * span * 0.1;
        let c = Point::new(
            centroid.x + rng.gen_range(-1.0..=1.0) * jitter,
            centroid.y + rng.gen_range(-1.0..=1.0) * jitter,
        );

        // Spoke i runs from mids[i] to the center, with an exact middle
        // vertex so the children stay subdividable.
        let spokes: [Vec<Point>; 4] =
            std::array::from_fn(|i| vec![mids[i], mids[i].midpoint(c), c]);

        // Child i sits at corner i:
        //   corner_i → m_i (first half of side i)
        //   m_i → c (spoke i)
        //   c → m_{i-1} (spoke i-1 reversed)
        //   m_{i-1} → corner_i (second half of side i-1)
        std::array::from_fn(|i| {
            let prev = (i + 3) % 4;
            let s0 = self.sides[i][..=halves[i]].to_vec();
            let s1 = spokes[i].clone();
            let mut s2 = spokes[prev].clone();
            s2.reverse();
            let s3 = self.sides[prev][halves[prev]..].to_vec();
            QuadCell {
                sides: [s0, s1, s2, s3],
            }
        })
    }
}

impl Coverage {
    /// The coverage's cells as [`QuadCell`]s (inputs to recursive
    /// subdivision).
    pub fn quad_cells(&self) -> Vec<QuadCell> {
        let mut out = Vec::with_capacity(self.cells.len());
        let full = |corner_a: Point, mids: &[Point], corner_b: Point| -> Vec<Point> {
            let mut v = Vec::with_capacity(mids.len() + 2);
            v.push(corner_a);
            v.extend_from_slice(mids);
            v.push(corner_b);
            v
        };
        for cell in &self.cells {
            let (i, j) = (cell.col, cell.row);
            let bottom = full(self.corner(i, j), self.h_edge(i, j), self.corner(i + 1, j));
            let right = full(
                self.corner(i + 1, j),
                self.v_edge(i + 1, j),
                self.corner(i + 1, j + 1),
            );
            let mut top = full(
                self.corner(i, j + 1),
                self.h_edge(i, j + 1),
                self.corner(i + 1, j + 1),
            );
            top.reverse(); // CCW: right-to-left along the top
            let mut left = full(self.corner(i, j), self.v_edge(i, j), self.corner(i, j + 1));
            left.reverse(); // CCW: top-to-bottom along the left
            out.push(QuadCell {
                sides: [bottom, right, top, left],
            });
        }
        out
    }
}

/// Splits every cell of `cov` into `4^levels` children that reuse the
/// parent's boundary polylines exactly (recursively).
///
/// With `levels >= 2`, interior grandchildren do not touch the original
/// cell's boundary at all — they are strictly `inside` it, like interior
/// zip codes of a county — while rim children are `covered by` it.
/// Requires `cov`'s edge subdivision to be divisible by `2^levels`.
pub fn subdivide_levels<R: Rng>(
    rng: &mut R,
    cov: &Coverage,
    center_jitter: f64,
    levels: u32,
) -> Vec<Polygon> {
    let mut cells = cov.quad_cells();
    for _ in 0..levels {
        let mut next = Vec::with_capacity(cells.len() * 4);
        for cell in &cells {
            next.extend(cell.subdivide(rng, center_jitter));
        }
        cells = next;
    }
    cells.iter().map(QuadCell::polygon).collect()
}

/// Splits every cell of `cov` into four children that reuse the parent's
/// boundary polylines exactly (one level of [`subdivide_levels`]).
pub fn subdivide<R: Rng>(rng: &mut R, cov: &Coverage, center_jitter: f64) -> Vec<Polygon> {
    subdivide_levels(rng, cov, center_jitter, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stj_de9im::{relate, TopoRelation};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn region() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn covers_region_area() {
        let cov = tessellation(&mut rng(1), region(), 5, 4, 0.3);
        assert_eq!(cov.cells.len(), 25);
        let total: f64 = cov.cells.iter().map(|c| c.polygon.area()).sum();
        assert!((total - 10_000.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn neighbours_meet() {
        let cov = tessellation(&mut rng(2), region(), 4, 4, 0.3);
        let cell = |i: usize, j: usize| &cov.cells[j * 4 + i].polygon;
        for j in 0..4 {
            for i in 0..3 {
                let m = relate(cell(i, j), cell(i + 1, j));
                assert_eq!(
                    TopoRelation::most_specific(&m),
                    TopoRelation::Meets,
                    "cells ({i},{j}) and ({},{j})",
                    i + 1
                );
            }
        }
        for j in 0..3 {
            let m = relate(cell(1, j), cell(1, j + 1));
            assert_eq!(TopoRelation::most_specific(&m), TopoRelation::Meets);
        }
    }

    #[test]
    fn non_neighbours_disjoint() {
        let cov = tessellation(&mut rng(3), region(), 4, 2, 0.2);
        let m = relate(&cov.cells[0].polygon, &cov.cells[10].polygon);
        assert_eq!(TopoRelation::most_specific(&m), TopoRelation::Disjoint);
    }

    #[test]
    fn vertex_counts_scale_with_subdiv() {
        let cov = tessellation(&mut rng(4), region(), 3, 8, 0.2);
        for c in &cov.cells {
            assert_eq!(c.polygon.num_vertices(), 4 * 8);
        }
    }

    #[test]
    fn subdivision_children_covered_by_parent() {
        let cov = tessellation(&mut rng(5), region(), 3, 4, 0.25);
        let children = subdivide(&mut rng(6), &cov, 0.5);
        assert_eq!(children.len(), cov.cells.len() * 4);
        for (ci, child) in children.iter().enumerate() {
            let parent = &cov.cells[ci / 4].polygon;
            let rel = TopoRelation::most_specific(&relate(child, parent));
            assert_eq!(
                rel,
                TopoRelation::CoveredBy,
                "child {ci} of parent {}",
                ci / 4
            );
        }
    }

    #[test]
    fn subdivision_siblings_meet_and_tile() {
        let cov = tessellation(&mut rng(7), region(), 2, 4, 0.2);
        let children = subdivide(&mut rng(8), &cov, 0.5);
        // Children of one parent tile its area.
        for (pi, cell) in cov.cells.iter().enumerate() {
            let sum: f64 = children[pi * 4..pi * 4 + 4].iter().map(Polygon::area).sum();
            assert!(
                (sum - cell.polygon.area()).abs() < 1e-6,
                "parent {pi}: {sum} vs {}",
                cell.polygon.area()
            );
        }
        // Siblings meet.
        let rel = TopoRelation::most_specific(&relate(&children[0], &children[1]));
        assert_eq!(rel, TopoRelation::Meets);
    }

    #[test]
    fn two_level_subdivision_yields_interior_children() {
        let cov = tessellation(&mut rng(21), region(), 2, 8, 0.25);
        let grandchildren = subdivide_levels(&mut rng(22), &cov, 0.5, 2);
        assert_eq!(grandchildren.len(), cov.cells.len() * 16);
        let mut inside = 0;
        let mut covered = 0;
        for (gi, g) in grandchildren.iter().enumerate() {
            let parent = &cov.cells[gi / 16].polygon;
            match TopoRelation::most_specific(&relate(g, parent)) {
                TopoRelation::Inside => inside += 1,
                TopoRelation::CoveredBy => covered += 1,
                other => panic!("grandchild {gi}: unexpected relation {other:?}"),
            }
        }
        // The four center grandchildren of each parent touch only
        // interior spokes — strictly inside.
        assert_eq!(inside, cov.cells.len() * 4, "interior grandchildren");
        assert_eq!(covered, cov.cells.len() * 12, "rim grandchildren");
        // Areas still tile each parent.
        for (pi, cell) in cov.cells.iter().enumerate() {
            let sum: f64 = grandchildren[pi * 16..pi * 16 + 16]
                .iter()
                .map(Polygon::area)
                .sum();
            assert!((sum - cell.polygon.area()).abs() < 1e-6 * cell.polygon.area());
        }
    }

    #[test]
    fn quad_cell_roundtrip_matches_cell_polygon() {
        let cov = tessellation(&mut rng(23), region(), 3, 4, 0.3);
        for (qc, cell) in cov.quad_cells().iter().zip(&cov.cells) {
            assert_eq!(qc.polygon(), cell.polygon);
            assert!(qc.subdividable());
        }
    }

    #[test]
    fn deterministic() {
        let a = tessellation(&mut rng(9), region(), 4, 4, 0.3);
        let b = tessellation(&mut rng(9), region(), 4, 4, 0.3);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.polygon, y.polygon);
        }
    }
}
