//! MBR intersection join: the pipeline's *filter step*.
//!
//! Produces the stream of candidate pairs (objects whose MBRs intersect)
//! that the topology pipeline consumes, in the style of the partitioned
//! in-memory plane-sweep joins the paper builds on \[39\]: partition the
//! space into a uniform tile grid, replicate each MBR into every tile it
//! overlaps, forward-scan plane-sweep within each tile, and deduplicate
//! replicated results with the reference-point technique (a pair is
//! reported only by the tile containing the top-left corner of the two
//! MBRs' intersection).
//!
//! The paper excludes this step's cost from its measurements; we provide
//! it so the harness is end-to-end runnable, plus a thread-parallel
//! variant for faster dataset preparation.

use stj_geom::Rect;

/// Joins two MBR collections, returning every pair `(i, j)` with
/// `r[i]` intersecting `s[j]` (closed semantics: touching counts).
///
/// Single-threaded. See [`mbr_join_parallel`] for the multi-threaded
/// variant.
pub fn mbr_join(r: &[Rect], s: &[Rect]) -> Vec<(u32, u32)> {
    let tiles = Tiling::for_inputs(r, s);
    let mut out = Vec::new();
    for tile in 0..tiles.num_tiles() {
        tiles.join_tile(tile, r, s, &mut out);
    }
    out
}

/// Parallel variant of [`mbr_join`]: tiles are processed by a scoped
/// thread pool and the per-tile results concatenated.
///
/// The output contains the same pair set as [`mbr_join`] (order may
/// differ).
pub fn mbr_join_parallel(r: &[Rect], s: &[Rect], threads: usize) -> Vec<(u32, u32)> {
    let threads = threads.max(1);
    if threads == 1 {
        return mbr_join(r, s);
    }
    let tiles = Tiling::for_inputs(r, s);
    let n_tiles = tiles.num_tiles();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Vec<(u32, u32)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let tiles = &tiles;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= n_tiles {
                        break;
                    }
                    tiles.join_tile(t, r, s, &mut local);
                }
                local
            }));
        }
        results = handles
            .into_iter()
            .map(|h| h.join().expect("join worker panicked"))
            .collect();
    });
    let total = results.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut part in results {
        out.append(&mut part);
    }
    out
}

/// A uniform tile partitioning with per-tile object id lists.
struct Tiling {
    universe: Rect,
    k: u32,
    r_tiles: Vec<Vec<u32>>,
    s_tiles: Vec<Vec<u32>>,
}

impl Tiling {
    fn for_inputs(r: &[Rect], s: &[Rect]) -> Tiling {
        let mut universe = Rect::empty();
        for m in r.iter().chain(s) {
            universe.grow_rect(m);
        }
        if universe.is_empty() {
            universe = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        }
        // Aim for a few dozen objects per tile on the denser side.
        let n = r.len().max(s.len()) as f64;
        let k = ((n / 32.0).sqrt().ceil() as u32).clamp(1, 512);
        let mut t = Tiling {
            universe,
            k,
            r_tiles: vec![Vec::new(); (k * k) as usize],
            s_tiles: vec![Vec::new(); (k * k) as usize],
        };
        t.assign(r, true);
        t.assign(s, false);
        t
    }

    fn num_tiles(&self) -> usize {
        (self.k * self.k) as usize
    }

    fn tile_span(&self, m: &Rect) -> (u32, u32, u32, u32) {
        let w = self.universe.width().max(f64::MIN_POSITIVE);
        let h = self.universe.height().max(f64::MIN_POSITIVE);
        let clamp = |v: f64| -> u32 { (v as i64).clamp(0, i64::from(self.k - 1)) as u32 };
        let x0 = clamp((m.min.x - self.universe.min.x) / w * f64::from(self.k));
        let x1 = clamp((m.max.x - self.universe.min.x) / w * f64::from(self.k));
        let y0 = clamp((m.min.y - self.universe.min.y) / h * f64::from(self.k));
        let y1 = clamp((m.max.y - self.universe.min.y) / h * f64::from(self.k));
        (x0, x1, y0, y1)
    }

    fn assign(&mut self, mbrs: &[Rect], is_r: bool) {
        for (i, m) in mbrs.iter().enumerate() {
            let (x0, x1, y0, y1) = self.tile_span(m);
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    let t = (ty * self.k + tx) as usize;
                    if is_r {
                        self.r_tiles[t].push(i as u32);
                    } else {
                        self.s_tiles[t].push(i as u32);
                    }
                }
            }
        }
    }

    /// Reference-point dedup: report a pair only from the tile containing
    /// the intersection rectangle's min corner.
    fn owns_pair(&self, tile: usize, a: &Rect, b: &Rect) -> bool {
        let ix = a.min.x.max(b.min.x);
        let iy = a.min.y.max(b.min.y);
        let (x0, x1, y0, y1) = self.tile_span(&Rect::from_coords(ix, iy, ix, iy));
        debug_assert!(x0 == x1 && y0 == y1);
        tile as u32 == y0 * self.k + x0
    }

    fn join_tile(&self, tile: usize, r: &[Rect], s: &[Rect], out: &mut Vec<(u32, u32)>) {
        let ri = &self.r_tiles[tile];
        let si = &self.s_tiles[tile];
        if ri.is_empty() || si.is_empty() {
            return;
        }
        // Forward-scan plane sweep on xmin.
        let mut rs: Vec<u32> = ri.clone();
        let mut ss: Vec<u32> = si.clone();
        rs.sort_unstable_by(|&a, &b| {
            r[a as usize]
                .min
                .x
                .partial_cmp(&r[b as usize].min.x)
                .expect("finite")
        });
        ss.sort_unstable_by(|&a, &b| {
            s[a as usize]
                .min
                .x
                .partial_cmp(&s[b as usize].min.x)
                .expect("finite")
        });
        let (mut i, mut j) = (0usize, 0usize);
        while i < rs.len() && j < ss.len() {
            let ra = &r[rs[i] as usize];
            let sb = &s[ss[j] as usize];
            if ra.min.x <= sb.min.x {
                for &sj in ss[j..].iter() {
                    let m = &s[sj as usize];
                    if m.min.x > ra.max.x {
                        break;
                    }
                    if ra.intersects(m) && self.owns_pair(tile, ra, m) {
                        out.push((rs[i], sj));
                    }
                }
                i += 1;
            } else {
                for &rj in rs[i..].iter() {
                    let m = &r[rj as usize];
                    if m.min.x > sb.max.x {
                        break;
                    }
                    if m.intersects(sb) && self.owns_pair(tile, m, sb) {
                        out.push((rj, ss[j]));
                    }
                }
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(r: &[Rect], s: &[Rect]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, a) in r.iter().enumerate() {
            for (j, b) in s.iter().enumerate() {
                if a.intersects(b) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    fn random_rects(n: usize, seed: u64, span: f64, size: f64) -> Vec<Rect> {
        let mut state = seed;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let x = rnd() * span;
                let y = rnd() * span;
                Rect::from_coords(x, y, x + rnd() * size, y + rnd() * size)
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_small() {
        let r = random_rects(50, 1, 100.0, 10.0);
        let s = random_rects(70, 2, 100.0, 10.0);
        assert_eq!(sorted(mbr_join(&r, &s)), sorted(brute(&r, &s)));
    }

    #[test]
    fn matches_bruteforce_large_and_dedups() {
        let r = random_rects(800, 3, 1000.0, 30.0);
        let s = random_rects(900, 4, 1000.0, 30.0);
        let got = mbr_join(&r, &s);
        let expect = brute(&r, &s);
        assert_eq!(got.len(), expect.len(), "duplicate or missing pairs");
        assert_eq!(sorted(got), sorted(expect));
    }

    #[test]
    fn parallel_equals_sequential() {
        let r = random_rects(500, 5, 500.0, 25.0);
        let s = random_rects(500, 6, 500.0, 25.0);
        let seq = sorted(mbr_join(&r, &s));
        for threads in [1, 2, 4, 8] {
            assert_eq!(sorted(mbr_join_parallel(&r, &s, threads)), seq);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(mbr_join(&[], &[]).is_empty());
        let r = random_rects(5, 7, 10.0, 2.0);
        assert!(mbr_join(&r, &[]).is_empty());
        assert!(mbr_join(&[], &r).is_empty());
    }

    #[test]
    fn touching_mbrs_are_candidates() {
        let r = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)];
        let s = vec![Rect::from_coords(1.0, 0.0, 2.0, 1.0)];
        assert_eq!(mbr_join(&r, &s), vec![(0, 0)]);
    }

    #[test]
    fn giant_object_spanning_many_tiles() {
        // One huge rect against many small ones: replication must not
        // produce duplicates.
        let r = vec![Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)];
        let s = random_rects(2000, 8, 1000.0, 5.0);
        let got = mbr_join(&r, &s);
        assert_eq!(got.len(), s.len());
        let mut seen = vec![false; s.len()];
        for (i, j) in got {
            assert_eq!(i, 0);
            assert!(!seen[j as usize], "duplicate pair for {j}");
            seen[j as usize] = true;
        }
    }

    #[test]
    fn identical_point_like_mbrs() {
        let r = vec![Rect::from_coords(5.0, 5.0, 5.0, 5.0); 3];
        let s = vec![Rect::from_coords(5.0, 5.0, 5.0, 5.0); 2];
        assert_eq!(mbr_join(&r, &s).len(), 6);
    }
}
