//! MBR intersection join: the pipeline's *filter step*.
//!
//! Produces the stream of candidate pairs (objects whose MBRs intersect)
//! that the topology pipeline consumes, in the style of the partitioned
//! in-memory plane-sweep joins the paper builds on \[39\]: partition the
//! space into a uniform tile grid, replicate each MBR into every tile it
//! overlaps, forward-scan within each tile on xmin order, and
//! deduplicate replicated results with the reference-point technique (a
//! pair is reported only by the tile containing the top-left corner of
//! the two MBRs' intersection).
//!
//! The [`Tiling`] is a reusable index: per-tile id lists are sorted by
//! xmin **once at build time**, and candidate generation is exposed as a
//! set of [`TileTask`]s that emit pairs through a caller-supplied sink
//! (`FnMut(u32, u32)`), so executors can fuse downstream work into the
//! scan instead of materializing a global candidate vector. Tiles whose
//! estimated work (`|r_tile| × |s_tile|`) exceeds a split threshold are
//! divided into sub-range tasks, so one dense tile cannot serialize a
//! parallel join.
//!
//! [`mbr_join`] / [`mbr_join_parallel`] remain the materializing
//! wrappers: they run every task and collect the pairs into a `Vec`.
//!
//! The paper excludes this step's cost from its measurements; we provide
//! it so the harness is end-to-end runnable.

use stj_geom::Rect;

/// Default skew-split threshold for [`Tiling::tasks`]: tiles whose
/// `|r_tile| × |s_tile|` product exceeds this are split into sub-range
/// tasks. With the build heuristic of a few dozen objects per tile the
/// typical product is ~10³, so only genuinely dense tiles split.
pub const DEFAULT_SPLIT_THRESHOLD: u64 = 16 * 1024;

/// Joins two MBR collections, returning every pair `(i, j)` with
/// `r[i]` intersecting `s[j]` (closed semantics: touching counts).
///
/// Single-threaded. See [`mbr_join_parallel`] for the multi-threaded
/// variant.
pub fn mbr_join(r: &[Rect], s: &[Rect]) -> Vec<(u32, u32)> {
    let tiles = Tiling::for_inputs(r, s);
    let mut out = Vec::new();
    for task in tiles.tasks(DEFAULT_SPLIT_THRESHOLD) {
        tiles.run_task(&task, r, s, &mut |i, j| out.push((i, j)));
    }
    out
}

/// Parallel variant of [`mbr_join`]: workers drain the task queue and
/// the per-worker results are concatenated.
///
/// The output contains the same pair set as [`mbr_join`] (order may
/// differ).
pub fn mbr_join_parallel(r: &[Rect], s: &[Rect], threads: usize) -> Vec<(u32, u32)> {
    let threads = threads.max(1);
    if threads == 1 {
        return mbr_join(r, s);
    }
    let tiles = Tiling::for_inputs(r, s);
    let tasks = tiles.tasks(DEFAULT_SPLIT_THRESHOLD);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Vec<(u32, u32)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let tiles = &tiles;
            let tasks = &tasks;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    tiles.run_task(&tasks[t], r, s, &mut |i, j| local.push((i, j)));
                }
                local
            }));
        }
        results = handles
            .into_iter()
            .map(|h| h.join().expect("join worker panicked"))
            .collect();
    });
    let total = results.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut part in results {
        out.append(&mut part);
    }
    out
}

/// One unit of candidate-generation work: a tile (or a sub-range of a
/// dense tile) whose pairs are emitted by [`Tiling::run_task`].
///
/// The ranges index into the tile's xmin-sorted id lists. A task *owns*
/// the r-events in `r_lo..r_hi` and the s-events in `s_lo..s_hi`: an
/// r-event emits the pairs whose partner starts at-or-after it on the
/// x-axis, an s-event the pairs whose partner starts strictly after it,
/// so every pair belongs to exactly one event and splitting the event
/// ranges partitions the tile's output exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileTask {
    /// Tile index in `0..num_tiles()`.
    pub tile: u32,
    /// Start of the owned range in the tile's sorted `r` id list.
    pub r_lo: u32,
    /// End (exclusive) of the owned `r` range.
    pub r_hi: u32,
    /// Start of the owned range in the tile's sorted `s` id list.
    pub s_lo: u32,
    /// End (exclusive) of the owned `s` range.
    pub s_hi: u32,
}

/// A uniform tile partitioning with per-tile object id lists, sorted by
/// xmin at build time so candidate generation never re-sorts.
pub struct Tiling {
    universe: Rect,
    k: u32,
    /// Tiles per unit of x/y: precomputed `k / universe.{width,height}`
    /// so the per-pair dedup check does no divisions.
    inv_w: f64,
    inv_h: f64,
    r_tiles: Vec<Vec<u32>>,
    s_tiles: Vec<Vec<u32>>,
}

impl Tiling {
    /// Builds the tile index for the two MBR collections: picks the grid
    /// resolution, replicates each MBR into the tiles it overlaps, and
    /// sorts every tile's id list by xmin.
    pub fn for_inputs(r: &[Rect], s: &[Rect]) -> Tiling {
        let mut universe = Rect::empty();
        for m in r.iter().chain(s) {
            universe.grow_rect(m);
        }
        if universe.is_empty() {
            universe = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        }
        // Aim for a few dozen objects per tile on the denser side.
        let n = r.len().max(s.len()) as f64;
        let k = ((n / 32.0).sqrt().ceil() as u32).clamp(1, 512);
        let mut t = Tiling {
            universe,
            k,
            inv_w: f64::from(k) / universe.width().max(f64::MIN_POSITIVE),
            inv_h: f64::from(k) / universe.height().max(f64::MIN_POSITIVE),
            r_tiles: vec![Vec::new(); (k * k) as usize],
            s_tiles: vec![Vec::new(); (k * k) as usize],
        };
        t.assign(r, true);
        t.assign(s, false);
        for (tiles, mbrs) in [(&mut t.r_tiles, r), (&mut t.s_tiles, s)] {
            for ids in tiles.iter_mut() {
                ids.sort_unstable_by(|&a, &b| {
                    mbrs[a as usize]
                        .min
                        .x
                        .partial_cmp(&mbrs[b as usize].min.x)
                        .expect("finite")
                });
            }
        }
        t
    }

    /// Number of tiles in the grid (`k × k`).
    pub fn num_tiles(&self) -> usize {
        (self.k * self.k) as usize
    }

    /// Event-list lengths `(|r_tile|, |s_tile|)` for one tile. A
    /// [`TileTask`] whose ranges don't span these is a skew-split slice
    /// of a dense tile — the executor's scheduler metrics count those.
    pub fn tile_sizes(&self, tile: usize) -> (usize, usize) {
        (self.r_tiles[tile].len(), self.s_tiles[tile].len())
    }

    fn tile_span(&self, m: &Rect) -> (u32, u32, u32, u32) {
        let clamp = |v: f64| -> u32 { (v as i64).clamp(0, i64::from(self.k - 1)) as u32 };
        let x0 = clamp((m.min.x - self.universe.min.x) * self.inv_w);
        let x1 = clamp((m.max.x - self.universe.min.x) * self.inv_w);
        let y0 = clamp((m.min.y - self.universe.min.y) * self.inv_h);
        let y1 = clamp((m.max.y - self.universe.min.y) * self.inv_h);
        (x0, x1, y0, y1)
    }

    fn assign(&mut self, mbrs: &[Rect], is_r: bool) {
        for (i, m) in mbrs.iter().enumerate() {
            let (x0, x1, y0, y1) = self.tile_span(m);
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    let t = (ty * self.k + tx) as usize;
                    if is_r {
                        self.r_tiles[t].push(i as u32);
                    } else {
                        self.s_tiles[t].push(i as u32);
                    }
                }
            }
        }
    }

    /// Reference-point dedup: report a pair only from the tile containing
    /// the intersection rectangle's min corner. Division-free: uses the
    /// precomputed inverse tile extents.
    fn owns_pair(&self, tile: usize, a: &Rect, b: &Rect) -> bool {
        let clamp = |v: f64| -> u32 { (v as i64).clamp(0, i64::from(self.k - 1)) as u32 };
        let tx = clamp((a.min.x.max(b.min.x) - self.universe.min.x) * self.inv_w);
        let ty = clamp((a.min.y.max(b.min.y) - self.universe.min.y) * self.inv_h);
        tile as u32 == ty * self.k + tx
    }

    /// The task list covering every tile's output exactly once, with
    /// tiles whose estimated work `|r_tile| × |s_tile|` exceeds
    /// `split_threshold` divided into proportional sub-range tasks (see
    /// [`DEFAULT_SPLIT_THRESHOLD`]). Tasks are independent: any
    /// assignment of tasks to workers produces the same pair set.
    pub fn tasks(&self, split_threshold: u64) -> Vec<TileTask> {
        let threshold = split_threshold.max(1);
        let mut out = Vec::new();
        for tile in 0..self.num_tiles() {
            let nr = self.r_tiles[tile].len() as u64;
            let ns = self.s_tiles[tile].len() as u64;
            if nr == 0 || ns == 0 {
                continue;
            }
            // One task per `threshold` of estimated work, but never finer
            // than one event per task.
            let parts = (((nr * ns).div_ceil(threshold)).min(nr.max(ns)).max(1)) as u32;
            let (nr, ns) = (nr as u32, ns as u32);
            for p in 0..parts {
                out.push(TileTask {
                    tile: tile as u32,
                    r_lo: nr * p / parts,
                    r_hi: nr * (p + 1) / parts,
                    s_lo: ns * p / parts,
                    s_hi: ns * (p + 1) / parts,
                });
            }
        }
        out
    }

    /// Runs one task, emitting each candidate pair `(i, j)` — `r[i]`
    /// intersects `s[j]`, deduplicated across tiles — into `sink`.
    pub fn run_task(
        &self,
        task: &TileTask,
        r: &[Rect],
        s: &[Rect],
        sink: &mut impl FnMut(u32, u32),
    ) {
        let tile = task.tile as usize;
        let rs = &self.r_tiles[tile];
        let ss = &self.s_tiles[tile];
        // r-events: pairs whose s starts at-or-after the r on x.
        for &ri in &rs[task.r_lo as usize..task.r_hi as usize] {
            let ra = &r[ri as usize];
            let j0 = ss.partition_point(|&sj| s[sj as usize].min.x < ra.min.x);
            for &sj in &ss[j0..] {
                let m = &s[sj as usize];
                if m.min.x > ra.max.x {
                    break;
                }
                if ra.intersects(m) && self.owns_pair(tile, ra, m) {
                    sink(ri, sj);
                }
            }
        }
        // s-events: pairs whose r starts strictly after the s on x.
        for &sj in &ss[task.s_lo as usize..task.s_hi as usize] {
            let sb = &s[sj as usize];
            let i0 = rs.partition_point(|&ri| r[ri as usize].min.x <= sb.min.x);
            for &ri in &rs[i0..] {
                let m = &r[ri as usize];
                if m.min.x > sb.max.x {
                    break;
                }
                if m.intersects(sb) && self.owns_pair(tile, m, sb) {
                    sink(ri, sj);
                }
            }
        }
    }

    /// Builds a *probe* index over a single MBR collection: the
    /// collection is loaded on the `s` side and ad-hoc probe rectangles
    /// are answered by [`Tiling::probe`]. The `r` side stays empty, so
    /// the index costs the same as one side of a join tiling.
    pub fn for_probes(s: &[Rect]) -> Tiling {
        Tiling::for_inputs(&[], s)
    }

    /// Emits the index of every `s`-side MBR intersecting `probe`
    /// (closed semantics, deduplicated across tiles), in ascending id
    /// order. `s` must be the collection the tiling was built over.
    ///
    /// Per-tile work uses the xmin-sorted id lists: each scan
    /// early-exits once `min.x` passes the probe's right edge, and
    /// dedup reuses the reference-point rule with the probe as the `r`
    /// side.
    pub fn probe(&self, probe: &Rect, s: &[Rect], sink: &mut impl FnMut(u32)) {
        if probe.is_empty() {
            return;
        }
        let mut hits = Vec::new();
        let (x0, x1, y0, y1) = self.tile_span(probe);
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                let tile = (ty * self.k + tx) as usize;
                for &sj in &self.s_tiles[tile] {
                    let m = &s[sj as usize];
                    if m.min.x > probe.max.x {
                        break;
                    }
                    if probe.intersects(m) && self.owns_pair(tile, probe, m) {
                        hits.push(sj);
                    }
                }
            }
        }
        hits.sort_unstable();
        for sj in hits {
            sink(sj);
        }
    }

    /// Convenience: appends every pair owned by `tile` to `out`
    /// (equivalent to running the tile's full-range task).
    pub fn join_tile(&self, tile: usize, r: &[Rect], s: &[Rect], out: &mut Vec<(u32, u32)>) {
        let task = TileTask {
            tile: tile as u32,
            r_lo: 0,
            r_hi: self.r_tiles[tile].len() as u32,
            s_lo: 0,
            s_hi: self.s_tiles[tile].len() as u32,
        };
        self.run_task(&task, r, s, &mut |i, j| out.push((i, j)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(r: &[Rect], s: &[Rect]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, a) in r.iter().enumerate() {
            for (j, b) in s.iter().enumerate() {
                if a.intersects(b) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    fn random_rects(n: usize, seed: u64, span: f64, size: f64) -> Vec<Rect> {
        let mut state = seed;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let x = rnd() * span;
                let y = rnd() * span;
                Rect::from_coords(x, y, x + rnd() * size, y + rnd() * size)
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_small() {
        let r = random_rects(50, 1, 100.0, 10.0);
        let s = random_rects(70, 2, 100.0, 10.0);
        assert_eq!(sorted(mbr_join(&r, &s)), sorted(brute(&r, &s)));
    }

    #[test]
    fn matches_bruteforce_large_and_dedups() {
        let r = random_rects(800, 3, 1000.0, 30.0);
        let s = random_rects(900, 4, 1000.0, 30.0);
        let got = mbr_join(&r, &s);
        let expect = brute(&r, &s);
        assert_eq!(got.len(), expect.len(), "duplicate or missing pairs");
        assert_eq!(sorted(got), sorted(expect));
    }

    #[test]
    fn parallel_equals_sequential() {
        let r = random_rects(500, 5, 500.0, 25.0);
        let s = random_rects(500, 6, 500.0, 25.0);
        let seq = sorted(mbr_join(&r, &s));
        for threads in [1, 2, 4, 8] {
            assert_eq!(sorted(mbr_join_parallel(&r, &s, threads)), seq);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(mbr_join(&[], &[]).is_empty());
        let r = random_rects(5, 7, 10.0, 2.0);
        assert!(mbr_join(&r, &[]).is_empty());
        assert!(mbr_join(&[], &r).is_empty());
    }

    #[test]
    fn touching_mbrs_are_candidates() {
        let r = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)];
        let s = vec![Rect::from_coords(1.0, 0.0, 2.0, 1.0)];
        assert_eq!(mbr_join(&r, &s), vec![(0, 0)]);
    }

    #[test]
    fn giant_object_spanning_many_tiles() {
        // One huge rect against many small ones: replication must not
        // produce duplicates.
        let r = vec![Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)];
        let s = random_rects(2000, 8, 1000.0, 5.0);
        let got = mbr_join(&r, &s);
        assert_eq!(got.len(), s.len());
        let mut seen = vec![false; s.len()];
        for (i, j) in got {
            assert_eq!(i, 0);
            assert!(!seen[j as usize], "duplicate pair for {j}");
            seen[j as usize] = true;
        }
    }

    #[test]
    fn identical_point_like_mbrs() {
        let r = vec![Rect::from_coords(5.0, 5.0, 5.0, 5.0); 3];
        let s = vec![Rect::from_coords(5.0, 5.0, 5.0, 5.0); 2];
        assert_eq!(mbr_join(&r, &s).len(), 6);
    }

    /// Collects the pair set produced by running every task under the
    /// given split threshold.
    fn pairs_via_tasks(r: &[Rect], s: &[Rect], threshold: u64) -> Vec<(u32, u32)> {
        let tiles = Tiling::for_inputs(r, s);
        let mut out = Vec::new();
        for task in tiles.tasks(threshold) {
            tiles.run_task(&task, r, s, &mut |i, j| out.push((i, j)));
        }
        out
    }

    #[test]
    fn splitting_preserves_the_pair_set() {
        let r = random_rects(400, 9, 200.0, 20.0);
        let s = random_rects(450, 10, 200.0, 20.0);
        let expect = sorted(brute(&r, &s));
        // Thresholds from "never split" down to "split to single events":
        // the emitted pair set must not change.
        for threshold in [u64::MAX, DEFAULT_SPLIT_THRESHOLD, 64, 1] {
            assert_eq!(
                sorted(pairs_via_tasks(&r, &s, threshold)),
                expect,
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn dense_tile_splits_into_bounded_tasks() {
        // Everything piled into one spot: a single dense tile.
        let r = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0); 256];
        let s = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0); 256];
        let tiles = Tiling::for_inputs(&r, &s);
        let tasks = tiles.tasks(1024);
        // 256 × 256 = 65536 estimated work → at least 64 sub-tasks for
        // each tile the (replicated) objects land in.
        assert!(tasks.len() >= 64, "got {} tasks", tasks.len());
        // Within each tile, the ranges cover the event lists contiguously.
        let mut cover: std::collections::BTreeMap<u32, (u32, u32)> =
            std::collections::BTreeMap::new();
        for t in &tasks {
            let (r_cover, s_cover) = cover.entry(t.tile).or_insert((0, 0));
            assert_eq!(t.r_lo, *r_cover);
            assert_eq!(t.s_lo, *s_cover);
            *r_cover = t.r_hi;
            *s_cover = t.s_hi;
        }
        for (&tile, &(r_cover, s_cover)) in &cover {
            assert_eq!((r_cover, s_cover), (256, 256), "tile {tile}");
        }
        // And the output is still the full cross product, exactly once.
        let mut out = Vec::new();
        for task in &tasks {
            tiles.run_task(task, &r, &s, &mut |i, j| out.push((i, j)));
        }
        assert_eq!(sorted(out), sorted(brute(&r, &s)));
    }

    #[test]
    fn probe_matches_bruteforce() {
        let s = random_rects(700, 11, 300.0, 20.0);
        let tiles = Tiling::for_probes(&s);
        let probes = random_rects(200, 12, 330.0, 40.0);
        for p in &probes {
            let mut got = Vec::new();
            tiles.probe(p, &s, &mut |j| got.push(j));
            let expect: Vec<u32> = s
                .iter()
                .enumerate()
                .filter(|(_, m)| p.intersects(m))
                .map(|(j, _)| j as u32)
                .collect();
            assert_eq!(got, expect, "probe {p:?}");
        }
    }

    #[test]
    fn probe_giant_and_outside() {
        let s = random_rects(300, 13, 100.0, 5.0);
        let tiles = Tiling::for_probes(&s);
        // A probe covering everything reports each object exactly once,
        // in ascending order.
        let mut got = Vec::new();
        tiles.probe(
            &Rect::from_coords(-10.0, -10.0, 1000.0, 1000.0),
            &s,
            &mut |j| got.push(j),
        );
        assert_eq!(got, (0..s.len() as u32).collect::<Vec<_>>());
        // A probe fully outside the universe reports nothing.
        let mut none = Vec::new();
        tiles.probe(
            &Rect::from_coords(-500.0, -500.0, -400.0, -400.0),
            &s,
            &mut |j| none.push(j),
        );
        assert!(none.is_empty());
        // An empty probe reports nothing.
        let mut empty = Vec::new();
        tiles.probe(&Rect::empty(), &s, &mut |j| empty.push(j));
        assert!(empty.is_empty());
    }

    #[test]
    fn tasks_skip_empty_tiles() {
        let r = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)];
        let s = vec![Rect::from_coords(500.0, 500.0, 501.0, 501.0)];
        let tiles = Tiling::for_inputs(&r, &s);
        // Disjoint corners: no tile holds both an r and an s (k = 1 puts
        // them together, but with one object each the task list is at
        // most one entry and emits nothing).
        let mut out = Vec::new();
        for task in tiles.tasks(DEFAULT_SPLIT_THRESHOLD) {
            tiles.run_task(&task, &r, &s, &mut |i, j| out.push((i, j)));
        }
        assert!(out.is_empty());
    }
}
