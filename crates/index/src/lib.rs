//! `stj-index`: the pipeline's filter step.
//!
//! Two pieces:
//!
//! - [`mbr_class::MbrRelation`]: the O(1) classification of *how* two
//!   MBRs intersect (Figure 4), which constrains candidate relations and
//!   routes each pair to its intermediate filter;
//! - [`mod@mbr_join`]: a partitioned forward-scan plane-sweep MBR
//!   intersection join producing the candidate pair stream, in the style
//!   of the in-memory spatial joins the paper builds on \[39\].

pub mod mbr_class;
pub mod mbr_join;

pub use mbr_class::MbrRelation;
pub use mbr_join::{mbr_join, mbr_join_parallel, TileTask, Tiling, DEFAULT_SPLIT_THRESHOLD};
