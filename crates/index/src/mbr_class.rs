//! Classification of how two MBRs intersect (Figure 4).
//!
//! The enhanced MBR filter of Sec 3.1: beyond intersect/disjoint, the
//! *way* two MBRs intersect constrains which topological relations remain
//! possible between the objects, and selects which intermediate filter
//! handles the pair.

use stj_de9im::TopoRelation;
use stj_geom::Rect;

/// How two MBRs relate — the five intersecting cases of Figure 4 plus
/// disjointness. Determined in O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MbrRelation {
    /// The MBRs do not intersect: the objects are disjoint, no further
    /// work needed.
    Disjoint,
    /// The MBRs are identical (Figure 4(c)).
    Equal,
    /// `MBR(r)` lies inside `MBR(s)` without being equal (Figure 4(a)).
    Inside,
    /// `MBR(r)` contains `MBR(s)` without being equal (Figure 4(b)).
    Contains,
    /// The MBRs cross: one *strictly* spans the other's full x-extent
    /// while the other *strictly* spans the full y-extent (Figure 4(d)).
    /// For connected areal objects this *proves* the `intersects`
    /// relation outright: an interior path of one crosses the shared
    /// strip left-to-right, an interior path of the other top-to-bottom,
    /// and the two must meet.
    ///
    /// Strictness matters: if a span merely *touches* (e.g.
    /// `r.min.x == s.min.x`), the objects can share nothing but a
    /// boundary arc along the touching side and merely `meets` — such
    /// pairs classify as [`MbrRelation::Overlap`] instead.
    Cross,
    /// Any other overlap (Figure 4(e)).
    Overlap,
}

impl MbrRelation {
    /// Every class, in discriminant order — `ALL[c as usize] == c`.
    pub const ALL: [MbrRelation; 6] = [
        MbrRelation::Disjoint,
        MbrRelation::Equal,
        MbrRelation::Inside,
        MbrRelation::Contains,
        MbrRelation::Cross,
        MbrRelation::Overlap,
    ];

    /// Stable snake_case name, used as a key in telemetry output.
    pub fn name(self) -> &'static str {
        match self {
            MbrRelation::Disjoint => "disjoint",
            MbrRelation::Equal => "equal",
            MbrRelation::Inside => "inside",
            MbrRelation::Contains => "contains",
            MbrRelation::Cross => "cross",
            MbrRelation::Overlap => "overlap",
        }
    }

    /// Classifies the pair `(MBR(r), MBR(s))`.
    ///
    /// Precedence: disjoint → equal → inside → contains → cross →
    /// overlap; the cases are mutually exclusive under this order.
    pub fn classify(r: &Rect, s: &Rect) -> MbrRelation {
        if !r.intersects(s) {
            return MbrRelation::Disjoint;
        }
        if r == s {
            return MbrRelation::Equal;
        }
        if s.contains_rect(r) {
            return MbrRelation::Inside;
        }
        if r.contains_rect(s) {
            return MbrRelation::Contains;
        }
        // Cross demands *strict* spanning on all four sides. With any
        // equality the two objects can degenerate to a pure boundary
        // contact (shared edge along the touching side), where the most
        // specific relation is `meets` — so such pairs must keep `meets`
        // (and even `disjoint`, for hole configurations) as candidates
        // and are classified `Overlap` instead.
        let r_spans_x = r.min.x < s.min.x && r.max.x > s.max.x;
        let r_spans_y = r.min.y < s.min.y && r.max.y > s.max.y;
        let s_spans_x = s.min.x < r.min.x && s.max.x > r.max.x;
        let s_spans_y = s.min.y < r.min.y && s.max.y > r.max.y;
        if (r_spans_x && s_spans_y) || (s_spans_x && r_spans_y) {
            return MbrRelation::Cross;
        }
        MbrRelation::Overlap
    }

    /// The candidate topological relations for each MBR case (Figure 4),
    /// in most-specific-first order. Relations outside this set are
    /// impossible for the pair.
    ///
    /// For `Cross` the single candidate is definite. For `Equal`, a
    /// defensive `disjoint` is included (two objects with identical MBRs
    /// can in principle be disjoint; its mask is checked last, so the
    /// addition costs nothing when the paper's tighter set suffices).
    pub fn candidates(self) -> &'static [TopoRelation] {
        use TopoRelation::*;
        match self {
            MbrRelation::Disjoint => &[Disjoint],
            MbrRelation::Equal => &[Equals, CoveredBy, Covers, Meets, Intersects, Disjoint],
            MbrRelation::Inside => &[Inside, CoveredBy, Meets, Intersects, Disjoint],
            MbrRelation::Contains => &[Contains, Covers, Meets, Intersects, Disjoint],
            MbrRelation::Cross => &[Intersects],
            MbrRelation::Overlap => &[Meets, Intersects, Disjoint],
        }
    }

    /// Whether topological relation `rel` is at all possible for a pair
    /// whose MBRs classify as `self` — the `relate_p` "impossible
    /// relation" short-circuit (Sec 3.3).
    pub fn admits(self, rel: TopoRelation) -> bool {
        self.candidates().contains(&rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::Rect;
    use TopoRelation::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn disjoint_and_equal() {
        assert_eq!(
            MbrRelation::classify(&r(0.0, 0.0, 1.0, 1.0), &r(2.0, 2.0, 3.0, 3.0)),
            MbrRelation::Disjoint
        );
        assert_eq!(
            MbrRelation::classify(&r(0.0, 0.0, 1.0, 1.0), &r(0.0, 0.0, 1.0, 1.0)),
            MbrRelation::Equal
        );
    }

    #[test]
    fn containment_cases() {
        let big = r(0.0, 0.0, 10.0, 10.0);
        let small = r(2.0, 2.0, 5.0, 5.0);
        assert_eq!(MbrRelation::classify(&small, &big), MbrRelation::Inside);
        assert_eq!(MbrRelation::classify(&big, &small), MbrRelation::Contains);
        // Touching from inside still counts as containment.
        let touching = r(0.0, 2.0, 5.0, 5.0);
        assert_eq!(MbrRelation::classify(&touching, &big), MbrRelation::Inside);
    }

    #[test]
    fn cross_cases() {
        // r wide and short, s tall and narrow.
        let wide = r(0.0, 4.0, 10.0, 6.0);
        let tall = r(4.0, 0.0, 6.0, 10.0);
        assert_eq!(MbrRelation::classify(&wide, &tall), MbrRelation::Cross);
        assert_eq!(MbrRelation::classify(&tall, &wide), MbrRelation::Cross);
        // Equal extents in the spanned dimension still cross.
        let wide2 = r(4.0, 4.0, 6.0, 6.0);
        let tall2 = r(4.0, 0.0, 6.0, 10.0);
        // wide2's x-range equals tall2's; wide2 doesn't span more than
        // tall2 vertically -> this is containment (tall2 contains wide2).
        assert_eq!(MbrRelation::classify(&wide2, &tall2), MbrRelation::Inside);
    }

    #[test]
    fn degenerate_spans_are_not_cross() {
        // Regression: a "cross"-shaped pair whose spanning is not strict
        // on every side must NOT classify Cross — the objects can merely
        // meet. Witness (see crates/check adversarial corpus): trapezoid
        // (6,5),(10,5),(10,8),(4,8) [MBR (4,5)-(10,8)] vs triangle
        // (6,5),(4,8),(4,4) [MBR (4,4)-(6,8)] share only the edge
        // (4,8)-(6,5); min.x ties at 4 and max.y ties at 8.
        let trap = r(4.0, 5.0, 10.0, 8.0);
        let tri = r(4.0, 4.0, 6.0, 8.0);
        assert_eq!(MbrRelation::classify(&trap, &tri), MbrRelation::Overlap);
        assert_eq!(MbrRelation::classify(&tri, &trap), MbrRelation::Overlap);

        // Zero-width intersection strip: rects touching along an edge
        // while one spans the other's y-extent. meets must stay possible.
        let left = r(0.0, 2.0, 4.0, 6.0);
        let right = r(4.0, 0.0, 8.0, 10.0);
        assert_eq!(MbrRelation::classify(&left, &right), MbrRelation::Overlap);
        assert_eq!(MbrRelation::classify(&right, &left), MbrRelation::Overlap);

        // One tie on a single side is already enough to demote.
        let wide = r(0.0, 4.0, 10.0, 6.0);
        let tall = r(4.0, 4.0, 6.0, 10.0); // min.y ties with wide's
        assert_eq!(MbrRelation::classify(&wide, &tall), MbrRelation::Overlap);

        // Strict spanning on all four sides still crosses.
        let tall2 = r(4.0, 0.0, 6.0, 10.0);
        assert_eq!(MbrRelation::classify(&wide, &tall2), MbrRelation::Cross);
    }

    #[test]
    fn partial_overlap() {
        let a = r(0.0, 0.0, 5.0, 5.0);
        let b = r(3.0, 3.0, 8.0, 8.0);
        assert_eq!(MbrRelation::classify(&a, &b), MbrRelation::Overlap);
        // Corner touch.
        let c = r(5.0, 5.0, 8.0, 8.0);
        assert_eq!(MbrRelation::classify(&a, &c), MbrRelation::Overlap);
    }

    #[test]
    fn candidate_sets_follow_figure4() {
        assert_eq!(MbrRelation::Cross.candidates(), &[Intersects]);
        let inside = MbrRelation::Inside.candidates();
        assert!(inside.contains(&Inside) && inside.contains(&CoveredBy));
        assert!(!inside.contains(&Contains) && !inside.contains(&Equals));
        let contains = MbrRelation::Contains.candidates();
        assert!(contains.contains(&Contains) && contains.contains(&Covers));
        assert!(!contains.contains(&Inside) && !contains.contains(&Equals));
        let equal = MbrRelation::Equal.candidates();
        assert!(equal.contains(&Equals));
        assert!(!equal.contains(&Inside) && !equal.contains(&Contains));
        let overlap = MbrRelation::Overlap.candidates();
        assert_eq!(overlap, &[Meets, Intersects, Disjoint]);
    }

    #[test]
    fn admits_matches_candidates() {
        assert!(MbrRelation::Equal.admits(Equals));
        assert!(!MbrRelation::Overlap.admits(Equals));
        assert!(!MbrRelation::Inside.admits(Contains));
        assert!(MbrRelation::Cross.admits(Intersects));
        assert!(!MbrRelation::Cross.admits(Meets));
    }

    #[test]
    fn candidates_are_specific_to_general() {
        // Within each candidate list, no relation may come after one it
        // implies (the refinement walks the list in order).
        for case in [
            MbrRelation::Equal,
            MbrRelation::Inside,
            MbrRelation::Contains,
            MbrRelation::Overlap,
        ] {
            let list = case.candidates();
            for (i, a) in list.iter().enumerate() {
                for b in &list[i + 1..] {
                    assert!(
                        !b.implies(*a) || a == b,
                        "{case:?}: {b:?} (later) implies {a:?} (earlier)"
                    );
                }
            }
        }
    }
}
