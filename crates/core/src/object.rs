//! Join-ready spatial objects and datasets.

use stj_geom::{Polygon, Rect};
use stj_raster::{AprilApprox, Grid};

/// A polygon packaged with the precomputed state the pipeline needs: its
/// MBR and its APRIL approximation on the scenario grid.
///
/// Mirrors the paper's setting where MBRs and `P`/`C` interval lists are
/// produced in a preprocessing step (once per object) and the geometry
/// itself is only loaded when a pair reaches refinement.
#[derive(Clone, Debug)]
pub struct SpatialObject {
    /// The exact geometry (used only by the refinement step).
    pub polygon: Polygon,
    /// Minimum bounding rectangle.
    pub mbr: Rect,
    /// APRIL `P`/`C` interval lists on the shared grid.
    pub april: AprilApprox,
}

/// Default cap on intervals per APRIL list. Oversized approximations
/// (huge coverage polygons) are coarsened to this budget so the
/// intermediate filter's merge-joins stay far cheaper than the
/// refinement they replace; see [`AprilApprox::with_max_intervals`].
pub const DEFAULT_MAX_INTERVALS: usize = 4096;

impl SpatialObject {
    /// Preprocesses one polygon on `grid`, capping the approximation at
    /// [`DEFAULT_MAX_INTERVALS`] intervals per list.
    pub fn build(polygon: Polygon, grid: &Grid) -> SpatialObject {
        SpatialObject::build_with_budget(polygon, grid, DEFAULT_MAX_INTERVALS)
    }

    /// Preprocesses one polygon with an explicit interval budget
    /// (`usize::MAX` keeps the full-resolution approximation).
    pub fn build_with_budget(polygon: Polygon, grid: &Grid, max_intervals: usize) -> SpatialObject {
        let mbr = *polygon.mbr();
        let april = AprilApprox::build_capped(&polygon, grid, max_intervals);
        SpatialObject {
            polygon,
            mbr,
            april,
        }
    }

    /// Assembles an object from an already-built approximation (e.g.
    /// loaded from storage). The approximation must have been built for
    /// this polygon on the scenario grid; this is not re-verified.
    pub fn from_parts(polygon: Polygon, april: AprilApprox) -> SpatialObject {
        let mbr = *polygon.mbr();
        SpatialObject {
            polygon,
            mbr,
            april,
        }
    }

    /// Vertex count (the paper's complexity measure).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.polygon.num_vertices()
    }
}

/// A named collection of preprocessed objects sharing one grid.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Scenario-unique dataset name (e.g. `"OLE"`).
    pub name: String,
    /// The preprocessed objects.
    pub objects: Vec<SpatialObject>,
}

impl Dataset {
    /// Preprocesses `polygons` into a dataset, sequentially, with the
    /// default interval budget.
    pub fn build(name: impl Into<String>, polygons: Vec<Polygon>, grid: &Grid) -> Dataset {
        Dataset::build_with_budget(name, polygons, grid, DEFAULT_MAX_INTERVALS)
    }

    /// Preprocesses `polygons` sequentially with an explicit per-list
    /// interval budget (see [`DEFAULT_MAX_INTERVALS`]): tight budgets
    /// suit coverage datasets whose pairs are cheap to refine; generous
    /// budgets preserve filter power for complex-object datasets.
    pub fn build_with_budget(
        name: impl Into<String>,
        polygons: Vec<Polygon>,
        grid: &Grid,
        max_intervals: usize,
    ) -> Dataset {
        Dataset {
            name: name.into(),
            objects: polygons
                .into_iter()
                .map(|p| SpatialObject::build_with_budget(p, grid, max_intervals))
                .collect(),
        }
    }

    /// Preprocesses `polygons` with a scoped thread pool — APRIL
    /// construction dominates dataset preparation and parallelizes
    /// perfectly across objects.
    pub fn build_parallel(
        name: impl Into<String>,
        polygons: Vec<Polygon>,
        grid: &Grid,
        threads: usize,
    ) -> Dataset {
        Dataset::build_parallel_with_budget(name, polygons, grid, threads, DEFAULT_MAX_INTERVALS)
    }

    /// [`Dataset::build_parallel`] with an explicit interval budget.
    pub fn build_parallel_with_budget(
        name: impl Into<String>,
        polygons: Vec<Polygon>,
        grid: &Grid,
        threads: usize,
        max_intervals: usize,
    ) -> Dataset {
        let threads = threads.max(1);
        if threads == 1 || polygons.len() < 64 {
            return Dataset::build_with_budget(name, polygons, grid, max_intervals);
        }
        let n = polygons.len();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<SpatialObject>> = vec![None; n];
        let slot_chunks = std::sync::Mutex::new(&mut slots);
        // Index-claiming workers writing into disjoint slots.
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let polygons = &polygons;
                let slot_chunks = &slot_chunks;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let obj =
                        SpatialObject::build_with_budget(polygons[i].clone(), grid, max_intervals);
                    // Slot writes are disjoint; the mutex only guards the
                    // aliasing, not contention-heavy state.
                    slot_chunks.lock().unwrap()[i] = Some(obj);
                });
            }
        });
        Dataset {
            name: name.into(),
            objects: slots.into_iter().map(|s| s.expect("slot filled")).collect(),
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The MBRs of all objects, in order (input to the MBR join).
    pub fn mbrs(&self) -> Vec<Rect> {
        self.objects.iter().map(|o| o.mbr).collect()
    }

    /// Tight bounding rectangle of the whole dataset.
    pub fn extent(&self) -> Rect {
        let mut r = Rect::empty();
        for o in &self.objects {
            r.grow_rect(&o.mbr);
        }
        r
    }

    /// Storage accounting for the paper's Table 2, in bytes:
    /// `(polygon bytes, MBR bytes, P+C bytes)`.
    pub fn storage_bytes(&self) -> (usize, usize, usize) {
        let poly: usize = self
            .objects
            .iter()
            .map(|o| o.polygon.serialized_bytes())
            .sum();
        let mbr = self.objects.len() * Rect::SERIALIZED_BYTES;
        let april: usize = self
            .objects
            .iter()
            .map(|o| o.april.serialized_bytes())
            .sum();
        (poly, mbr, april)
    }

    /// Total vertex count across all objects.
    pub fn total_vertices(&self) -> usize {
        self.objects.iter().map(SpatialObject::num_vertices).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn polys() -> Vec<Polygon> {
        (0..100)
            .map(|i| {
                let x = f64::from(i % 10) * 10.0;
                let y = f64::from(i / 10) * 10.0;
                Polygon::rect(Rect::from_coords(x + 1.0, y + 1.0, x + 8.0, y + 8.0))
            })
            .collect()
    }

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    #[test]
    fn build_preprocesses_everything() {
        let g = grid();
        let ds = Dataset::build("T", polys(), &g);
        assert_eq!(ds.len(), 100);
        assert!(!ds.is_empty());
        for o in &ds.objects {
            assert!(!o.april.c.is_empty());
            assert_eq!(o.mbr, *o.polygon.mbr());
        }
        assert_eq!(ds.mbrs().len(), 100);
        assert_eq!(ds.total_vertices(), 400);
        let (poly_b, mbr_b, april_b) = ds.storage_bytes();
        assert_eq!(poly_b, 400 * 16);
        assert_eq!(mbr_b, 100 * 32);
        assert!(april_b > 0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = grid();
        let seq = Dataset::build("T", polys(), &g);
        let par = Dataset::build_parallel("T", polys(), &g, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.objects.iter().zip(&par.objects) {
            assert_eq!(a.mbr, b.mbr);
            assert_eq!(a.april, b.april);
        }
    }

    #[test]
    fn extent_covers_all() {
        let g = grid();
        let ds = Dataset::build("T", polys(), &g);
        let e = ds.extent();
        for o in &ds.objects {
            assert!(e.contains_rect(&o.mbr));
        }
    }
}
