//! The intermediate filters of Figure 5.
//!
//! One filter per MBR-intersection case. Each performs a short, tailored
//! sequence of linear merge-joins on the pair's `P`/`C` interval lists
//! and either *decides* the most specific relation or forwards the pair
//! to refinement with a narrowed candidate set.
//!
//! Soundness notes for every `Definite` outcome (`r`,`s` are valid
//! connected polygons, `P` cells are wholly interior, `C` covers every
//! touched cell):
//!
//! - `Disjoint` when the `C` lists don't overlap: no shared cell ⟹ no
//!   shared point.
//! - `Inside` when `C(r) ⊆ P(s)`: every point of `r` lies in a cell
//!   wholly interior to `s`, so `r ⊂ int(s)` with no boundary contact.
//!   (`Contains` is the mirror image.)
//! - `Intersects` when `C(r) ∩ P(s) ≠ ∅` (or mirrored): the shared cell
//!   is wholly interior to `s` and touched by `r`, so interiors meet —
//!   and the surrounding MBR case has already excluded every more
//!   specific relation.
//! - `CoveredBy`/`Covers` in `IFEquals`: with equal MBRs strict
//!   containment is impossible (a geometry touching the shared MBR's
//!   border cannot sit in the other's open interior), so proven
//!   containment is boundary-touching containment.

use crate::arena::ObjectRef;
use stj_de9im::TopoRelation;
use stj_raster::AprilRef;

/// Outcome of an intermediate filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IfOutcome {
    /// The most specific relation is decided; no refinement needed.
    Definite(TopoRelation),
    /// Refinement must disambiguate among the listed candidates
    /// (most-specific-first).
    Refine(&'static [TopoRelation]),
}

use IfOutcome::{Definite, Refine};
use TopoRelation::*;

/// IFEquals (Figure 5, first flow): MBRs are identical.
///
/// Detects `covered by`/`covers` exactly; forwards everything else with
/// narrowed candidates.
pub fn if_equals(r: AprilRef<'_>, s: AprilRef<'_>) -> IfOutcome {
    if !r.c.overlaps(s.c) {
        // Defensive guard: identical MBRs with disjoint conservative
        // rasters (possible for interlocking shapes).
        return Definite(Disjoint);
    }
    if r.c.matches(s.c) {
        // Same conservative footprint: could be equal, or one covering
        // the other, or merely overlapping within the same cells.
        return Refine(&[Equals, CoveredBy, Covers, Meets, Intersects, Disjoint]);
    }
    if r.c.inside(s.c) {
        if r.c.inside(s.p) {
            // r confined to s's interior cells; with equal MBRs the
            // containment must touch the boundary — covered by.
            return Definite(CoveredBy);
        }
        return Refine(&[CoveredBy, Meets, Intersects, Disjoint]);
    }
    if r.c.contains(s.c) {
        if r.p.contains(s.c) {
            return Definite(Covers);
        }
        return Refine(&[Covers, Meets, Intersects, Disjoint]);
    }
    Refine(&[Meets, Intersects, Disjoint])
}

/// IFInside (Figure 5, second flow): `MBR(r)` properly inside `MBR(s)`.
pub fn if_inside(r: AprilRef<'_>, s: AprilRef<'_>) -> IfOutcome {
    if !r.c.overlaps(s.c) {
        return Definite(Disjoint);
    }
    if r.c.inside(s.c) {
        if !s.p.is_empty() {
            if r.c.inside(s.p) {
                return Definite(Inside);
            }
            if r.c.overlaps(s.p) {
                // Interiors provably meet; specialization still open.
                return Refine(&[Inside, CoveredBy, Intersects]);
            }
        }
        return Refine(&[Disjoint, Inside, CoveredBy, Meets, Intersects]);
    }
    // r has cells outside s's footprint: the containment family is
    // impossible for this pair.
    if r.c.overlaps(s.p) || r.p.overlaps(s.c) {
        return Definite(Intersects);
    }
    Refine(&[Disjoint, Meets, Intersects])
}

/// IFContains (Figure 5, third flow): `MBR(r)` properly contains
/// `MBR(s)` — the mirror image of [`if_inside`].
pub fn if_contains(r: AprilRef<'_>, s: AprilRef<'_>) -> IfOutcome {
    if !r.c.overlaps(s.c) {
        return Definite(Disjoint);
    }
    if r.c.contains(s.c) {
        if !r.p.is_empty() {
            if r.p.contains(s.c) {
                return Definite(Contains);
            }
            if r.p.overlaps(s.c) {
                return Refine(&[Contains, Covers, Intersects]);
            }
        }
        return Refine(&[Disjoint, Contains, Covers, Meets, Intersects]);
    }
    if r.c.overlaps(s.p) || r.p.overlaps(s.c) {
        return Definite(Intersects);
    }
    Refine(&[Disjoint, Meets, Intersects])
}

/// IFIntersects (Figure 5, fourth flow): any other MBR overlap
/// (Figure 4(e)) — only `disjoint`, `meets`, `intersects` are possible.
pub fn if_intersects(r: AprilRef<'_>, s: AprilRef<'_>) -> IfOutcome {
    if !r.c.overlaps(s.c) {
        return Definite(Disjoint);
    }
    if r.c.overlaps(s.p) || r.p.overlaps(s.c) {
        return Definite(Intersects);
    }
    Refine(&[Disjoint, Meets, Intersects])
}

/// Routes a pair to its intermediate filter given the MBR classification,
/// handling the two MBR-only decisions (`Disjoint`, `Cross`) inline.
pub fn intermediate_filter(
    mbr_rel: stj_index::MbrRelation,
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
) -> IfOutcome {
    use stj_index::MbrRelation as M;
    match mbr_rel {
        M::Disjoint => Definite(Disjoint),
        M::Cross => Definite(Intersects),
        M::Equal => if_equals(r.april, s.april),
        M::Inside => if_inside(r.april, s.april),
        M::Contains => if_contains(r.april, s.april),
        M::Overlap => if_intersects(r.april, s.april),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_raster::{AprilApprox, IntervalList};

    fn april(p: &[(u64, u64)], c: &[(u64, u64)]) -> AprilApprox {
        AprilApprox {
            p: IntervalList::from_ranges(p.to_vec()),
            c: IntervalList::from_ranges(c.to_vec()),
        }
    }

    #[test]
    fn if_inside_flow() {
        let s = april(&[(10, 50)], &[(5, 60)]);
        // r fully within s's full cells -> definite inside.
        assert_eq!(
            if_inside(april(&[(20, 25)], &[(18, 30)]).as_ref(), s.as_ref()),
            Definite(Inside)
        );
        // r within s's C but straddling P -> interiors provably meet.
        assert_eq!(
            if_inside(april(&[], &[(8, 12)]).as_ref(), s.as_ref()),
            Refine(&[Inside, CoveredBy, Intersects])
        );
        // r within s's C but outside P entirely -> wide open.
        assert_eq!(
            if_inside(april(&[], &[(5, 9)]).as_ref(), s.as_ref()),
            Refine(&[Disjoint, Inside, CoveredBy, Meets, Intersects])
        );
        // r partially outside s's C, overlapping P -> definite intersects.
        assert_eq!(
            if_inside(april(&[], &[(40, 70)]).as_ref(), s.as_ref()),
            Definite(Intersects)
        );
        // r's P overlapping s's C (r reaches outside but its interior
        // meets s's footprint)... r.p ∩ s.c nonempty.
        assert_eq!(
            if_inside(april(&[(55, 58)], &[(0, 70)]).as_ref(), s.as_ref()),
            Definite(Intersects)
        );
        // No C overlap -> disjoint.
        assert_eq!(
            if_inside(april(&[], &[(100, 110)]).as_ref(), s.as_ref()),
            Definite(Disjoint)
        );
        // C overlap only, no containment, no P contact -> small refine set.
        assert_eq!(
            if_inside(
                april(&[], &[(0, 7)]).as_ref(),
                april(&[], &[(5, 60)]).as_ref()
            ),
            Refine(&[Disjoint, Meets, Intersects])
        );
        // s has no full cells at all -> cannot conclude.
        assert_eq!(
            if_inside(
                april(&[], &[(20, 25)]).as_ref(),
                april(&[], &[(5, 60)]).as_ref()
            ),
            Refine(&[Disjoint, Inside, CoveredBy, Meets, Intersects])
        );
    }

    #[test]
    fn if_contains_mirrors_if_inside() {
        let r = april(&[(10, 50)], &[(5, 60)]);
        assert_eq!(
            if_contains(r.as_ref(), april(&[(20, 25)], &[(18, 30)]).as_ref()),
            Definite(Contains)
        );
        assert_eq!(
            if_contains(r.as_ref(), april(&[], &[(8, 12)]).as_ref()),
            Refine(&[Contains, Covers, Intersects])
        );
        assert_eq!(
            if_contains(r.as_ref(), april(&[], &[(100, 110)]).as_ref()),
            Definite(Disjoint)
        );
        assert_eq!(
            if_contains(r.as_ref(), april(&[], &[(40, 70)]).as_ref()),
            Definite(Intersects)
        );
        // r without full cells.
        assert_eq!(
            if_contains(
                april(&[], &[(5, 60)]).as_ref(),
                april(&[], &[(20, 25)]).as_ref()
            ),
            Refine(&[Disjoint, Contains, Covers, Meets, Intersects])
        );
    }

    #[test]
    fn if_equals_flow() {
        let a = april(&[(10, 20)], &[(5, 25)]);
        // Identical C lists.
        assert_eq!(
            if_equals(a.as_ref(), april(&[(12, 18)], &[(5, 25)]).as_ref()),
            Refine(&[Equals, CoveredBy, Covers, Meets, Intersects, Disjoint])
        );
        // r's C inside s's C and inside s's P -> covered by, definite.
        assert_eq!(
            if_equals(april(&[], &[(12, 18)]).as_ref(), a.as_ref()),
            Definite(CoveredBy)
        );
        // r's C inside s's C but not inside P.
        assert_eq!(
            if_equals(april(&[], &[(7, 18)]).as_ref(), a.as_ref()),
            Refine(&[CoveredBy, Meets, Intersects, Disjoint])
        );
        // r's C contains s's C and r's P contains it -> covers.
        assert_eq!(
            if_equals(a.as_ref(), april(&[], &[(12, 18)]).as_ref()),
            Definite(Covers)
        );
        assert_eq!(
            if_equals(a.as_ref(), april(&[], &[(7, 18)]).as_ref()),
            Refine(&[Covers, Meets, Intersects, Disjoint])
        );
        // Overlapping but no containment either way.
        assert_eq!(
            if_equals(
                april(&[], &[(0, 10)]).as_ref(),
                april(&[], &[(5, 15)]).as_ref()
            ),
            Refine(&[Meets, Intersects, Disjoint])
        );
        // Defensive: disjoint C lists.
        assert_eq!(
            if_equals(
                april(&[], &[(0, 5)]).as_ref(),
                april(&[], &[(10, 15)]).as_ref()
            ),
            Definite(Disjoint)
        );
    }

    #[test]
    fn if_intersects_flow() {
        let s = april(&[(10, 50)], &[(5, 60)]);
        assert_eq!(
            if_intersects(april(&[], &[(100, 101)]).as_ref(), s.as_ref()),
            Definite(Disjoint)
        );
        assert_eq!(
            if_intersects(april(&[], &[(49, 70)]).as_ref(), s.as_ref()),
            Definite(Intersects)
        );
        assert_eq!(
            if_intersects(april(&[(0, 6)], &[(0, 7)]).as_ref(), s.as_ref()),
            Definite(Intersects)
        );
        assert_eq!(
            if_intersects(
                april(&[], &[(0, 7)]).as_ref(),
                april(&[], &[(5, 60)]).as_ref()
            ),
            Refine(&[Disjoint, Meets, Intersects])
        );
    }

    #[test]
    fn all_refine_sets_are_specific_to_general() {
        // Harvest every Refine outcome reachable above and check ordering
        // against the implication hierarchy.
        let sets: &[&[TopoRelation]] = &[
            &[Equals, CoveredBy, Covers, Meets, Intersects, Disjoint],
            &[CoveredBy, Meets, Intersects, Disjoint],
            &[Covers, Meets, Intersects, Disjoint],
            &[Meets, Intersects, Disjoint],
            &[Inside, CoveredBy, Intersects],
            &[Disjoint, Inside, CoveredBy, Meets, Intersects],
            &[Contains, Covers, Intersects],
            &[Disjoint, Contains, Covers, Meets, Intersects],
            &[Disjoint, Meets, Intersects],
        ];
        for set in sets {
            for (i, a) in set.iter().enumerate() {
                for b in &set[i + 1..] {
                    assert!(
                        !b.implies(*a) || a == b,
                        "{set:?}: {b:?} after {a:?} breaks specific-to-general order"
                    );
                }
            }
        }
    }
}
