//! Hilbert-range partitioning and the external (out-of-core) join
//! driver.
//!
//! The single-arena executor assumes both inputs are resident. To join
//! datasets larger than RAM, preprocessing splits each dataset into
//! *shards*: objects sorted by the Hilbert index of their MBR-center
//! cell and cut into contiguous, count-balanced runs. Hilbert order
//! keeps each shard spatially tight, so most shard pairs have disjoint
//! extents and are skipped outright; the driver walks the overlapping
//! pairs, keeps at most two shards loaded at a time, and runs the
//! existing streaming executor on each pair.
//!
//! Correctness rests on the partition being *disjoint and exhaustive*:
//! every object lives in exactly one shard, so an object pair (i, j) is
//! examined in exactly one shard pair — provided every shard pair with
//! intersecting extents runs. The per-pair candidate generator is the
//! same MBR join as the single-arena path, and skipped shard pairs can
//! contain no MBR-intersecting object pairs (their extents are the
//! unions of member MBRs), so the union of per-pair candidate sets is
//! exactly the single-arena candidate set: links *and* pipeline stats
//! are bit-identical, which invariant (g) of `stj-check` enforces.

use crate::arena::DatasetArena;
use crate::exec::{JoinResult, Link, TopologyJoin};
use crate::pipeline::PipelineStats;
use std::sync::Arc;
use stj_geom::Rect;
use stj_obs::JoinProfile;
use stj_raster::{hilbert::xy_to_d, Grid};

/// One planned shard: which objects it holds (original indices, in
/// Hilbert order) and the metadata the driver schedules on.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Original dataset indices of the member objects.
    pub ids: Vec<u32>,
    /// Smallest member Hilbert key.
    pub d_lo: u64,
    /// Largest member Hilbert key (inclusive).
    pub d_hi: u64,
    /// Union of member MBRs.
    pub extent: Rect,
}

/// Partitions objects into at most `n` shards: sorted by the Hilbert
/// index of each MBR-center cell on `grid`, then cut into contiguous
/// runs with counts differing by at most one. Returns fewer than `n`
/// shards when there are fewer than `n` objects (never an empty shard),
/// and none for an empty input.
pub fn hilbert_partition(mbrs: &[Rect], grid: &Grid, n: usize) -> Vec<ShardPlan> {
    assert!(n > 0, "shard count must be positive");
    if mbrs.is_empty() {
        return Vec::new();
    }
    let mut keyed: Vec<(u64, u32)> = mbrs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let (cx, cy) = grid.cell_of(m.center());
            (xy_to_d(grid.order(), cx, cy), i as u32)
        })
        .collect();
    // Ties on the key keep original order (the index tiebreak), so the
    // partition is fully deterministic.
    keyed.sort_unstable();

    let n = n.min(keyed.len());
    let (base, extra) = (keyed.len() / n, keyed.len() % n);
    let mut shards = Vec::with_capacity(n);
    let mut at = 0usize;
    for k in 0..n {
        let take = base + usize::from(k < extra);
        let chunk = &keyed[at..at + take];
        at += take;
        let mut extent = Rect::empty();
        for &(_, id) in chunk {
            extent.grow_rect(&mbrs[id as usize]);
        }
        shards.push(ShardPlan {
            ids: chunk.iter().map(|&(_, id)| id).collect(),
            d_lo: chunk[0].0,
            d_hi: chunk[chunk.len() - 1].0,
            extent,
        });
    }
    shards
}

/// Which input of the join a shard belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The `R` (left) input.
    Left,
    /// The `S` (right) input.
    Right,
}

/// Shard-set metadata for one join input: per-shard data extents and
/// the shard-local → original index maps used to restore global link
/// indices.
#[derive(Clone, Copy, Debug)]
pub struct ShardSet<'a> {
    /// Union of member MBRs, per shard.
    pub extents: &'a [Rect],
    /// `ids[shard][local] = original index`, per shard.
    pub ids: &'a [&'a [u32]],
}

impl ShardSet<'_> {
    fn len(&self) -> usize {
        self.extents.len()
    }
}

/// Joins two shard sets with bounded residency: for each left shard
/// (loaded once), every right shard whose extent intersects it is
/// loaded, joined with the in-memory executor, and released — at most
/// two shards are resident at any moment (one for a self-join's
/// diagonal pairs, where `same_source` lets the driver reuse the left
/// arena instead of loading the shard twice).
///
/// Links come back remapped to original dataset indices and canonically
/// sorted by `(r, s)`; the deterministic cross-shard dedup (a disjoint
/// partition can produce no duplicates, but a corrupt shard set could)
/// is a sorted `dedup`, making merge order irrelevant. `stats` and
/// `candidates` are exact sums over the executed pairs, and equal the
/// single-arena join's by the argument in the module docs. Profiles are
/// merged when the join is profiled; scheduler reports and traces are
/// per-run artifacts and come back `None`.
///
/// The `loader` returns an `Arc` so callers may cache; the driver holds
/// each arena only as long as stated above.
pub fn external_join(
    join: &TopologyJoin,
    left: ShardSet<'_>,
    right: ShardSet<'_>,
    same_source: bool,
    loader: &mut dyn FnMut(Side, usize) -> Result<Arc<DatasetArena>, String>,
) -> Result<JoinResult, String> {
    for (side, set) in [(Side::Left, &left), (Side::Right, &right)] {
        if set.extents.len() != set.ids.len() {
            return Err(format!(
                "{side:?} shard set: {} extents for {} id maps",
                set.extents.len(),
                set.ids.len()
            ));
        }
    }

    let mut links = Vec::new();
    let mut stats = PipelineStats::default();
    let mut candidates = 0u64;
    let mut profile = None;
    for a in 0..left.len() {
        let mut left_arena: Option<Arc<DatasetArena>> = None;
        for b in 0..right.len() {
            if !left.extents[a].intersects(&right.extents[b]) {
                continue;
            }
            // Load lazily: a left shard overlapped by nothing is never
            // touched.
            let la = match &left_arena {
                Some(la) => Arc::clone(la),
                None => {
                    let la = loader(Side::Left, a)?;
                    left_arena = Some(Arc::clone(&la));
                    la
                }
            };
            let rb = if same_source && a == b {
                Arc::clone(&la)
            } else {
                loader(Side::Right, b)?
            };
            let out = join.run(&la, &rb);
            drop(rb);
            let (lmap, rmap) = (&left.ids[a], &right.ids[b]);
            links.extend(out.links.iter().map(|l| Link {
                r: lmap[l.r as usize],
                s: rmap[l.s as usize],
                relation: l.relation,
            }));
            stats.merge(&out.stats);
            candidates += out.candidates;
            if let Some(p) = out.profile {
                profile.get_or_insert_with(JoinProfile::new).merge(&p);
            }
        }
    }

    links.sort_unstable_by_key(|l| (l.r, l.s));
    let before = links.len();
    links.dedup();
    debug_assert_eq!(
        before,
        links.len(),
        "disjoint shard partition produced duplicate links"
    );
    Ok(JoinResult {
        links,
        candidates,
        stats,
        profile,
        sched: None,
        trace: None,
        // Shard-pair joins run statically; no cross-shard model to
        // aggregate.
        adaptive: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Dataset;
    use stj_geom::Polygon;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn scatter(seed: u64, count: usize) -> Vec<Polygon> {
        // Deterministic pseudo-random boxes spread over the grid.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..count)
            .map(|_| {
                let x = next() * 90.0;
                let y = next() * 90.0;
                let w = 1.0 + next() * 8.0;
                let h = 1.0 + next() * 8.0;
                Polygon::rect(Rect::from_coords(x, y, x + w, y + h))
            })
            .collect()
    }

    #[test]
    fn partition_is_disjoint_exhaustive_and_balanced() {
        let polys = scatter(7, 103);
        let ds = Dataset::build("t", polys, &grid());
        let arena = ds.to_arena();
        for n in [1usize, 2, 4, 16, 103, 500] {
            let shards = hilbert_partition(arena.mbrs(), &grid(), n);
            assert_eq!(shards.len(), n.min(103));
            let mut seen = vec![false; arena.len()];
            for s in &shards {
                assert!(!s.ids.is_empty(), "empty shard");
                assert!(s.d_lo <= s.d_hi);
                for &id in &s.ids {
                    assert!(!std::mem::replace(&mut seen[id as usize], true));
                    let m = &arena.mbrs()[id as usize];
                    assert!(s.extent.intersects(m), "member MBR outside shard extent");
                }
            }
            assert!(seen.iter().all(|&s| s), "partition not exhaustive");
            let (min, max) = shards.iter().fold((usize::MAX, 0), |(lo, hi), s| {
                (lo.min(s.ids.len()), hi.max(s.ids.len()))
            });
            assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
        assert!(hilbert_partition(&[], &grid(), 4).is_empty());
    }

    #[test]
    fn external_self_join_matches_single_arena() {
        let polys = scatter(42, 160);
        let ds = Dataset::build("t", polys, &grid());
        let arena = ds.to_arena();
        let join = TopologyJoin::new();
        let mut single = join.run(&arena, &arena);
        single.links.sort_unstable_by_key(|l| (l.r, l.s));

        for n in [1usize, 3, 8] {
            let shards = hilbert_partition(arena.mbrs(), &grid(), n);
            let arenas: Vec<Arc<DatasetArena>> = shards
                .iter()
                .map(|s| Arc::new(arena.select("t", &s.ids)))
                .collect();
            let extents: Vec<Rect> = shards.iter().map(|s| s.extent).collect();
            let ids: Vec<&[u32]> = shards.iter().map(|s| s.ids.as_slice()).collect();
            let set = ShardSet {
                extents: &extents,
                ids: &ids,
            };
            let mut loads = 0usize;
            let out = external_join(&join, set, set, true, &mut |_, i| {
                loads += 1;
                Ok(Arc::clone(&arenas[i]))
            })
            .unwrap();
            assert_eq!(out.links, single.links, "{n} shards");
            assert_eq!(out.stats, single.stats, "{n} shards");
            assert_eq!(out.candidates, single.candidates, "{n} shards");
            // The diagonal reuses the left arena: at most n left loads
            // plus the off-diagonal right loads.
            assert!(loads <= n * n, "{loads} loads for {n} shards");
        }
    }

    #[test]
    fn external_join_two_datasets_matches() {
        let a = Dataset::build("a", scatter(1, 90), &grid()).to_arena();
        let b = Dataset::build("b", scatter(2, 110), &grid()).to_arena();
        let join = TopologyJoin::new();
        let mut single = join.run(&a, &b);
        single.links.sort_unstable_by_key(|l| (l.r, l.s));

        let sa = hilbert_partition(a.mbrs(), &grid(), 3);
        let sb = hilbert_partition(b.mbrs(), &grid(), 5);
        let arenas_a: Vec<Arc<DatasetArena>> =
            sa.iter().map(|s| Arc::new(a.select("a", &s.ids))).collect();
        let arenas_b: Vec<Arc<DatasetArena>> =
            sb.iter().map(|s| Arc::new(b.select("b", &s.ids))).collect();
        let (ea, ia): (Vec<Rect>, Vec<&[u32]>) =
            sa.iter().map(|s| (s.extent, s.ids.as_slice())).unzip();
        let (eb, ib): (Vec<Rect>, Vec<&[u32]>) =
            sb.iter().map(|s| (s.extent, s.ids.as_slice())).unzip();
        let out = external_join(
            &join,
            ShardSet {
                extents: &ea,
                ids: &ia,
            },
            ShardSet {
                extents: &eb,
                ids: &ib,
            },
            false,
            &mut |side, i| {
                Ok(Arc::clone(match side {
                    Side::Left => &arenas_a[i],
                    Side::Right => &arenas_b[i],
                }))
            },
        )
        .unwrap();
        assert_eq!(out.links, single.links);
        assert_eq!(out.stats, single.stats);
        assert_eq!(out.candidates, single.candidates);
    }
}
