//! `stj-core`: scalable spatial topology joins — the paper's primary
//! contribution.
//!
//! Implements the three-stage *find relation* pipeline of Georgiadis &
//! Mamoulis (EDBT 2026):
//!
//! 1. an enhanced MBR filter that classifies *how* two MBRs intersect
//!    (via `stj-index`), constraining candidate relations (Sec 3.1);
//! 2. intermediate filters over precomputed APRIL `P`/`C` interval lists
//!    (via `stj-raster`) that decide most pairs without touching the
//!    geometries (Sec 3.2, Figure 5);
//! 3. selective DE-9IM refinement (via `stj-de9im`) for the undetermined
//!    remainder.
//!
//! Entry points:
//!
//! - [`find_relation`] — the P+C pipeline (Algorithm 1);
//! - [`relate_p`] — predicate-specific tests (Sec 3.3, Figure 6);
//! - [`baselines`] — the paper's comparison methods ST2 / OP2 / APRIL;
//! - [`SpatialObject`] / [`Dataset`] — preprocessed join inputs.
//!
//! # Example
//!
//! ```
//! use stj_core::{find_relation, SpatialObject};
//! use stj_geom::{Polygon, Rect};
//! use stj_raster::Grid;
//! use stj_de9im::TopoRelation;
//!
//! let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 10);
//! let park = SpatialObject::build(
//!     Polygon::rect(Rect::from_coords(10.0, 10.0, 80.0, 80.0)),
//!     &grid,
//! );
//! let lake = SpatialObject::build(
//!     Polygon::rect(Rect::from_coords(30.0, 30.0, 50.0, 50.0)),
//!     &grid,
//! );
//! // The pipeline consumes borrowed views — from owned objects here,
//! // or from `DatasetArena` slots in batch joins.
//! let out = find_relation(lake.view(), park.view());
//! assert_eq!(out.relation, TopoRelation::Inside);
//! ```

pub mod adaptive;
pub mod arena;
pub mod baselines;
pub mod exec;
pub mod filters;
pub mod linking;
pub mod object;
pub mod pipeline;
pub mod relate_pred;
pub mod sharded;

pub use adaptive::{
    find_relation_adaptive_with, relate_p_adaptive_with, AdaptiveCellReport, AdaptiveMode,
    AdaptiveModel, AdaptiveReport, AdaptiveWorker, SKIP_PROBE_INTERVALS, WARMUP_SAMPLES,
};
pub use arena::{
    zero_copy_supported, ArenaBacking, ArenaColumns, ArenaError, ColumnSpans, DatasetArena,
    ObjectRef, WordRegion,
};
pub use baselines::{
    find_relation_april, find_relation_april_with, find_relation_op2, find_relation_op2_with,
    find_relation_st2, find_relation_st2_with,
};
pub use exec::{
    mbr_class_labels, BoundedJoinResult, ExecStrategy, JoinBounds, JoinMethod, JoinResult, Link,
    TopologyJoin, STREAM_BATCH_PAIRS,
};
pub use filters::{intermediate_filter, IfOutcome};
pub use object::{Dataset, SpatialObject, DEFAULT_MAX_INTERVALS};
pub use pipeline::{
    find_relation, find_relation_profiled, find_relation_profiled_with, find_relation_with, refine,
    refine_with, Determination, FindOutcome, PipelineStats,
};
pub use relate_pred::{
    relate_p, relate_p_profiled, relate_p_profiled_with, RelateDetermination, RelateOutcome,
};
pub use sharded::{external_join, hilbert_partition, ShardPlan, ShardSet, Side};
pub use stj_de9im::RelateScratch;
