//! Columnar dataset arena and borrowed object views.
//!
//! A [`DatasetArena`] stores a whole preprocessed dataset as a handful of
//! contiguous columns instead of one owned [`SpatialObject`] per object:
//!
//! - one MBR column (`Rect` per object) — the MBR join sweeps this
//!   directly, no gather step;
//! - one precomputed interior-point column (`Point` per object, NaN
//!   sentinel for "no detectable interior");
//! - two flat `(start, end)` interval pools (`P` and `C`) with per-object
//!   spans encoded as `n + 1` prefix offsets;
//! - one vertex pool plus two offset tables (object → ring range,
//!   ring → vertex range) for the geometry.
//!
//! [`DatasetArena::object`] hands out an [`ObjectRef`] — a `Copy` bundle
//! of borrowed views (`&Rect`, [`AprilRef`], [`GeomRef`]) that the whole
//! pipeline consumes instead of `&SpatialObject`. The same `ObjectRef` is
//! produced by [`SpatialObject::view`], so owned objects and arena slots
//! share every code path downstream of preprocessing.
//!
//! Columns are either owned `Vec`s (built in memory, or bulk-loaded from
//! the v2 store) or *views* into a single `u64`-aligned backing buffer
//! (the zero-copy open path of the v2 store). The only `unsafe` in this
//! crate is the view-column slice cast, guarded by construction-time
//! validation plus [`zero_copy_supported`].

use crate::object::{Dataset, SpatialObject};
use stj_geom::{GeomRef, Point, PolyView, Rect};
use stj_raster::{AprilRef, IntervalsRef};

/// A `Copy` borrowed view of one preprocessed object: everything the
/// find-relation pipeline needs, with no owned allocations behind it.
#[derive(Clone, Copy, Debug)]
pub struct ObjectRef<'a> {
    /// Minimum bounding rectangle.
    pub mbr: &'a Rect,
    /// APRIL `P`/`C` interval-slice views on the shared grid.
    pub april: AprilRef<'a>,
    /// The exact geometry (used only by the refinement step).
    pub geom: GeomRef<'a>,
}

impl ObjectRef<'_> {
    /// Vertex count (the paper's complexity measure).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        stj_geom::Areal::num_vertices(&self.geom)
    }
}

/// Error raised when arena columns fail structural validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaError(pub String);

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arena: {}", self.0)
    }
}

impl std::error::Error for ArenaError {}

fn err(msg: impl Into<String>) -> ArenaError {
    ArenaError(msg.into())
}

/// Marker for column element types that may be reinterpreted from the
/// arena's `u64`-word backing buffer: fixed size in whole words, align
/// ≤ 8, any bit pattern structurally meaningful (semantic checks run at
/// construction).
///
/// # Safety
/// `WORDS * 8` must equal `size_of::<Self>()`, the alignment must divide
/// 8, and the type must be plain data (no padding, no invariants enforced
/// by construction) under the layout verified by [`zero_copy_supported`].
unsafe trait Pod: Copy {
    /// Element size in `u64` words.
    const WORDS: usize;
}

// SAFETY: one word, trivially plain data.
unsafe impl Pod for u64 {
    const WORDS: usize = 1;
}
// SAFETY: `Point` is `#[repr(C)] { x: f64, y: f64 }` — two words, no
// padding; every bit pattern is a (possibly non-finite) f64 pair, and
// finiteness is validated at construction.
unsafe impl Pod for Point {
    const WORDS: usize = 2;
}
// SAFETY: `Rect` is `#[repr(C)] { min: Point, max: Point }` — four words.
unsafe impl Pod for Rect {
    const WORDS: usize = 4;
}
// SAFETY: two words *if* the tuple layout matches two consecutive u64s,
// which `zero_copy_supported` verifies at runtime before any view column
// of this type can be constructed.
unsafe impl Pod for (u64, u64) {
    const WORDS: usize = 2;
}

/// Whether this target supports zero-copy view columns: little-endian
/// words (the store format is little-endian) and the expected in-memory
/// layout for `(u64, u64)` interval pairs (not guaranteed by the Rust
/// ABI, hence probed). When `false`, loaders must fall back to bulk
/// decoding into owned columns.
pub fn zero_copy_supported() -> bool {
    if !cfg!(target_endian = "little") {
        return false;
    }
    if std::mem::size_of::<(u64, u64)>() != 16 || std::mem::align_of::<(u64, u64)>() > 8 {
        return false;
    }
    let probe: (u64, u64) = (0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
    let words: [u64; 2] = unsafe { std::mem::transmute(probe) };
    words == [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210]
}

/// A read-only region of `u64` words that an arena's view columns may
/// borrow from. Heap buffers implement it here; the store layer
/// implements it for file mappings, which is how a mapped arena keeps
/// its mapping alive without this crate knowing about files.
pub trait WordRegion: Send + Sync {
    /// The words of the region.
    fn words(&self) -> &[u64];
}

impl WordRegion for Box<[u64]> {
    fn words(&self) -> &[u64] {
        self
    }
}

/// The buffer a zero-copy arena's view columns borrow from.
pub enum ArenaBacking {
    /// A heap-owned word buffer (the copying open path, and the only
    /// option when the platform lacks memory mapping).
    Owned(Box<[u64]>),
    /// An externally managed region — typically a read-only file mapping
    /// whose pages the OS loads on demand. Dropped (unmapped) with the
    /// arena.
    Mapped(Box<dyn WordRegion>),
}

impl ArenaBacking {
    fn words(&self) -> &[u64] {
        match self {
            ArenaBacking::Owned(b) => b,
            ArenaBacking::Mapped(m) => m.words(),
        }
    }

    /// `"owned"` or `"mapped"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ArenaBacking::Owned(_) => "owned",
            ArenaBacking::Mapped(_) => "mapped",
        }
    }
}

impl From<Box<[u64]>> for ArenaBacking {
    fn from(b: Box<[u64]>) -> Self {
        ArenaBacking::Owned(b)
    }
}

/// One arena column: owned, or a span of the shared backing buffer
/// (`off`/`len` in words/elements, resolved by [`DatasetArena::col`]).
#[derive(Clone)]
enum Col<T> {
    Owned(Vec<T>),
    View { off: usize, len: usize },
}

/// Owned columns for building a [`DatasetArena`] — the bulk-load input of
/// the v2 store and the output of [`Dataset`] conversion. Field meanings
/// match the module docs; all offset tables are `len + 1` prefix arrays
/// starting at 0.
#[derive(Clone, Debug, Default)]
pub struct ArenaColumns {
    /// Scenario-unique dataset name (e.g. `"OLE"`).
    pub name: String,
    /// Per-object MBR.
    pub mbrs: Vec<Rect>,
    /// Per-object representative interior point (NaN pair = none).
    pub interior: Vec<Point>,
    /// Per-object span of `p_pool`: `n + 1` prefix offsets.
    pub p_offs: Vec<u64>,
    /// Per-object span of `c_pool`: `n + 1` prefix offsets.
    pub c_offs: Vec<u64>,
    /// Flat pool of `P` intervals, normalized within each object span.
    pub p_pool: Vec<(u64, u64)>,
    /// Flat pool of `C` intervals, normalized within each object span.
    pub c_pool: Vec<(u64, u64)>,
    /// Per-object span of rings: `n + 1` prefix offsets into the ring
    /// table (ring 0 of each object is its outer ring).
    pub obj_ring_offs: Vec<u64>,
    /// Per-ring span of `verts`: `n_rings + 1` global prefix offsets.
    pub ring_vert_offs: Vec<u64>,
    /// Flat pool of ring vertices (unclosed, winding normalized).
    pub verts: Vec<Point>,
}

/// Word offsets (into the backing buffer) and element counts of each
/// column for a zero-copy open — computed by the v2 store from its
/// section layout.
#[derive(Clone, Copy, Debug)]
pub struct ColumnSpans {
    /// Word offset of the MBR column.
    pub mbrs: usize,
    /// Word offset of the interior-point column.
    pub interior: usize,
    /// Word offset of the `P` span table.
    pub p_offs: usize,
    /// Word offset of the `C` span table.
    pub c_offs: usize,
    /// Word offset of the `P` interval pool.
    pub p_pool: usize,
    /// Word offset of the `C` interval pool.
    pub c_pool: usize,
    /// Word offset of the object → ring offset table.
    pub obj_ring_offs: usize,
    /// Word offset of the ring → vertex offset table.
    pub ring_vert_offs: usize,
    /// Word offset of the vertex pool.
    pub verts: usize,
    /// Object count.
    pub n_objects: usize,
    /// Total ring count.
    pub n_rings: usize,
    /// Total vertex count.
    pub n_vertices: usize,
    /// Total `P` interval count.
    pub n_p: usize,
    /// Total `C` interval count.
    pub n_c: usize,
}

/// A whole preprocessed dataset in columnar form. See the module docs.
pub struct DatasetArena {
    name: String,
    mbrs: Col<Rect>,
    interior: Col<Point>,
    p_offs: Col<u64>,
    c_offs: Col<u64>,
    p_pool: Col<(u64, u64)>,
    c_pool: Col<(u64, u64)>,
    obj_ring_offs: Col<u64>,
    ring_vert_offs: Col<u64>,
    verts: Col<Point>,
    backing: Option<ArenaBacking>,
}

impl DatasetArena {
    /// Converts an owned [`Dataset`] into columnar form, computing the
    /// per-object interior points (NaN sentinel for degenerate slivers).
    pub fn from_dataset(ds: &Dataset) -> DatasetArena {
        let mut cols = ArenaColumns {
            name: ds.name.clone(),
            ..ArenaColumns::default()
        };
        cols.p_offs.push(0);
        cols.c_offs.push(0);
        cols.obj_ring_offs.push(0);
        cols.ring_vert_offs.push(0);
        for o in &ds.objects {
            cols.mbrs.push(o.mbr);
            cols.interior.push(
                stj_geom::try_interior_point(&o.polygon).unwrap_or(Point::new(f64::NAN, f64::NAN)),
            );
            cols.p_pool.extend_from_slice(o.april.p.intervals());
            cols.c_pool.extend_from_slice(o.april.c.intervals());
            cols.p_offs.push(cols.p_pool.len() as u64);
            cols.c_offs.push(cols.c_pool.len() as u64);
            for ring in std::iter::once(o.polygon.outer()).chain(o.polygon.holes().iter()) {
                cols.verts.extend_from_slice(ring.vertices());
                cols.ring_vert_offs.push(cols.verts.len() as u64);
            }
            cols.obj_ring_offs
                .push((cols.ring_vert_offs.len() - 1) as u64);
        }
        DatasetArena::from_columns(cols).expect("dataset invariants hold")
    }

    /// Builds an arena from owned columns, validating structure: offset
    /// tables monotone and bounded, ≥ 1 ring per object, ≥ 3 vertices per
    /// ring, finite coordinates, normalized interval spans.
    pub fn from_columns(cols: ArenaColumns) -> Result<DatasetArena, ArenaError> {
        validate_columns(
            &cols.mbrs,
            &cols.interior,
            &cols.p_offs,
            &cols.c_offs,
            &cols.p_pool,
            &cols.c_pool,
            &cols.obj_ring_offs,
            &cols.ring_vert_offs,
            &cols.verts,
        )?;
        Ok(DatasetArena {
            name: cols.name,
            mbrs: Col::Owned(cols.mbrs),
            interior: Col::Owned(cols.interior),
            p_offs: Col::Owned(cols.p_offs),
            c_offs: Col::Owned(cols.c_offs),
            p_pool: Col::Owned(cols.p_pool),
            c_pool: Col::Owned(cols.c_pool),
            obj_ring_offs: Col::Owned(cols.obj_ring_offs),
            ring_vert_offs: Col::Owned(cols.ring_vert_offs),
            verts: Col::Owned(cols.verts),
            backing: None,
        })
    }

    /// Builds a zero-copy arena whose columns are views into `backing`
    /// at the word offsets given by `spans` — the v2 store's mmap-style
    /// open. Runs the same structural validation as
    /// [`DatasetArena::from_columns`] plus bounds checks of every span.
    ///
    /// Fails with a descriptive error when the target lacks zero-copy
    /// support (see [`zero_copy_supported`]); callers should bulk-load
    /// instead.
    pub fn from_backing(
        name: String,
        backing: impl Into<ArenaBacking>,
        spans: ColumnSpans,
    ) -> Result<DatasetArena, ArenaError> {
        if !zero_copy_supported() {
            return Err(err("zero-copy views unsupported on this target"));
        }
        let backing = backing.into();
        let words = backing.words().len();
        let span = |off: usize, len: usize, w: usize, what: &str| -> Result<(), ArenaError> {
            let need = len
                .checked_mul(w)
                .and_then(|n| n.checked_add(off))
                .ok_or_else(|| err(format!("{what} span overflows")))?;
            if need > words {
                return Err(err(format!(
                    "{what} span [{off}, {need}) exceeds backing ({words} words)"
                )));
            }
            Ok(())
        };
        let n = spans.n_objects;
        span(spans.mbrs, n, 4, "mbrs")?;
        span(spans.interior, n, 2, "interior")?;
        span(spans.p_offs, n + 1, 1, "p_offs")?;
        span(spans.c_offs, n + 1, 1, "c_offs")?;
        span(spans.p_pool, spans.n_p, 2, "p_pool")?;
        span(spans.c_pool, spans.n_c, 2, "c_pool")?;
        span(spans.obj_ring_offs, n + 1, 1, "obj_ring_offs")?;
        span(spans.ring_vert_offs, spans.n_rings + 1, 1, "ring_vert_offs")?;
        span(spans.verts, spans.n_vertices, 2, "verts")?;
        let arena = DatasetArena {
            name,
            mbrs: Col::View {
                off: spans.mbrs,
                len: n,
            },
            interior: Col::View {
                off: spans.interior,
                len: n,
            },
            p_offs: Col::View {
                off: spans.p_offs,
                len: n + 1,
            },
            c_offs: Col::View {
                off: spans.c_offs,
                len: n + 1,
            },
            p_pool: Col::View {
                off: spans.p_pool,
                len: spans.n_p,
            },
            c_pool: Col::View {
                off: spans.c_pool,
                len: spans.n_c,
            },
            obj_ring_offs: Col::View {
                off: spans.obj_ring_offs,
                len: n + 1,
            },
            ring_vert_offs: Col::View {
                off: spans.ring_vert_offs,
                len: spans.n_rings + 1,
            },
            verts: Col::View {
                off: spans.verts,
                len: spans.n_vertices,
            },
            backing: Some(backing),
        };
        validate_columns(
            arena.mbrs(),
            arena.col(&arena.interior),
            arena.col(&arena.p_offs),
            arena.col(&arena.c_offs),
            arena.col(&arena.p_pool),
            arena.col(&arena.c_pool),
            arena.col(&arena.obj_ring_offs),
            arena.col(&arena.ring_vert_offs),
            arena.col(&arena.verts),
        )?;
        Ok(arena)
    }

    /// Resolves a column to its slice.
    fn col<'a, T: Pod>(&'a self, c: &'a Col<T>) -> &'a [T] {
        match c {
            Col::Owned(v) => v,
            Col::View { off, len } => {
                let backing = self.backing.as_ref().expect("view column without backing");
                let words = &backing.words()[*off..*off + *len * T::WORDS];
                // SAFETY: the span was bounds-checked at construction,
                // `words` is 8-aligned (it borrows a `[u64]`), `T: Pod`
                // guarantees size/alignment, and `from_backing` refused
                // targets where the reinterpretation is unsound.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<T>(), *len) }
            }
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.mbrs {
            Col::Owned(v) => v.len(),
            Col::View { len, .. } => *len,
        }
    }

    /// Whether the arena holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dataset name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the columns are zero-copy views into a backing buffer
    /// (as opposed to owned, bulk-decoded vectors).
    #[inline]
    pub fn is_zero_copy(&self) -> bool {
        self.backing.is_some()
    }

    /// How the arena's memory is held: `"columns"` for owned column
    /// vectors, `"owned"` for a zero-copy arena over a heap buffer,
    /// `"mapped"` for one borrowing a file mapping.
    #[inline]
    pub fn backing_kind(&self) -> &'static str {
        match &self.backing {
            None => "columns",
            Some(b) => b.kind(),
        }
    }

    /// The MBR column — the MBR join sweeps this directly.
    #[inline]
    pub fn mbrs(&self) -> &[Rect] {
        self.col(&self.mbrs)
    }

    /// Tight bounding rectangle of the whole dataset.
    pub fn extent(&self) -> Rect {
        let mut r = Rect::empty();
        for m in self.mbrs() {
            r.grow_rect(m);
        }
        r
    }

    /// Borrowed view of object `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn object(&self, i: usize) -> ObjectRef<'_> {
        let mbr = &self.mbrs()[i];
        let p_offs = self.col(&self.p_offs);
        let c_offs = self.col(&self.c_offs);
        let april = AprilRef {
            p: IntervalsRef::new(
                &self.col(&self.p_pool)[p_offs[i] as usize..p_offs[i + 1] as usize],
            ),
            c: IntervalsRef::new(
                &self.col(&self.c_pool)[c_offs[i] as usize..c_offs[i + 1] as usize],
            ),
        };
        let ring_offs = self.col(&self.obj_ring_offs);
        let (rlo, rhi) = (ring_offs[i] as usize, ring_offs[i + 1] as usize);
        let geom = GeomRef::View(PolyView::new(
            self.col(&self.verts),
            &self.col(&self.ring_vert_offs)[rlo..=rhi],
            *mbr,
            self.col(&self.interior)[i],
        ));
        ObjectRef { mbr, april, geom }
    }

    /// Iterates over all object views.
    pub fn objects(&self) -> impl Iterator<Item = ObjectRef<'_>> {
        (0..self.len()).map(|i| self.object(i))
    }

    /// Total vertex count across all objects.
    pub fn total_vertices(&self) -> usize {
        self.col(&self.verts).len()
    }

    /// The interior-point column (NaN pair = no detectable interior).
    pub fn interior_points(&self) -> &[Point] {
        self.col(&self.interior)
    }

    /// Per-object `P` span table (`len() + 1` prefix offsets).
    pub fn p_offs(&self) -> &[u64] {
        self.col(&self.p_offs)
    }

    /// Per-object `C` span table (`len() + 1` prefix offsets).
    pub fn c_offs(&self) -> &[u64] {
        self.col(&self.c_offs)
    }

    /// The flat `P` interval pool.
    pub fn p_pool(&self) -> &[(u64, u64)] {
        self.col(&self.p_pool)
    }

    /// The flat `C` interval pool.
    pub fn c_pool(&self) -> &[(u64, u64)] {
        self.col(&self.c_pool)
    }

    /// Object → ring prefix offsets (`len() + 1` entries).
    pub fn obj_ring_offs(&self) -> &[u64] {
        self.col(&self.obj_ring_offs)
    }

    /// Ring → vertex prefix offsets (`n_rings + 1` entries, global).
    pub fn ring_vert_offs(&self) -> &[u64] {
        self.col(&self.ring_vert_offs)
    }

    /// The flat vertex pool.
    pub fn verts(&self) -> &[Point] {
        self.col(&self.verts)
    }

    /// Gathers the objects at `ids` (in that order) into a new arena
    /// with owned columns — the shard-extraction step of out-of-core
    /// preprocessing. APRIL intervals, rings and vertices are copied
    /// verbatim, so a gathered object is bit-identical to its source
    /// slot and joins involving it produce identical outcomes.
    ///
    /// # Panics
    /// Panics if any id is `>= self.len()`.
    pub fn select(&self, name: &str, ids: &[u32]) -> DatasetArena {
        let mut cols = ArenaColumns {
            name: name.to_string(),
            ..ArenaColumns::default()
        };
        cols.p_offs.push(0);
        cols.c_offs.push(0);
        cols.obj_ring_offs.push(0);
        cols.ring_vert_offs.push(0);
        let (p_offs, c_offs) = (self.p_offs(), self.c_offs());
        let ring_offs = self.obj_ring_offs();
        let rv_offs = self.ring_vert_offs();
        for &id in ids {
            let i = id as usize;
            cols.mbrs.push(self.mbrs()[i]);
            cols.interior.push(self.interior_points()[i]);
            cols.p_pool
                .extend_from_slice(&self.p_pool()[p_offs[i] as usize..p_offs[i + 1] as usize]);
            cols.c_pool
                .extend_from_slice(&self.c_pool()[c_offs[i] as usize..c_offs[i + 1] as usize]);
            cols.p_offs.push(cols.p_pool.len() as u64);
            cols.c_offs.push(cols.c_pool.len() as u64);
            for r in ring_offs[i]..ring_offs[i + 1] {
                let (lo, hi) = (
                    rv_offs[r as usize] as usize,
                    rv_offs[r as usize + 1] as usize,
                );
                cols.verts.extend_from_slice(&self.verts()[lo..hi]);
                cols.ring_vert_offs.push(cols.verts.len() as u64);
            }
            cols.obj_ring_offs
                .push((cols.ring_vert_offs.len() - 1) as u64);
        }
        DatasetArena::from_columns(cols).expect("gather from a valid arena stays valid")
    }

    /// Clones the arena's contents back into owned columns (test/tool
    /// helper; also how an arena migrates between formats).
    pub fn to_columns(&self) -> ArenaColumns {
        ArenaColumns {
            name: self.name.clone(),
            mbrs: self.mbrs().to_vec(),
            interior: self.col(&self.interior).to_vec(),
            p_offs: self.col(&self.p_offs).to_vec(),
            c_offs: self.col(&self.c_offs).to_vec(),
            p_pool: self.col(&self.p_pool).to_vec(),
            c_pool: self.col(&self.c_pool).to_vec(),
            obj_ring_offs: self.col(&self.obj_ring_offs).to_vec(),
            ring_vert_offs: self.col(&self.ring_vert_offs).to_vec(),
            verts: self.col(&self.verts).to_vec(),
        }
    }
}

impl Dataset {
    /// Converts this dataset into columnar arena form — the build-time
    /// bridge from owned preprocessing to the view-based pipeline.
    pub fn to_arena(&self) -> DatasetArena {
        DatasetArena::from_dataset(self)
    }
}

impl SpatialObject {
    /// Borrowed pipeline view of this object, interchangeable with arena
    /// slots ([`DatasetArena::object`]).
    pub fn view(&self) -> ObjectRef<'_> {
        ObjectRef {
            mbr: &self.mbr,
            april: self.april.as_ref(),
            geom: GeomRef::Poly(&self.polygon),
        }
    }
}

impl PartialEq for DatasetArena {
    /// Content equality over resolved columns (representation — owned vs
    /// zero-copy — does not matter).
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.mbrs() == other.mbrs()
            && self
                .col(&self.interior)
                .iter()
                .zip(other.col(&other.interior))
                .all(|(a, b)| {
                    a == b || (a.x.is_nan() && a.y.is_nan() && b.x.is_nan() && b.y.is_nan())
                })
            && self.col(&self.interior).len() == other.col(&other.interior).len()
            && self.col(&self.p_offs) == other.col(&other.p_offs)
            && self.col(&self.c_offs) == other.col(&other.c_offs)
            && self.col(&self.p_pool) == other.col(&other.p_pool)
            && self.col(&self.c_pool) == other.col(&other.c_pool)
            && self.col(&self.obj_ring_offs) == other.col(&other.obj_ring_offs)
            && self.col(&self.ring_vert_offs) == other.col(&other.ring_vert_offs)
            && self.col(&self.verts) == other.col(&other.verts)
    }
}

impl std::fmt::Debug for DatasetArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetArena")
            .field("name", &self.name)
            .field("objects", &self.len())
            .field("rings", &(self.col(&self.ring_vert_offs).len() - 1))
            .field("vertices", &self.col(&self.verts).len())
            .field("p_intervals", &self.col(&self.p_pool).len())
            .field("c_intervals", &self.col(&self.c_pool).len())
            .field("backing", &self.backing_kind())
            .finish()
    }
}

/// Shared structural validation — see [`DatasetArena::from_columns`].
#[allow(clippy::too_many_arguments)]
fn validate_columns(
    mbrs: &[Rect],
    interior: &[Point],
    p_offs: &[u64],
    c_offs: &[u64],
    p_pool: &[(u64, u64)],
    c_pool: &[(u64, u64)],
    obj_ring_offs: &[u64],
    ring_vert_offs: &[u64],
    verts: &[Point],
) -> Result<(), ArenaError> {
    let n = mbrs.len();
    if interior.len() != n {
        return Err(err("interior column length mismatch"));
    }
    check_offsets(p_offs, n, p_pool.len(), "p_offs")?;
    check_offsets(c_offs, n, c_pool.len(), "c_offs")?;
    let n_rings = ring_vert_offs.len().saturating_sub(1);
    check_offsets(obj_ring_offs, n, n_rings, "obj_ring_offs")?;
    check_offsets(ring_vert_offs, n_rings, verts.len(), "ring_vert_offs")?;
    for w in obj_ring_offs.windows(2) {
        if w[1] == w[0] {
            return Err(err("object with zero rings"));
        }
    }
    for w in ring_vert_offs.windows(2) {
        if w[1] - w[0] < 3 {
            return Err(err(format!("ring with {} vertices (< 3)", w[1] - w[0])));
        }
    }
    for (i, m) in mbrs.iter().enumerate() {
        if !(m.min.is_finite() && m.max.is_finite() && m.min.x <= m.max.x && m.min.y <= m.max.y) {
            return Err(err(format!("object {i}: invalid MBR")));
        }
    }
    for (i, p) in interior.iter().enumerate() {
        let nan_sentinel = p.x.is_nan() && p.y.is_nan();
        if !p.is_finite() && !nan_sentinel {
            return Err(err(format!("object {i}: invalid interior point")));
        }
    }
    if verts.iter().any(|v| !v.is_finite()) {
        return Err(err("non-finite vertex coordinate"));
    }
    check_pool(p_offs, p_pool, "P")?;
    check_pool(c_offs, c_pool, "C")?;
    Ok(())
}

/// Validates a prefix-offset table: `n + 1` entries, first 0, monotone
/// non-decreasing, last equal to the pool length.
fn check_offsets(offs: &[u64], n: usize, pool_len: usize, what: &str) -> Result<(), ArenaError> {
    if offs.len() != n + 1 {
        return Err(err(format!(
            "{what}: {} entries for {n} objects (want {})",
            offs.len(),
            n + 1
        )));
    }
    if offs[0] != 0 {
        return Err(err(format!("{what}: first offset {} != 0", offs[0])));
    }
    if offs.windows(2).any(|w| w[1] < w[0]) {
        return Err(err(format!("{what}: offsets not monotone")));
    }
    if offs[offs.len() - 1] != pool_len as u64 {
        return Err(err(format!(
            "{what}: last offset {} != pool length {pool_len}",
            offs[offs.len() - 1]
        )));
    }
    Ok(())
}

/// Validates that every object span of an interval pool is normalized:
/// non-empty intervals, sorted, pairwise disjoint and non-adjacent.
fn check_pool(offs: &[u64], pool: &[(u64, u64)], what: &str) -> Result<(), ArenaError> {
    for (i, w) in offs.windows(2).enumerate() {
        let span = &pool[w[0] as usize..w[1] as usize];
        for &(s, e) in span {
            if e <= s {
                return Err(err(format!("object {i}: empty {what} interval [{s},{e})")));
            }
        }
        for pair in span.windows(2) {
            if pair[1].0 <= pair[0].1 {
                return Err(err(format!("object {i}: {what} intervals not normalized")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::Polygon;
    use stj_raster::Grid;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn dataset() -> Dataset {
        let polys = vec![
            Polygon::rect(Rect::from_coords(5.0, 5.0, 40.0, 40.0)),
            Polygon::from_coords(
                vec![(50.0, 10.0), (90.0, 10.0), (90.0, 45.0), (50.0, 45.0)],
                vec![vec![(60.0, 20.0), (80.0, 20.0), (80.0, 35.0), (60.0, 35.0)]],
            )
            .unwrap(),
            Polygon::from_coords(vec![(10.0, 60.0), (45.0, 60.0), (20.0, 90.0)], vec![]).unwrap(),
        ];
        Dataset::build("tiny", polys, &grid())
    }

    #[test]
    fn arena_mirrors_dataset() {
        let ds = dataset();
        let arena = ds.to_arena();
        assert_eq!(arena.len(), ds.len());
        assert_eq!(arena.name(), "tiny");
        assert!(!arena.is_zero_copy());
        assert_eq!(arena.mbrs(), ds.mbrs().as_slice());
        assert_eq!(arena.total_vertices(), ds.total_vertices());
        assert_eq!(arena.extent(), ds.extent());
        for (i, o) in ds.objects.iter().enumerate() {
            let v = arena.object(i);
            assert_eq!(*v.mbr, o.mbr);
            assert_eq!(v.num_vertices(), o.num_vertices());
            assert_eq!(v.april.p.intervals(), o.april.p.intervals());
            assert_eq!(v.april.c.intervals(), o.april.c.intervals());
        }
        assert_eq!(arena.objects().count(), 3);
    }

    #[test]
    fn arena_views_relate_like_owned_objects() {
        use stj_de9im::relate;
        let ds = dataset();
        let arena = ds.to_arena();
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                let owned = relate(&ds.objects[i].polygon, &ds.objects[j].polygon);
                let viewed = relate(&arena.object(i).geom, &arena.object(j).geom);
                assert_eq!(owned, viewed, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn columns_roundtrip_and_compare_equal() {
        let arena = dataset().to_arena();
        let rebuilt = DatasetArena::from_columns(arena.to_columns()).unwrap();
        assert_eq!(arena, rebuilt);
    }

    #[test]
    fn validation_rejects_corrupt_columns() {
        let base = dataset().to_arena().to_columns();

        let mut c = base.clone();
        c.p_offs[1] = u64::MAX;
        assert!(DatasetArena::from_columns(c).is_err());

        let mut c = base.clone();
        c.ring_vert_offs.pop();
        assert!(DatasetArena::from_columns(c).is_err());

        let mut c = base.clone();
        if let Some(iv) = c.c_pool.first_mut() {
            *iv = (5, 5); // empty interval
        }
        assert!(DatasetArena::from_columns(c).is_err());

        let mut c = base.clone();
        c.verts[0] = Point::new(f64::NAN, 0.0);
        assert!(DatasetArena::from_columns(c).is_err());

        let mut c = base.clone();
        c.mbrs[0] = Rect {
            min: Point::new(1.0, 1.0),
            max: Point::new(0.0, 0.0),
        };
        assert!(DatasetArena::from_columns(c).is_err());
    }

    #[test]
    fn empty_dataset_arena() {
        let ds = Dataset::build("empty", vec![], &grid());
        let arena = ds.to_arena();
        assert!(arena.is_empty());
        assert_eq!(arena.mbrs(), &[] as &[Rect]);
        assert_eq!(arena.objects().count(), 0);
    }

    #[test]
    fn select_gathers_bit_identical_objects() {
        let arena = dataset().to_arena();
        // Reversed subset: order must follow `ids`, not the source.
        let sub = arena.select("sub", &[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.name(), "sub");
        assert_eq!(sub.backing_kind(), "columns");
        for (k, &src) in [2u32, 0].iter().enumerate() {
            let a = sub.object(k);
            let b = arena.object(src as usize);
            assert_eq!(a.mbr, b.mbr);
            assert_eq!(a.april.p.intervals(), b.april.p.intervals());
            assert_eq!(a.april.c.intervals(), b.april.c.intervals());
            assert_eq!(a.num_vertices(), b.num_vertices());
        }
        // Selecting everything in order reproduces the arena.
        let all: Vec<u32> = (0..arena.len() as u32).collect();
        let full = arena.select(arena.name(), &all);
        assert_eq!(full, arena);
        // Empty selection is a valid empty arena.
        assert!(arena.select("none", &[]).is_empty());
    }

    #[test]
    fn zero_copy_probe_runs() {
        // The probe must at least not lie on the build host: on x86-64 /
        // aarch64 Linux it is expected to hold.
        let _ = zero_copy_supported();
    }
}
