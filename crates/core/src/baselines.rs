//! The comparison methods of the paper's evaluation (Sec 4): ST2, OP2
//! and APRIL, alongside the P+C pipeline in
//! [`crate::pipeline::find_relation`].
//!
//! All four methods consume the same candidate stream (pairs whose MBRs
//! intersect) and produce the same relations; they differ in how much
//! work decides each pair:
//!
//! | method | MBR usage | intermediate filter | refinement |
//! |---|---|---|---|
//! | ST2 | intersect test only | — | every pair |
//! | OP2 | Figure 4 classification (narrows masks; decides cross pairs) | — | almost every pair |
//! | APRIL | intersect test only | intersection-only \[14\] (detects disjoint) | every non-disjoint pair |
//! | P+C | Figure 4 classification | full Figure 5 flows | undetermined pairs only |

use crate::arena::ObjectRef;
use crate::pipeline::{Determination, FindOutcome};
use stj_de9im::{relate_with, RelateScratch, TopoRelation};
use stj_index::MbrRelation;

/// ST2 — standard 2-phase: MBR intersect test, then a full DE-9IM
/// computation matched against all masks.
pub fn find_relation_st2(r: ObjectRef<'_>, s: ObjectRef<'_>) -> FindOutcome {
    find_relation_st2_with(r, s, &mut RelateScratch::default())
}

/// [`find_relation_st2`] through caller-owned scratch memory.
pub fn find_relation_st2_with(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    scratch: &mut RelateScratch,
) -> FindOutcome {
    if !r.mbr.intersects(s.mbr) {
        return FindOutcome {
            relation: TopoRelation::Disjoint,
            determination: Determination::MbrFilter,
        };
    }
    let m = relate_with(&r.geom, &s.geom, scratch);
    FindOutcome {
        relation: TopoRelation::most_specific(&m),
        determination: Determination::Refinement,
    }
}

/// OP2 — optimized 2-phase: the Figure 4 MBR classification narrows the
/// candidate masks (and decides crossing-MBR pairs outright), but every
/// other pair still pays for the DE-9IM matrix.
pub fn find_relation_op2(r: ObjectRef<'_>, s: ObjectRef<'_>) -> FindOutcome {
    find_relation_op2_with(r, s, &mut RelateScratch::default())
}

/// [`find_relation_op2`] through caller-owned scratch memory.
pub fn find_relation_op2_with(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    scratch: &mut RelateScratch,
) -> FindOutcome {
    let mbr_rel = MbrRelation::classify(r.mbr, s.mbr);
    match mbr_rel {
        MbrRelation::Disjoint => FindOutcome {
            relation: TopoRelation::Disjoint,
            determination: Determination::MbrFilter,
        },
        MbrRelation::Cross => FindOutcome {
            relation: TopoRelation::Intersects,
            determination: Determination::MbrFilter,
        },
        _ => {
            let m = relate_with(&r.geom, &s.geom, scratch);
            // Walk only the candidate masks, specific→general; the
            // narrowed sets are provably complete for each MBR class.
            let relation = mbr_rel
                .candidates()
                .iter()
                .copied()
                .find(|rel| rel.holds(&m))
                .unwrap_or_else(|| TopoRelation::most_specific(&m));
            FindOutcome {
                relation,
                determination: Determination::Refinement,
            }
        }
    }
}

/// APRIL — the intermediate filter of \[14\]: detects raster-level
/// disjointness and definite intersection, but as it cannot specialize
/// beyond `intersects`, every non-disjoint pair still requires the DE-9IM
/// matrix to find the *most specific* relation.
pub fn find_relation_april(r: ObjectRef<'_>, s: ObjectRef<'_>) -> FindOutcome {
    find_relation_april_with(r, s, &mut RelateScratch::default())
}

/// [`find_relation_april`] through caller-owned scratch memory.
pub fn find_relation_april_with(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    scratch: &mut RelateScratch,
) -> FindOutcome {
    if !r.mbr.intersects(s.mbr) {
        return FindOutcome {
            relation: TopoRelation::Disjoint,
            determination: Determination::MbrFilter,
        };
    }
    if !r.april.c.overlaps(s.april.c) {
        return FindOutcome {
            relation: TopoRelation::Disjoint,
            determination: Determination::IntermediateFilter,
        };
    }
    // The APRIL filter can also prove intersection (C∩P contact), but for
    // find-relation that knowledge cannot skip refinement: a more
    // specific relation may hold. Only disjointness short-circuits.
    let m = relate_with(&r.geom, &s.geom, scratch);
    FindOutcome {
        relation: TopoRelation::most_specific(&m),
        determination: Determination::Refinement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SpatialObject;
    use crate::pipeline::find_relation;
    use stj_geom::{Polygon, Rect};
    use stj_raster::Grid;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn obj(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::build(Polygon::rect(Rect::from_coords(x0, y0, x1, y1)), &grid())
    }

    fn catalog() -> Vec<SpatialObject> {
        vec![
            obj(0.0, 0.0, 50.0, 50.0),
            obj(10.0, 10.0, 30.0, 30.0),
            obj(0.0, 0.0, 50.0, 50.0),
            obj(50.0, 0.0, 90.0, 50.0),
            obj(60.0, 60.0, 90.0, 90.0),
            obj(25.0, 25.0, 75.0, 75.0),
            obj(0.0, 0.0, 25.0, 25.0),
            SpatialObject::build(
                Polygon::from_coords(vec![(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)], vec![]).unwrap(),
                &grid(),
            ),
            SpatialObject::build(
                Polygon::from_coords(
                    vec![(0.0, 40.0), (100.0, 40.0), (100.0, 60.0), (0.0, 60.0)],
                    vec![],
                )
                .unwrap(),
                &grid(),
            ),
            SpatialObject::build(
                Polygon::from_coords(
                    vec![(40.0, 0.0), (60.0, 0.0), (60.0, 100.0), (40.0, 100.0)],
                    vec![],
                )
                .unwrap(),
                &grid(),
            ),
        ]
    }

    #[test]
    fn all_methods_agree_on_relations() {
        let objs = catalog();
        for r in &objs {
            for s in &objs {
                let expect = find_relation_st2(r.view(), s.view()).relation;
                assert_eq!(find_relation_op2(r.view(), s.view()).relation, expect);
                assert_eq!(find_relation_april(r.view(), s.view()).relation, expect);
                assert_eq!(find_relation(r.view(), s.view()).relation, expect);
            }
        }
    }

    #[test]
    fn st2_refines_everything_non_disjoint_mbr() {
        let a = obj(0.0, 0.0, 50.0, 50.0);
        let b = obj(10.0, 10.0, 30.0, 30.0);
        assert_eq!(
            find_relation_st2(a.view(), b.view()).determination,
            Determination::Refinement
        );
        let far = obj(90.0, 90.0, 95.0, 95.0);
        assert_eq!(
            find_relation_st2(a.view(), far.view()).determination,
            Determination::MbrFilter
        );
    }

    #[test]
    fn op2_decides_cross_without_refinement() {
        let wide = obj(0.0, 40.0, 100.0, 60.0);
        let tall = obj(40.0, 0.0, 60.0, 100.0);
        let out = find_relation_op2(wide.view(), tall.view());
        assert_eq!(out.determination, Determination::MbrFilter);
        assert_eq!(out.relation, TopoRelation::Intersects);
    }

    #[test]
    fn april_detects_raster_disjoint_without_refinement() {
        let t1 = SpatialObject::build(
            Polygon::from_coords(vec![(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let t2 = SpatialObject::build(
            Polygon::from_coords(vec![(40.0, 40.0), (40.0, 39.0), (39.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let out = find_relation_april(t1.view(), t2.view());
        assert_eq!(out.relation, TopoRelation::Disjoint);
        assert_eq!(out.determination, Determination::IntermediateFilter);
    }

    #[test]
    fn april_still_refines_deep_containment() {
        // The containment P+C decides cheaply still costs APRIL a full
        // refinement — the crux of the paper's contribution.
        let outer = obj(0.0, 0.0, 90.0, 90.0);
        let inner = obj(40.0, 40.0, 50.0, 50.0);
        assert_eq!(
            find_relation_april(inner.view(), outer.view()).determination,
            Determination::Refinement
        );
        assert_eq!(
            find_relation(inner.view(), outer.view()).determination,
            Determination::IntermediateFilter
        );
    }
}
