//! Batch topology-join execution.
//!
//! [`TopologyJoin`] is the high-level entry point a downstream system
//! would use: configure the method (P+C or a baseline), optionally a
//! single predicate (`relate_p` mode), and the thread count; run it over
//! two preprocessed [`Dataset`]s and get every non-disjoint pair's
//! relation plus aggregate statistics.
//!
//! Parallelism is per candidate-pair chunk over scoped threads;
//! per-thread stats are merged at the end, so the aggregate matches a
//! sequential run exactly.
//!
//! # Observability
//!
//! Two opt-in observation channels (see `stj-obs`):
//!
//! - [`TopologyJoin::profiled`] collects a [`JoinProfile`] — per-stage
//!   latency histograms, decision counts, and a per-MBR-class breakdown.
//!   Each worker owns a private `Recorder` (no shared state on the pair
//!   path); the recorders merge after the thread scope, so the profile
//!   is exact regardless of thread count. Profiling is statically
//!   dispatched: when off, the pair loop monomorphizes to the
//!   uninstrumented code.
//! - [`TopologyJoin::progress`] prints a pairs/sec heartbeat to stderr
//!   from a monitor thread while workers count pairs in batches.

use crate::arena::{DatasetArena, ObjectRef};
use crate::baselines::{find_relation_april, find_relation_op2, find_relation_st2};
use crate::pipeline::{find_relation, find_relation_profiled, FindOutcome, PipelineStats};
use crate::relate_pred::{relate_p_profiled, RelateDetermination};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use stj_de9im::TopoRelation;
use stj_index::{mbr_join_parallel, MbrRelation};
use stj_obs::{Disabled, JoinProfile, Profiler, Progress, ProgressBatch, Recorder};

/// Which find-relation method a [`TopologyJoin`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// The paper's P+C pipeline (default).
    #[default]
    PC,
    /// Standard two-phase (MBR + full DE-9IM).
    St2,
    /// Typed-MBR two-phase.
    Op2,
    /// APRIL intersection-only intermediate filter.
    April,
}

impl JoinMethod {
    /// The per-pair entry point for this method.
    pub fn runner(self) -> fn(ObjectRef<'_>, ObjectRef<'_>) -> FindOutcome {
        match self {
            JoinMethod::PC => find_relation,
            JoinMethod::St2 => find_relation_st2,
            JoinMethod::Op2 => find_relation_op2,
            JoinMethod::April => find_relation_april,
        }
    }
}

/// One discovered link: indexes into the joined datasets plus the
/// detected relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Index into the left dataset.
    pub r: u32,
    /// Index into the right dataset.
    pub s: u32,
    /// The most specific relation (find-relation mode) or the requested
    /// predicate (predicate mode).
    pub relation: TopoRelation,
}

/// Result of a [`TopologyJoin`] run.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// Non-disjoint pairs with their relations (find-relation mode), or
    /// pairs satisfying the predicate (predicate mode).
    pub links: Vec<Link>,
    /// Number of MBR-join candidate pairs examined.
    pub candidates: u64,
    /// Aggregate pipeline statistics (find-relation mode; in predicate
    /// mode `refined` counts refinement-determined predicate answers).
    pub stats: PipelineStats,
    /// Per-stage/per-class observation, when [`TopologyJoin::profiled`]
    /// was requested.
    pub profile: Option<JoinProfile>,
}

/// The MBR-class labels matching the class ids recorded in
/// [`JoinProfile`] — pass to `JoinProfile::to_json`.
pub fn mbr_class_labels() -> [&'static str; 6] {
    let mut labels = [""; 6];
    for (i, c) in MbrRelation::ALL.into_iter().enumerate() {
        labels[i] = c.name();
    }
    labels
}

/// Configurable batch topology join between two datasets.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopologyJoin {
    method: JoinMethod,
    predicate: Option<TopoRelation>,
    threads: usize,
    profiled: bool,
    progress: bool,
}

impl TopologyJoin {
    /// A join with default configuration (P+C, find-relation mode,
    /// single-threaded, unprofiled).
    pub fn new() -> TopologyJoin {
        TopologyJoin::default()
    }

    /// Selects the find-relation method.
    pub fn method(mut self, method: JoinMethod) -> TopologyJoin {
        self.method = method;
        self
    }

    /// Switches to predicate mode: report exactly the pairs satisfying
    /// `predicate`, via the `relate_p` fast path (always P+C-based).
    pub fn predicate(mut self, predicate: TopoRelation) -> TopologyJoin {
        self.predicate = Some(predicate);
        self
    }

    /// Sets the worker thread count (0 or 1 = sequential).
    pub fn threads(mut self, threads: usize) -> TopologyJoin {
        self.threads = threads;
        self
    }

    /// Enables per-stage profiling: the result's
    /// [`profile`](JoinResult::profile) is populated. Adds per-pair
    /// timing overhead; leave off for throughput measurements.
    pub fn profiled(mut self, on: bool) -> TopologyJoin {
        self.profiled = on;
        self
    }

    /// Enables a pairs/sec heartbeat on stderr while the join runs.
    pub fn progress(mut self, on: bool) -> TopologyJoin {
        self.progress = on;
        self
    }

    /// Runs the join over two columnar arenas (owned datasets convert
    /// via [`crate::Dataset::to_arena`]).
    pub fn run(&self, left: &DatasetArena, right: &DatasetArena) -> JoinResult {
        let threads = self.threads.max(1);
        let pairs = mbr_join_parallel(left.mbrs(), right.mbrs(), threads);
        let candidates = pairs.len() as u64;

        let progress = self.progress.then(|| Progress::new(candidates));
        let stop = AtomicBool::new(false);
        let (links, stats, profile) = std::thread::scope(|scope| {
            if let Some(p) = &progress {
                scope.spawn(|| p.run_reporter(&stop, Duration::from_secs(1)));
            }
            let out = if self.profiled {
                self.run_with::<Recorder>(left, right, &pairs, threads, progress.as_ref())
            } else {
                self.run_with::<Disabled>(left, right, &pairs, threads, progress.as_ref())
            };
            stop.store(true, Ordering::Release);
            out
        });
        JoinResult {
            links,
            candidates,
            stats,
            profile,
        }
    }

    /// Statically-dispatched join body: each worker owns a fresh `P`,
    /// finished profiles (if any) merge after the scope.
    fn run_with<P: Profiler + Default + Send>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        pairs: &[(u32, u32)],
        threads: usize,
        progress: Option<&Progress>,
    ) -> (Vec<Link>, PipelineStats, Option<JoinProfile>) {
        let chunk = pairs.len().div_ceil(threads).max(1);
        let mut parts: Vec<(Vec<Link>, PipelineStats, Option<JoinProfile>)> = Vec::new();
        if threads == 1 || pairs.len() < 2 * chunk {
            parts.push(self.run_chunk::<P>(left, right, pairs, progress));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for slice in pairs.chunks(chunk) {
                    handles.push(
                        scope.spawn(move || self.run_chunk::<P>(left, right, slice, progress)),
                    );
                }
                parts = handles
                    .into_iter()
                    .map(|h| h.join().expect("join worker panicked"))
                    .collect();
            });
        }

        let mut links = Vec::new();
        let mut stats = PipelineStats::default();
        let mut profile: Option<JoinProfile> = None;
        for (mut l, st, prof) in parts {
            links.append(&mut l);
            stats.merge(&st);
            if let Some(p) = prof {
                profile.get_or_insert_with(JoinProfile::new).merge(&p);
            }
        }
        (links, stats, profile)
    }

    fn run_chunk<P: Profiler + Default>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        pairs: &[(u32, u32)],
        progress: Option<&Progress>,
    ) -> (Vec<Link>, PipelineStats, Option<JoinProfile>) {
        let mut prof = P::default();
        let mut batch = progress.map(ProgressBatch::new);
        let mut links = Vec::new();
        let mut stats = PipelineStats::default();
        match self.predicate {
            None => match self.method {
                JoinMethod::PC => {
                    for &(i, j) in pairs {
                        let out = find_relation_profiled(
                            left.object(i as usize),
                            right.object(j as usize),
                            &mut prof,
                        );
                        stats.record(&out);
                        if out.relation != TopoRelation::Disjoint {
                            links.push(Link {
                                r: i,
                                s: j,
                                relation: out.relation,
                            });
                        }
                        if let Some(b) = batch.as_mut() {
                            b.tick();
                        }
                    }
                }
                method => {
                    // Baselines are not instrumented internally; when
                    // profiling, the whole per-pair call is timed and
                    // attributed to the stage that decided the pair
                    // (no per-MBR-class breakdown).
                    let run = method.runner();
                    for &(i, j) in pairs {
                        let t = prof.start();
                        let out = run(left.object(i as usize), right.object(j as usize));
                        if P::ENABLED {
                            let stage = out.determination.stage();
                            prof.stage(stage, t);
                            prof.decided(stage);
                        }
                        stats.record(&out);
                        if out.relation != TopoRelation::Disjoint {
                            links.push(Link {
                                r: i,
                                s: j,
                                relation: out.relation,
                            });
                        }
                        if let Some(b) = batch.as_mut() {
                            b.tick();
                        }
                    }
                }
            },
            Some(p) => {
                for &(i, j) in pairs {
                    let out = relate_p_profiled(
                        left.object(i as usize),
                        right.object(j as usize),
                        p,
                        &mut prof,
                    );
                    stats.pairs += 1;
                    match out.determination {
                        RelateDetermination::MbrFilter => stats.by_mbr += 1,
                        RelateDetermination::IntermediateFilter => stats.by_intermediate += 1,
                        RelateDetermination::Refinement => stats.refined += 1,
                    }
                    if out.holds {
                        links.push(Link {
                            r: i,
                            s: j,
                            relation: p,
                        });
                    }
                    if let Some(b) = batch.as_mut() {
                        b.tick();
                    }
                }
            }
        }
        (links, stats, prof.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Dataset;
    use stj_geom::{Polygon, Rect};
    use stj_raster::Grid;

    fn datasets() -> (DatasetArena, DatasetArena) {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 200.0, 200.0), 9);
        let lefts: Vec<Polygon> = (0..20)
            .map(|i| {
                let x = f64::from(i % 5) * 40.0;
                let y = f64::from(i / 5) * 40.0;
                Polygon::rect(Rect::from_coords(x + 2.0, y + 2.0, x + 30.0, y + 30.0))
            })
            .collect();
        let rights: Vec<Polygon> = (0..20)
            .map(|i| {
                let x = f64::from(i % 5) * 40.0;
                let y = f64::from(i / 5) * 40.0;
                Polygon::rect(Rect::from_coords(x + 10.0, y + 10.0, x + 20.0, y + 20.0))
            })
            .collect();
        (
            Dataset::build("L", lefts, &grid).to_arena(),
            Dataset::build("R", rights, &grid).to_arena(),
        )
    }

    #[test]
    fn find_relation_mode_discovers_containments() {
        let (l, r) = datasets();
        let out = TopologyJoin::new().run(&l, &r);
        // Each right square is strictly inside its left square.
        assert_eq!(out.links.len(), 20);
        for link in &out.links {
            assert_eq!(link.relation, TopoRelation::Contains);
            assert_eq!(link.r, link.s);
        }
        assert_eq!(out.stats.pairs, out.candidates);
        assert!(out.profile.is_none(), "profiling is opt-in");
    }

    #[test]
    fn all_methods_produce_identical_links() {
        let (l, r) = datasets();
        let base = TopologyJoin::new().method(JoinMethod::St2).run(&l, &r);
        for m in [JoinMethod::PC, JoinMethod::Op2, JoinMethod::April] {
            let out = TopologyJoin::new().method(m).run(&l, &r);
            let mut a = base.links.clone();
            let mut b = out.links.clone();
            a.sort_by_key(|l| (l.r, l.s));
            b.sort_by_key(|l| (l.r, l.s));
            assert_eq!(a, b, "{m:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (l, r) = datasets();
        let seq = TopologyJoin::new().run(&l, &r);
        for threads in [2, 4, 8] {
            let par = TopologyJoin::new().threads(threads).run(&l, &r);
            let mut a = seq.links.clone();
            let mut b = par.links.clone();
            a.sort_by_key(|l| (l.r, l.s));
            b.sort_by_key(|l| (l.r, l.s));
            assert_eq!(a, b);
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn predicate_mode_matches_find_relation_mode() {
        let (l, r) = datasets();
        let general = TopologyJoin::new().run(&l, &r);
        let contains = TopologyJoin::new()
            .predicate(TopoRelation::Contains)
            .run(&l, &r);
        let expected: Vec<_> = general
            .links
            .iter()
            .filter(|lk| lk.relation == TopoRelation::Contains)
            .map(|lk| (lk.r, lk.s))
            .collect();
        let got: Vec<_> = contains.links.iter().map(|lk| (lk.r, lk.s)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_datasets_yield_empty_result() {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 4);
        let empty = Dataset::build("E", vec![], &grid).to_arena();
        let (l, _) = datasets();
        let out = TopologyJoin::new().run(&l, &empty);
        assert!(out.links.is_empty());
        assert_eq!(out.candidates, 0);
    }

    #[test]
    fn profiled_run_reports_consistent_totals() {
        let (l, r) = datasets();
        let out = TopologyJoin::new().profiled(true).run(&l, &r);
        let profile = out.profile.expect("profiled run returns a profile");
        assert_eq!(profile.pairs_decided(), out.stats.pairs);
        assert_eq!(
            profile.stage(stj_obs::Stage::Refinement).decided,
            out.stats.refined
        );
        // Every candidate pair passes MBR classification exactly once.
        assert_eq!(
            profile.stage(stj_obs::Stage::MbrClassify).latency.count(),
            out.candidates
        );
        let class_pairs: u64 = profile.classes.iter().map(|c| c.pairs).sum();
        assert_eq!(class_pairs, out.candidates);
    }

    #[test]
    fn mbr_class_labels_match_discriminants() {
        let labels = mbr_class_labels();
        assert_eq!(labels[MbrRelation::Disjoint as usize], "disjoint");
        assert_eq!(labels[MbrRelation::Overlap as usize], "overlap");
        assert_eq!(labels.len(), MbrRelation::ALL.len());
    }
}
