//! Batch topology-join execution.
//!
//! [`TopologyJoin`] is the high-level entry point a downstream system
//! would use: configure the method (P+C or a baseline), optionally a
//! single predicate (`relate_p` mode), the thread count, and the
//! execution strategy; run it over two preprocessed [`Dataset`]s and get
//! every non-disjoint pair's relation plus aggregate statistics.
//!
//! # Execution strategies
//!
//! Two [`ExecStrategy`] variants produce identical links (up to order),
//! [`PipelineStats`], and profile totals:
//!
//! - [`ExecStrategy::Streaming`] (default) — the fused executor. Workers
//!   claim [`TileTask`]s from a shared atomic counter (work-stealing by
//!   construction), generate each task's candidate pairs into a small
//!   per-worker batch buffer, and run the P+C pipeline (or the selected
//!   baseline / predicate runner) over the batch immediately, while the
//!   MBRs and APRIL spans touched by the filter step are still
//!   cache-hot. Peak candidate-buffer memory is `O(threads ×`
//!   [`STREAM_BATCH_PAIRS`]`)` regardless of the candidate count, and
//!   dense tiles are split into sub-range tasks so one hot spot cannot
//!   serialize the join.
//! - [`ExecStrategy::Materialized`] — the original two-phase shape: run
//!   the full MBR join first (`O(candidates)` memory), then static-chunk
//!   the pair list across workers. Kept for differential testing and for
//!   callers who want the raw candidate list via `stj_index::mbr_join*`.
//!
//! Parallel runs merge per-thread stats at the end, so the aggregate
//! matches a sequential run exactly under either strategy.
//!
//! # Observability
//!
//! Opt-in observation channels (see `stj-obs`):
//!
//! - [`TopologyJoin::profiled`] collects a [`JoinProfile`] — per-stage
//!   latency histograms, decision counts, and a per-MBR-class breakdown.
//!   Each worker owns a private `Recorder` (no shared state on the pair
//!   path); the recorders merge after the thread scope, so the profile
//!   is exact regardless of thread count. Profiling is statically
//!   dispatched: when off, the pair loop monomorphizes to the
//!   uninstrumented code.
//! - [`TopologyJoin::traced`] turns on the flight recorder: each
//!   streaming worker records one [`stj_obs::SpanRecord`] per tile task
//!   into a private fixed-capacity ring, assembled into a
//!   [`JoinTrace`] after the scope (exportable as Chrome trace-event
//!   JSON via `stj join --trace`). Tracing implies profiling, which
//!   supplies the per-stage nanos inside each span.
//! - Streaming runs always return a [`SchedReport`]: per-worker
//!   busy/idle nanos, task-claim and skew-split counts, and the
//!   derived imbalance ratio. The cost is two `Instant` reads per tile
//!   task, off the per-pair path.
//! - [`TopologyJoin::progress`] prints a pairs/sec heartbeat to stderr
//!   from a monitor thread while workers count pairs in batches. (The
//!   streaming executor reports progress without a total: the candidate
//!   count is only known once generation finishes.) Streaming workers
//!   also feed per-task busy time into the meter, so heartbeats carry
//!   worker utilization.

use crate::adaptive::{
    find_relation_adaptive_with, relate_p_adaptive_with, AdaptiveMode, AdaptiveModel,
    AdaptiveReport, AdaptiveWorker,
};
use crate::arena::{DatasetArena, ObjectRef};
use crate::baselines::{find_relation_april_with, find_relation_op2_with, find_relation_st2_with};
use crate::pipeline::{
    find_relation_profiled_with, find_relation_with, FindOutcome, PipelineStats,
};
use crate::relate_pred::{relate_p_profiled_with, RelateDetermination};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use stj_de9im::{RelateScratch, TopoRelation};
use stj_index::{mbr_join_parallel, MbrRelation, TileTask, Tiling, DEFAULT_SPLIT_THRESHOLD};
use stj_obs::{
    Disabled, JoinProfile, JoinTrace, Profiler, Progress, ProgressBatch, Recorder, SchedReport,
    SpanRecord, SpanRing, WorkerSched, WorkerTrace, DEFAULT_TRACE_SPANS,
};

/// Streaming batch size: candidate pairs buffered per worker before the
/// pipeline runs over them. Large enough to amortize the per-batch
/// dispatch, small enough (32 KiB of pair ids) that the batch plus the
/// tile's MBRs stay cache-resident.
pub const STREAM_BATCH_PAIRS: usize = 4096;

/// Which find-relation method a [`TopologyJoin`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// The paper's P+C pipeline (default).
    #[default]
    PC,
    /// Standard two-phase (MBR + full DE-9IM).
    St2,
    /// Typed-MBR two-phase.
    Op2,
    /// APRIL intersection-only intermediate filter.
    April,
}

impl JoinMethod {
    /// The per-pair entry point for this method; every method runs
    /// through the caller's (per-worker) relate scratch.
    pub fn runner(self) -> fn(ObjectRef<'_>, ObjectRef<'_>, &mut RelateScratch) -> FindOutcome {
        match self {
            JoinMethod::PC => find_relation_with,
            JoinMethod::St2 => find_relation_st2_with,
            JoinMethod::Op2 => find_relation_op2_with,
            JoinMethod::April => find_relation_april_with,
        }
    }
}

/// How a [`TopologyJoin`] schedules candidate generation and refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Fused tile-at-a-time execution: candidates stream from the tile
    /// index straight into per-worker pipeline batches (default).
    #[default]
    Streaming,
    /// Materialize the full candidate list first, then chunk it across
    /// workers.
    Materialized,
}

/// One discovered link: indexes into the joined datasets plus the
/// detected relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Index into the left dataset.
    pub r: u32,
    /// Index into the right dataset.
    pub s: u32,
    /// The most specific relation (find-relation mode) or the requested
    /// predicate (predicate mode).
    pub relation: TopoRelation,
}

/// Result of a [`TopologyJoin`] run.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// Non-disjoint pairs with their relations (find-relation mode), or
    /// pairs satisfying the predicate (predicate mode).
    pub links: Vec<Link>,
    /// Number of MBR-join candidate pairs examined.
    pub candidates: u64,
    /// Aggregate pipeline statistics (find-relation mode; in predicate
    /// mode `refined` counts refinement-determined predicate answers).
    pub stats: PipelineStats,
    /// Per-stage/per-class observation, when [`TopologyJoin::profiled`]
    /// (or [`TopologyJoin::traced`], which implies it) was requested.
    pub profile: Option<JoinProfile>,
    /// Per-worker busy/idle/task tallies. Always present for streaming
    /// runs; `None` for materialized runs (static chunking has no task
    /// scheduler to measure).
    pub sched: Option<SchedReport>,
    /// The flight-recorder trace, when [`TopologyJoin::traced`] was
    /// requested on a streaming run.
    pub trace: Option<JoinTrace>,
    /// The adaptive controller's decision trace, when
    /// [`TopologyJoin::adaptive`] enabled it. `None` under
    /// [`AdaptiveMode::Off`] (the default) and for external
    /// (out-of-core) joins, which run each shard pair statically.
    pub adaptive: Option<AdaptiveReport>,
}

/// Resource limits for a bounded join run (see
/// [`TopologyJoin::run_bounded`]). The default has no limits.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinBounds {
    /// Stop once this many links have been found. The returned link
    /// list is truncated to exactly this count (deterministically, by
    /// ascending `(r, s)`).
    pub max_links: Option<u64>,
    /// Stop once this instant passes. Checked at task and batch
    /// granularity, so a run overshoots the deadline by at most one
    /// tile task per worker.
    pub deadline: Option<Instant>,
}

/// Result of a [`TopologyJoin::run_bounded`] run: the (possibly
/// partial) join result plus which limit, if any, cut it short.
#[derive(Clone, Debug)]
pub struct BoundedJoinResult {
    /// The join output. When no limit fired this is bit-identical to
    /// [`TopologyJoin::run`]; when one did, `links` holds the pairs
    /// found before the stop (capped runs: the `(r, s)`-smallest
    /// `max_links` of them) and `stats`/`candidates` count the pairs
    /// actually examined.
    pub result: JoinResult,
    /// The link cap stopped the run.
    pub hit_link_cap: bool,
    /// The deadline stopped the run.
    pub hit_deadline: bool,
}

impl BoundedJoinResult {
    /// Whether any limit cut the run short.
    pub fn truncated(&self) -> bool {
        self.hit_link_cap || self.hit_deadline
    }
}

/// Shared cooperative-stop state for a bounded run: workers consult it
/// between tasks and batches, and trip it when a limit is exceeded.
struct LimitState {
    stop: AtomicBool,
    emitted: AtomicU64,
    /// `u64::MAX` when uncapped.
    max_links: u64,
    deadline: Option<Instant>,
    hit_cap: AtomicBool,
    hit_deadline: AtomicBool,
}

impl LimitState {
    fn new(bounds: &JoinBounds) -> LimitState {
        LimitState {
            stop: AtomicBool::new(false),
            emitted: AtomicU64::new(0),
            max_links: bounds.max_links.unwrap_or(u64::MAX),
            deadline: bounds.deadline,
            hit_cap: AtomicBool::new(false),
            hit_deadline: AtomicBool::new(false),
        }
    }

    /// Whether workers should stop claiming work; trips the stop flag
    /// on an expired deadline.
    fn should_stop(&self) -> bool {
        if self.stop.load(Ordering::Acquire) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.hit_deadline.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Folds `n` freshly found links into the global count; trips the
    /// stop flag once the cap is reached.
    fn note_links(&self, n: u64) {
        if n == 0 || self.max_links == u64::MAX {
            return;
        }
        let total = self.emitted.fetch_add(n, Ordering::Relaxed) + n;
        if total >= self.max_links {
            self.hit_cap.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Release);
        }
    }
}

/// The MBR-class labels matching the class ids recorded in
/// [`JoinProfile`] — pass to `JoinProfile::to_json`.
pub fn mbr_class_labels() -> [&'static str; 6] {
    let mut labels = [""; 6];
    for (i, c) in MbrRelation::ALL.into_iter().enumerate() {
        labels[i] = c.name();
    }
    labels
}

/// Configurable batch topology join between two datasets.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopologyJoin {
    method: JoinMethod,
    predicate: Option<TopoRelation>,
    threads: usize,
    strategy: ExecStrategy,
    profiled: bool,
    traced: bool,
    progress: bool,
    adaptive: AdaptiveMode,
}

/// Per-worker accumulation: links, stats, and (when profiling) the
/// worker's finished profile.
type WorkerPart = (Vec<Link>, PipelineStats, Option<JoinProfile>);

/// A streaming worker's full output: the pipeline accumulation plus
/// its scheduler tallies and (when tracing) its slice of the trace.
struct StreamPart {
    part: WorkerPart,
    sched: WorkerSched,
    trace: Option<WorkerTrace>,
}

/// Nanoseconds from `epoch` to `now`, saturating.
fn ns_since(epoch: Instant, now: Instant) -> u64 {
    now.saturating_duration_since(epoch)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

impl TopologyJoin {
    /// A join with default configuration (P+C, find-relation mode,
    /// streaming executor, auto-detected thread count, unprofiled).
    pub fn new() -> TopologyJoin {
        TopologyJoin::default()
    }

    /// Selects the find-relation method.
    pub fn method(mut self, method: JoinMethod) -> TopologyJoin {
        self.method = method;
        self
    }

    /// Switches to predicate mode: report exactly the pairs satisfying
    /// `predicate`, via the `relate_p` fast path (always P+C-based).
    pub fn predicate(mut self, predicate: TopoRelation) -> TopologyJoin {
        self.predicate = Some(predicate);
        self
    }

    /// Sets the worker thread count. `0` (the default) auto-detects via
    /// [`std::thread::available_parallelism`]; `1` forces a sequential
    /// run.
    pub fn threads(mut self, threads: usize) -> TopologyJoin {
        self.threads = threads;
        self
    }

    /// Selects the execution strategy (default
    /// [`ExecStrategy::Streaming`]).
    pub fn strategy(mut self, strategy: ExecStrategy) -> TopologyJoin {
        self.strategy = strategy;
        self
    }

    /// Enables per-stage profiling: the result's
    /// [`profile`](JoinResult::profile) is populated. Adds per-pair
    /// timing overhead; leave off for throughput measurements.
    pub fn profiled(mut self, on: bool) -> TopologyJoin {
        self.profiled = on;
        self
    }

    /// Enables the flight recorder on streaming runs: the result's
    /// [`trace`](JoinResult::trace) carries one span per tile task.
    /// Implies [`TopologyJoin::profiled`] (spans embed per-stage
    /// nanos). Materialized runs ignore this (no tile tasks to span).
    pub fn traced(mut self, on: bool) -> TopologyJoin {
        self.traced = on;
        self
    }

    /// Enables a pairs/sec heartbeat on stderr while the join runs.
    pub fn progress(mut self, on: bool) -> TopologyJoin {
        self.progress = on;
        self
    }

    /// Sets the adaptive filter-ordering mode (see
    /// [`crate::adaptive`]). The library default is
    /// [`AdaptiveMode::Off`] — bit-identical stats and profiles to the
    /// static pipeline; under [`AdaptiveMode::On`] links and relations
    /// are still identical, but per-(MBR class × mode) cells may skip
    /// the APRIL stage once warmed, moving decisions from
    /// `by_intermediate` to `refined`. Applies to the P+C method and
    /// predicate mode; baseline methods ignore it.
    pub fn adaptive(mut self, mode: AdaptiveMode) -> TopologyJoin {
        self.adaptive = mode;
        self
    }

    /// The effective worker count: explicit, or auto-detected when the
    /// configured count is `0`.
    fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Runs the join over two columnar arenas (owned datasets convert
    /// via [`crate::Dataset::to_arena`]).
    pub fn run(&self, left: &DatasetArena, right: &DatasetArena) -> JoinResult {
        match self.strategy {
            ExecStrategy::Streaming => self.run_streaming(left, right, None),
            ExecStrategy::Materialized => self.run_materialized(left, right),
        }
    }

    /// Runs the join under resource limits — the entry point for online
    /// serving, where a request must not hold a worker (or the client)
    /// hostage to an unbounded join.
    ///
    /// With empty `bounds` this is exactly [`TopologyJoin::run`]. With
    /// limits set, the streaming executor is used regardless of the
    /// configured strategy (only the fused tile-at-a-time path can stop
    /// early without having paid for full candidate materialization up
    /// front): workers check the limits between tile tasks and pair
    /// batches, so a tripped limit stops the join within one task per
    /// worker. `hit_link_cap` / `hit_deadline` report which limit
    /// fired; a capped run returns the `(r, s)`-smallest `max_links`
    /// links found so the truncation is deterministic for a given set
    /// of discovered links.
    pub fn run_bounded(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        bounds: JoinBounds,
    ) -> BoundedJoinResult {
        if bounds.max_links.is_none() && bounds.deadline.is_none() {
            return BoundedJoinResult {
                result: self.run(left, right),
                hit_link_cap: false,
                hit_deadline: false,
            };
        }
        let limits = LimitState::new(&bounds);
        let mut result = self.run_streaming(left, right, Some(&limits));
        let hit_link_cap = limits.hit_cap.load(Ordering::Relaxed);
        let hit_deadline = limits.hit_deadline.load(Ordering::Relaxed);
        if hit_link_cap {
            let cap = bounds.max_links.unwrap_or(u64::MAX) as usize;
            result.links.sort_unstable_by_key(|l| (l.r, l.s));
            result.links.truncate(cap);
        }
        BoundedJoinResult {
            result,
            hit_link_cap,
            hit_deadline,
        }
    }

    /// The adaptive model for one run, when the configured mode wants
    /// one (baseline methods never consult it, so none is built).
    fn run_model(&self) -> Option<AdaptiveModel> {
        (self.adaptive.enabled() && (self.predicate.is_some() || self.method == JoinMethod::PC))
            .then(|| AdaptiveModel::new(self.adaptive))
    }

    /// The materialized path: full MBR join, then static chunking.
    fn run_materialized(&self, left: &DatasetArena, right: &DatasetArena) -> JoinResult {
        let threads = self.worker_threads();
        let pairs = mbr_join_parallel(left.mbrs(), right.mbrs(), threads);
        let candidates = pairs.len() as u64;

        let progress = self.progress.then(|| Progress::new(candidates));
        let model = self.run_model();
        let stop = AtomicBool::new(false);
        let (links, stats, profile) = std::thread::scope(|scope| {
            if let Some(p) = &progress {
                scope.spawn(|| p.run_reporter(&stop, Duration::from_secs(1)));
            }
            let out = if self.profiled {
                self.run_with::<Recorder>(
                    left,
                    right,
                    &pairs,
                    threads,
                    progress.as_ref(),
                    model.as_ref(),
                )
            } else {
                self.run_with::<Disabled>(
                    left,
                    right,
                    &pairs,
                    threads,
                    progress.as_ref(),
                    model.as_ref(),
                )
            };
            stop.store(true, Ordering::Release);
            out
        });
        JoinResult {
            links,
            candidates,
            stats,
            profile,
            sched: None,
            trace: None,
            adaptive: model.map(|m| m.report()),
        }
    }

    /// The streaming fused path: workers claim tile tasks and pipeline
    /// each task's candidates in cache-sized batches. `limits` (bounded
    /// runs only) is consulted between tasks and batches.
    fn run_streaming(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        limits: Option<&LimitState>,
    ) -> JoinResult {
        let threads = self.worker_threads();
        // Candidate totals are unknown until generation finishes, so the
        // heartbeat runs without a percentage.
        let progress = self.progress.then(|| Progress::new(0));
        let model = self.run_model();
        let stop = AtomicBool::new(false);
        let ((links, stats, profile), sched, trace) = std::thread::scope(|scope| {
            if let Some(p) = &progress {
                scope.spawn(|| p.run_reporter(&stop, Duration::from_secs(1)));
            }
            // Tracing needs the per-stage timings only a Recorder
            // collects, so it forces the profiled monomorphization.
            let out = if self.profiled || self.traced {
                self.stream_with::<Recorder>(
                    left,
                    right,
                    threads,
                    progress.as_ref(),
                    limits,
                    model.as_ref(),
                )
            } else {
                self.stream_with::<Disabled>(
                    left,
                    right,
                    threads,
                    progress.as_ref(),
                    limits,
                    model.as_ref(),
                )
            };
            stop.store(true, Ordering::Release);
            out
        });
        JoinResult {
            links,
            // Every candidate pair passes through the pipeline exactly
            // once, so the stat counter is the candidate count.
            candidates: stats.pairs,
            stats,
            profile,
            sched: Some(sched),
            trace,
            adaptive: model.map(|m| m.report()),
        }
    }

    /// Statically-dispatched materialized join body: each worker owns a
    /// fresh `P`, finished profiles (if any) merge after the scope.
    fn run_with<P: Profiler + Default + Send>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        pairs: &[(u32, u32)],
        threads: usize,
        progress: Option<&Progress>,
        model: Option<&AdaptiveModel>,
    ) -> WorkerPart {
        let chunk = pairs.len().div_ceil(threads).max(1);
        let mut parts: Vec<WorkerPart> = Vec::new();
        if threads == 1 || pairs.len() < 2 * chunk {
            parts.push(self.run_chunk::<P>(left, right, pairs, progress, model));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for slice in pairs.chunks(chunk) {
                    handles.push(
                        scope.spawn(move || {
                            self.run_chunk::<P>(left, right, slice, progress, model)
                        }),
                    );
                }
                parts = handles
                    .into_iter()
                    .map(|h| h.join().expect("join worker panicked"))
                    .collect();
            });
        }
        merge_parts(parts)
    }

    /// Statically-dispatched streaming join body: `threads` workers
    /// drain the shared task counter; per-worker state merges after the
    /// scope, including scheduler tallies and (when tracing) the
    /// per-worker span rings.
    fn stream_with<P: Profiler + Default + Send>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        threads: usize,
        progress: Option<&Progress>,
        limits: Option<&LimitState>,
        model: Option<&AdaptiveModel>,
    ) -> (WorkerPart, SchedReport, Option<JoinTrace>) {
        let tiling = Tiling::for_inputs(left.mbrs(), right.mbrs());
        let tasks = tiling.tasks(DEFAULT_SPLIT_THRESHOLD);
        // A task is a skew-split when its ranges cover only a slice of
        // its tile's event lists.
        let splits: Vec<bool> = tasks
            .iter()
            .map(|t| {
                let (nr, ns) = tiling.tile_sizes(t.tile as usize);
                (t.r_hi - t.r_lo) as usize != nr || (t.s_hi - t.s_lo) as usize != ns
            })
            .collect();
        let next = AtomicUsize::new(0);
        let workers = if threads == 1 || tasks.len() < 2 {
            1
        } else {
            threads
        };
        if let Some(p) = progress {
            p.set_workers(workers);
        }
        // The trace/sched epoch: everything is timestamped relative to
        // the start of the parallel region.
        let epoch = Instant::now();
        let mut stream_parts: Vec<StreamPart> = Vec::new();
        if workers == 1 {
            stream_parts.push(self.stream_worker::<P>(
                left, right, &tiling, &tasks, &splits, 0, epoch, &next, progress, limits, model,
            ));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let (tiling, tasks, splits, next) = (&tiling, &tasks, &splits, &next);
                    handles.push(scope.spawn(move || {
                        self.stream_worker::<P>(
                            left, right, tiling, tasks, splits, w, epoch, next, progress, limits,
                            model,
                        )
                    }));
                }
                stream_parts = handles
                    .into_iter()
                    .map(|h| h.join().expect("join worker panicked"))
                    .collect();
            });
        }
        let wall_ns = ns_since(epoch, Instant::now());
        let mut parts = Vec::with_capacity(stream_parts.len());
        let mut scheds = Vec::with_capacity(stream_parts.len());
        let mut traces = Vec::new();
        for sp in stream_parts {
            parts.push(sp.part);
            scheds.push(sp.sched);
            if let Some(t) = sp.trace {
                traces.push(t);
            }
        }
        let trace = self.traced.then_some(JoinTrace {
            wall_ns,
            workers: traces,
        });
        (merge_parts(parts), SchedReport::new(wall_ns, scheds), trace)
    }

    /// One streaming worker: claim a task, stream its candidates into
    /// the batch buffer, flush the pipeline whenever the buffer fills
    /// and at the end of the task, repeat until the queue drains. The
    /// buffer is the worker's only candidate storage — capacity
    /// [`STREAM_BATCH_PAIRS`], never grown. The end-of-task flush keeps
    /// pair/link/stage tallies exactly attributable to the task that
    /// generated them (for spans and scheduler metrics) at the cost of
    /// one extra pipeline dispatch per task.
    #[allow(clippy::too_many_arguments)]
    fn stream_worker<P: Profiler + Default>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        tiling: &Tiling,
        tasks: &[TileTask],
        splits: &[bool],
        worker: usize,
        epoch: Instant,
        next: &AtomicUsize,
        progress: Option<&Progress>,
        limits: Option<&LimitState>,
        model: Option<&AdaptiveModel>,
    ) -> StreamPart {
        let mut prof = P::default();
        let mut batch = progress.map(ProgressBatch::new);
        let mut links = Vec::new();
        let mut stats = PipelineStats::default();
        let mut buf: Vec<(u32, u32)> = Vec::with_capacity(STREAM_BATCH_PAIRS);
        // The worker's relate arena: every refinement this worker runs
        // reuses these buffers, so steady-state joins don't allocate.
        let mut scratch = RelateScratch::default();
        // The worker's view of the shared adaptive model: local counter
        // deltas, merged periodically and at worker exit.
        let mut adaptive = model.map(AdaptiveWorker::new);
        // Links already reported to `limits` (bounded runs).
        let mut noted = 0usize;
        let mut sched = WorkerSched::new(worker);
        let mut ring = self.traced.then(|| SpanRing::new(DEFAULT_TRACE_SPANS));
        let start_ns = ns_since(epoch, Instant::now());
        loop {
            if limits.is_some_and(LimitState::should_stop) {
                // Drop the unprocessed tail of the batch buffer: these
                // candidates were never examined, so stats stay exact.
                buf.clear();
                break;
            }
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks.len() {
                break;
            }
            let task_start = Instant::now();
            let (pairs_before, links_before) = (stats.pairs, links.len() as u64);
            let stages_before = if ring.is_some() {
                prof.stage_ns_totals()
            } else {
                [0; 3]
            };
            tiling.run_task(&tasks[t], left.mbrs(), right.mbrs(), &mut |i, j| {
                buf.push((i, j));
                if buf.len() == STREAM_BATCH_PAIRS {
                    self.process_pairs::<P>(
                        left,
                        right,
                        &buf,
                        &mut prof,
                        &mut links,
                        &mut stats,
                        &mut batch,
                        &mut scratch,
                        &mut adaptive,
                    );
                    buf.clear();
                    if let Some(l) = limits {
                        l.note_links((links.len() - noted) as u64);
                        noted = links.len();
                    }
                }
            });
            if !buf.is_empty() {
                self.process_pairs::<P>(
                    left,
                    right,
                    &buf,
                    &mut prof,
                    &mut links,
                    &mut stats,
                    &mut batch,
                    &mut scratch,
                    &mut adaptive,
                );
                buf.clear();
                if let Some(l) = limits {
                    l.note_links((links.len() - noted) as u64);
                    noted = links.len();
                }
            }
            let task_end = Instant::now();
            let dur_ns = ns_since(task_start, task_end);
            sched.busy_ns += dur_ns;
            sched.tasks += 1;
            sched.splits += u64::from(splits[t]);
            sched.pairs += stats.pairs - pairs_before;
            sched.links += links.len() as u64 - links_before;
            if let Some(p) = progress {
                p.add_busy(dur_ns);
            }
            if let Some(ring) = &mut ring {
                let stages_after = prof.stage_ns_totals();
                let mut stage_ns = [0u64; 3];
                for (i, s) in stage_ns.iter_mut().enumerate() {
                    *s = stages_after[i] - stages_before[i];
                }
                ring.push(SpanRecord {
                    task: t as u32,
                    tile: tasks[t].tile,
                    split_depth: u8::from(splits[t]),
                    start_ns: ns_since(epoch, task_start),
                    dur_ns,
                    pairs: stats.pairs - pairs_before,
                    links: links.len() as u64 - links_before,
                    stage_ns,
                });
            }
        }
        if let Some(w) = &mut adaptive {
            // Final partial window: without this, short runs would lose
            // up to MERGE_PERIOD−1 samples per worker.
            w.flush();
        }
        let end_ns = ns_since(epoch, Instant::now());
        let trace = ring.map(|ring| WorkerTrace {
            worker,
            start_ns,
            end_ns,
            dropped: ring.dropped(),
            spans: ring.into_spans(),
        });
        StreamPart {
            part: (links, stats, prof.finish()),
            sched,
            trace,
        }
    }

    /// One materialized worker: the whole chunk is a single batch.
    fn run_chunk<P: Profiler + Default>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        pairs: &[(u32, u32)],
        progress: Option<&Progress>,
        model: Option<&AdaptiveModel>,
    ) -> WorkerPart {
        let mut prof = P::default();
        let mut batch = progress.map(ProgressBatch::new);
        let mut links = Vec::new();
        let mut stats = PipelineStats::default();
        let mut scratch = RelateScratch::default();
        let mut adaptive = model.map(AdaptiveWorker::new);
        self.process_pairs::<P>(
            left,
            right,
            pairs,
            &mut prof,
            &mut links,
            &mut stats,
            &mut batch,
            &mut scratch,
            &mut adaptive,
        );
        if let Some(w) = &mut adaptive {
            w.flush();
        }
        (links, stats, prof.finish())
    }

    /// The per-pair loop shared by both executors: runs the configured
    /// method (or predicate) over `pairs`, appending links and folding
    /// stats/profile into the caller's accumulators.
    #[allow(clippy::too_many_arguments)]
    fn process_pairs<P: Profiler>(
        &self,
        left: &DatasetArena,
        right: &DatasetArena,
        pairs: &[(u32, u32)],
        prof: &mut P,
        links: &mut Vec<Link>,
        stats: &mut PipelineStats,
        batch: &mut Option<ProgressBatch<'_>>,
        scratch: &mut RelateScratch,
        adaptive: &mut Option<AdaptiveWorker<'_>>,
    ) {
        match self.predicate {
            None => match self.method {
                JoinMethod::PC => {
                    for &(i, j) in pairs {
                        let out = match adaptive.as_mut() {
                            Some(w) => find_relation_adaptive_with(
                                left.object(i as usize),
                                right.object(j as usize),
                                prof,
                                scratch,
                                w,
                            ),
                            None => find_relation_profiled_with(
                                left.object(i as usize),
                                right.object(j as usize),
                                prof,
                                scratch,
                            ),
                        };
                        stats.record(&out);
                        if out.relation != TopoRelation::Disjoint {
                            links.push(Link {
                                r: i,
                                s: j,
                                relation: out.relation,
                            });
                        }
                        if let Some(b) = batch.as_mut() {
                            b.tick();
                        }
                    }
                }
                method => {
                    // Baselines are not instrumented internally; when
                    // profiling, the whole per-pair call is timed and
                    // attributed to the stage that decided the pair
                    // (no per-MBR-class breakdown).
                    let run = method.runner();
                    for &(i, j) in pairs {
                        let t = prof.start();
                        let out = run(left.object(i as usize), right.object(j as usize), scratch);
                        if P::ENABLED {
                            let stage = out.determination.stage();
                            prof.stage(stage, t);
                            prof.decided(stage);
                        }
                        stats.record(&out);
                        if out.relation != TopoRelation::Disjoint {
                            links.push(Link {
                                r: i,
                                s: j,
                                relation: out.relation,
                            });
                        }
                        if let Some(b) = batch.as_mut() {
                            b.tick();
                        }
                    }
                }
            },
            Some(p) => {
                for &(i, j) in pairs {
                    let out = match adaptive.as_mut() {
                        Some(w) => relate_p_adaptive_with(
                            left.object(i as usize),
                            right.object(j as usize),
                            p,
                            prof,
                            scratch,
                            w,
                        ),
                        None => relate_p_profiled_with(
                            left.object(i as usize),
                            right.object(j as usize),
                            p,
                            prof,
                            scratch,
                        ),
                    };
                    stats.pairs += 1;
                    match out.determination {
                        RelateDetermination::MbrFilter => stats.by_mbr += 1,
                        RelateDetermination::IntermediateFilter => stats.by_intermediate += 1,
                        RelateDetermination::Refinement => stats.refined += 1,
                    }
                    if out.holds {
                        links.push(Link {
                            r: i,
                            s: j,
                            relation: p,
                        });
                    }
                    if let Some(b) = batch.as_mut() {
                        b.tick();
                    }
                }
            }
        }
    }
}

/// Concatenates worker links and merges stats/profiles exactly.
fn merge_parts(parts: Vec<WorkerPart>) -> WorkerPart {
    let mut links = Vec::new();
    let mut stats = PipelineStats::default();
    let mut profile: Option<JoinProfile> = None;
    for (mut l, st, prof) in parts {
        links.append(&mut l);
        stats.merge(&st);
        if let Some(p) = prof {
            profile.get_or_insert_with(JoinProfile::new).merge(&p);
        }
    }
    (links, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Dataset;
    use stj_geom::{Polygon, Rect};
    use stj_raster::Grid;

    fn datasets() -> (DatasetArena, DatasetArena) {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 200.0, 200.0), 9);
        let lefts: Vec<Polygon> = (0..20)
            .map(|i| {
                let x = f64::from(i % 5) * 40.0;
                let y = f64::from(i / 5) * 40.0;
                Polygon::rect(Rect::from_coords(x + 2.0, y + 2.0, x + 30.0, y + 30.0))
            })
            .collect();
        let rights: Vec<Polygon> = (0..20)
            .map(|i| {
                let x = f64::from(i % 5) * 40.0;
                let y = f64::from(i / 5) * 40.0;
                Polygon::rect(Rect::from_coords(x + 10.0, y + 10.0, x + 20.0, y + 20.0))
            })
            .collect();
        (
            Dataset::build("L", lefts, &grid).to_arena(),
            Dataset::build("R", rights, &grid).to_arena(),
        )
    }

    fn sorted_links(mut links: Vec<Link>) -> Vec<Link> {
        links.sort_by_key(|l| (l.r, l.s));
        links
    }

    #[test]
    fn find_relation_mode_discovers_containments() {
        let (l, r) = datasets();
        let out = TopologyJoin::new().run(&l, &r);
        // Each right square is strictly inside its left square.
        assert_eq!(out.links.len(), 20);
        for link in &out.links {
            assert_eq!(link.relation, TopoRelation::Contains);
            assert_eq!(link.r, link.s);
        }
        assert_eq!(out.stats.pairs, out.candidates);
        assert!(out.profile.is_none(), "profiling is opt-in");
    }

    #[test]
    fn all_methods_produce_identical_links() {
        let (l, r) = datasets();
        let base = TopologyJoin::new().method(JoinMethod::St2).run(&l, &r);
        for m in [JoinMethod::PC, JoinMethod::Op2, JoinMethod::April] {
            let out = TopologyJoin::new().method(m).run(&l, &r);
            assert_eq!(
                sorted_links(base.links.clone()),
                sorted_links(out.links.clone()),
                "{m:?}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (l, r) = datasets();
        let seq = TopologyJoin::new().threads(1).run(&l, &r);
        for threads in [2, 4, 8] {
            let par = TopologyJoin::new().threads(threads).run(&l, &r);
            assert_eq!(
                sorted_links(seq.links.clone()),
                sorted_links(par.links.clone())
            );
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn strategies_agree_on_links_stats_and_candidates() {
        let (l, r) = datasets();
        for threads in [1, 3] {
            let streaming = TopologyJoin::new()
                .strategy(ExecStrategy::Streaming)
                .threads(threads)
                .run(&l, &r);
            let materialized = TopologyJoin::new()
                .strategy(ExecStrategy::Materialized)
                .threads(threads)
                .run(&l, &r);
            assert_eq!(
                sorted_links(streaming.links.clone()),
                sorted_links(materialized.links.clone())
            );
            assert_eq!(streaming.stats, materialized.stats);
            assert_eq!(streaming.candidates, materialized.candidates);
        }
    }

    #[test]
    fn zero_threads_auto_detects() {
        let (l, r) = datasets();
        // threads(0) must behave like an explicit positive thread count
        // (auto-detect), not hang or panic — and produce identical
        // results.
        let auto = TopologyJoin::new().threads(0).run(&l, &r);
        let one = TopologyJoin::new().threads(1).run(&l, &r);
        assert_eq!(
            sorted_links(auto.links.clone()),
            sorted_links(one.links.clone())
        );
        assert_eq!(auto.stats, one.stats);
    }

    #[test]
    fn predicate_mode_matches_find_relation_mode() {
        let (l, r) = datasets();
        let general = TopologyJoin::new().run(&l, &r);
        let contains = TopologyJoin::new()
            .predicate(TopoRelation::Contains)
            .run(&l, &r);
        let expected: Vec<_> = sorted_links(general.links.clone())
            .iter()
            .filter(|lk| lk.relation == TopoRelation::Contains)
            .map(|lk| (lk.r, lk.s))
            .collect();
        let got: Vec<_> = sorted_links(contains.links.clone())
            .iter()
            .map(|lk| (lk.r, lk.s))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn unbounded_run_bounded_is_bit_identical_to_run() {
        let (l, r) = datasets();
        for threads in [1, 4] {
            let plain = TopologyJoin::new().threads(threads).run(&l, &r);
            let bounded =
                TopologyJoin::new()
                    .threads(threads)
                    .run_bounded(&l, &r, JoinBounds::default());
            assert!(!bounded.truncated());
            assert_eq!(
                sorted_links(plain.links.clone()),
                sorted_links(bounded.result.links.clone())
            );
            assert_eq!(plain.stats, bounded.result.stats);
            assert_eq!(plain.candidates, bounded.result.candidates);
        }
    }

    #[test]
    fn link_cap_truncates_deterministically() {
        let (l, r) = datasets();
        let full = TopologyJoin::new().run(&l, &r);
        assert!(full.links.len() >= 10);
        for threads in [1, 4] {
            let capped = TopologyJoin::new().threads(threads).run_bounded(
                &l,
                &r,
                JoinBounds {
                    max_links: Some(5),
                    deadline: None,
                },
            );
            assert!(capped.hit_link_cap);
            assert!(capped.truncated());
            assert_eq!(capped.result.links.len(), 5);
            // Deterministic truncation: the (r, s)-smallest of the found
            // links, each of which must exist in the full join.
            let all = sorted_links(full.links.clone());
            for link in &capped.result.links {
                assert!(all.contains(link), "capped link {link:?} not in full join");
            }
            let mut sorted = capped.result.links.clone();
            sorted.sort_unstable_by_key(|l| (l.r, l.s));
            assert_eq!(sorted, capped.result.links, "cap output is (r, s)-sorted");
        }
    }

    #[test]
    fn generous_limits_do_not_truncate() {
        let (l, r) = datasets();
        let bounded = TopologyJoin::new().run_bounded(
            &l,
            &r,
            JoinBounds {
                max_links: Some(1_000_000),
                deadline: Some(Instant::now() + Duration::from_secs(600)),
            },
        );
        assert!(!bounded.truncated());
        let plain = TopologyJoin::new().run(&l, &r);
        assert_eq!(
            sorted_links(plain.links),
            sorted_links(bounded.result.links.clone())
        );
    }

    #[test]
    fn expired_deadline_stops_early() {
        let (l, r) = datasets();
        let out = TopologyJoin::new().run_bounded(
            &l,
            &r,
            JoinBounds {
                max_links: None,
                deadline: Some(Instant::now() - Duration::from_secs(1)),
            },
        );
        assert!(out.hit_deadline);
        assert!(out.truncated());
        // A pre-expired deadline is checked before any task is claimed.
        assert!(out.result.links.is_empty());
        assert_eq!(out.result.candidates, 0);
    }

    #[test]
    fn empty_datasets_yield_empty_result() {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 4);
        let empty = Dataset::build("E", vec![], &grid).to_arena();
        let (l, _) = datasets();
        for strategy in [ExecStrategy::Streaming, ExecStrategy::Materialized] {
            let out = TopologyJoin::new().strategy(strategy).run(&l, &empty);
            assert!(out.links.is_empty());
            assert_eq!(out.candidates, 0);
        }
    }

    #[test]
    fn profiled_run_reports_consistent_totals() {
        let (l, r) = datasets();
        for strategy in [ExecStrategy::Streaming, ExecStrategy::Materialized] {
            let out = TopologyJoin::new()
                .strategy(strategy)
                .profiled(true)
                .run(&l, &r);
            let profile = out.profile.expect("profiled run returns a profile");
            assert_eq!(profile.pairs_decided(), out.stats.pairs);
            assert_eq!(
                profile.stage(stj_obs::Stage::Refinement).decided,
                out.stats.refined
            );
            // Every candidate pair passes MBR classification exactly once.
            assert_eq!(
                profile.stage(stj_obs::Stage::MbrClassify).latency.count(),
                out.candidates
            );
            let class_pairs: u64 = profile.classes.iter().map(|c| c.pairs).sum();
            assert_eq!(class_pairs, out.candidates);
        }
    }

    #[test]
    fn streaming_runs_always_report_scheduler_metrics() {
        let (l, r) = datasets();
        for threads in [1, 4] {
            let out = TopologyJoin::new().threads(threads).run(&l, &r);
            let sched = out.sched.expect("streaming runs carry sched metrics");
            let tasks: u64 = sched.workers.iter().map(|w| w.tasks).sum();
            let pairs: u64 = sched.workers.iter().map(|w| w.pairs).sum();
            let links: u64 = sched.workers.iter().map(|w| w.links).sum();
            assert!(tasks > 0);
            assert_eq!(pairs, out.candidates, "every pair attributed to a task");
            assert_eq!(links, out.links.len() as u64);
            for w in &sched.workers {
                assert!(w.busy_ns <= sched.wall_ns + sched.wall_ns / 4);
            }
            assert!(sched.imbalance_ratio() >= 1.0 - 1e-9);
        }
        let mat = TopologyJoin::new()
            .strategy(ExecStrategy::Materialized)
            .run(&l, &r);
        assert!(mat.sched.is_none(), "no task scheduler to measure");
    }

    #[test]
    fn traced_run_attributes_all_work_to_spans() {
        let (l, r) = datasets();
        for threads in [1, 3] {
            let out = TopologyJoin::new()
                .threads(threads)
                .traced(true)
                .run(&l, &r);
            assert!(out.profile.is_some(), "tracing implies profiling");
            let trace = out.trace.expect("traced run returns a trace");
            let spans: Vec<_> = trace.workers.iter().flat_map(|w| w.spans.iter()).collect();
            let pairs: u64 = spans.iter().map(|s| s.pairs).sum();
            let links: u64 = spans.iter().map(|s| s.links).sum();
            assert_eq!(pairs, out.candidates);
            assert_eq!(links, out.links.len() as u64);
            for w in &trace.workers {
                assert_eq!(w.dropped, 0);
                for s in &w.spans {
                    assert!(s.start_ns + s.dur_ns <= trace.wall_ns + trace.wall_ns / 4);
                }
            }
            // Spans (plus synthesized idle tails) must account for
            // nearly all of each worker's share of the region.
            for cov in trace.span_coverage() {
                assert!(cov >= 0.5, "span coverage collapsed: {cov}");
            }
        }
        let untraced = TopologyJoin::new().run(&l, &r);
        assert!(untraced.trace.is_none(), "tracing is opt-in");
    }

    #[test]
    fn traced_results_match_untraced() {
        let (l, r) = datasets();
        let plain = TopologyJoin::new().threads(2).run(&l, &r);
        let traced = TopologyJoin::new().threads(2).traced(true).run(&l, &r);
        assert_eq!(
            sorted_links(plain.links.clone()),
            sorted_links(traced.links.clone())
        );
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.candidates, traced.candidates);
    }

    #[test]
    fn single_thread_trace_spans_are_stable_across_reruns() {
        let (l, r) = datasets();
        let run = || {
            let out = TopologyJoin::new().threads(1).traced(true).run(&l, &r);
            let trace = out.trace.expect("trace");
            // Project out the timing fields: task identity, tile,
            // split, pairs, links are deterministic at one thread.
            trace.workers[0]
                .spans
                .iter()
                .map(|s| (s.task, s.tile, s.split_depth, s.pairs, s.links))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "non-timing span fields are bit-stable");
    }

    #[test]
    fn mbr_class_labels_match_discriminants() {
        let labels = mbr_class_labels();
        assert_eq!(labels[MbrRelation::Disjoint as usize], "disjoint");
        assert_eq!(labels[MbrRelation::Overlap as usize], "overlap");
        assert_eq!(labels.len(), MbrRelation::ALL.len());
    }

    #[test]
    fn adaptive_modes_preserve_links_and_relations() {
        let (l, r) = datasets();
        let base = TopologyJoin::new().threads(1).run(&l, &r);
        assert!(base.adaptive.is_none(), "off mode must not build a model");
        for mode in [AdaptiveMode::On, AdaptiveMode::ForceSkip] {
            for threads in [1, 4] {
                for strategy in [ExecStrategy::Streaming, ExecStrategy::Materialized] {
                    let out = TopologyJoin::new()
                        .adaptive(mode)
                        .threads(threads)
                        .strategy(strategy)
                        .run(&l, &r);
                    assert_eq!(
                        sorted_links(out.links),
                        sorted_links(base.links.clone()),
                        "{mode:?} × {threads} threads × {strategy:?}"
                    );
                    assert_eq!(out.candidates, base.candidates);
                    assert_eq!(out.stats.pairs, base.stats.pairs);
                    assert_eq!(
                        out.stats.by_mbr, base.stats.by_mbr,
                        "MBR stage is untouched"
                    );
                    let report = out.adaptive.expect("enabled mode reports a trace");
                    assert_eq!(report.mode, mode);
                }
            }
        }
    }

    #[test]
    fn force_skip_moves_all_april_decisions_to_refinement() {
        let (l, r) = datasets();
        let out = TopologyJoin::new()
            .adaptive(AdaptiveMode::ForceSkip)
            .threads(1)
            .run(&l, &r);
        assert_eq!(out.stats.by_intermediate, 0);
        assert_eq!(out.stats.refined, out.stats.pairs - out.stats.by_mbr);
        let report = out.adaptive.expect("force-skip reports a trace");
        assert_eq!(report.skipped_pairs(), out.stats.refined);
    }

    #[test]
    fn adaptive_predicate_mode_matches_static_answers() {
        let (l, r) = datasets();
        for p in [TopoRelation::Contains, TopoRelation::Intersects] {
            let base = TopologyJoin::new().predicate(p).threads(1).run(&l, &r);
            for mode in [AdaptiveMode::On, AdaptiveMode::ForceSkip] {
                let out = TopologyJoin::new()
                    .predicate(p)
                    .adaptive(mode)
                    .threads(4)
                    .run(&l, &r);
                assert_eq!(
                    sorted_links(out.links),
                    sorted_links(base.links.clone()),
                    "{p:?} under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn baseline_methods_ignore_adaptive() {
        let (l, r) = datasets();
        let out = TopologyJoin::new()
            .method(JoinMethod::St2)
            .adaptive(AdaptiveMode::ForceSkip)
            .run(&l, &r);
        assert!(out.adaptive.is_none(), "baselines never consult the model");
    }
}
