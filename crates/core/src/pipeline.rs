//! Algorithm 1: the *find relation* pipeline (P+C method).
//!
//! For a pair whose MBRs intersect: classify the MBR intersection
//! (Sec 3.1), run the matching intermediate filter on the `P`/`C`
//! interval lists (Sec 3.2), and only when the filter cannot decide,
//! compute the DE-9IM matrix and match candidate masks specific→general
//! (selective refinement).

use crate::arena::ObjectRef;
use crate::filters::{intermediate_filter, IfOutcome};
use stj_de9im::{relate_with, RelateScratch, TopoRelation};
use stj_index::MbrRelation;
use stj_obs::{Disabled, Profiler, Stage};

/// How a pair's relation was determined — the pipeline stage that
/// produced the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Determination {
    /// Decided by the MBR filter alone (disjoint MBRs, or the crossing
    /// case of Figure 4(d)).
    MbrFilter,
    /// Decided by an intermediate raster filter without touching the
    /// geometries.
    IntermediateFilter,
    /// Required the DE-9IM matrix (the pair was *undetermined* in the
    /// paper's terminology).
    Refinement,
}

impl Determination {
    /// The profiling [`Stage`] this determination corresponds to.
    pub fn stage(self) -> Stage {
        match self {
            Determination::MbrFilter => Stage::MbrClassify,
            Determination::IntermediateFilter => Stage::IntermediateFilter,
            Determination::Refinement => Stage::Refinement,
        }
    }
}

/// Result of [`find_relation`]: the most specific relation plus which
/// stage decided it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FindOutcome {
    /// The most specific topological relation of the pair.
    pub relation: TopoRelation,
    /// The deciding pipeline stage.
    pub determination: Determination,
}

/// Selective refinement: computes the DE-9IM matrix and resolves the most
/// specific relation.
///
/// `candidates` — the narrowed, specific→general list produced by the
/// MBR/intermediate filters — is consulted only by a debug assertion
/// validating the filters' soundness argument (the true relation must be
/// in the set); the returned relation is derived from the matrix alone.
pub fn refine(r: ObjectRef<'_>, s: ObjectRef<'_>, candidates: &[TopoRelation]) -> TopoRelation {
    refine_with(r, s, candidates, &mut RelateScratch::default())
}

/// [`refine`] through caller-owned scratch memory — the hot-path variant
/// the executors use, allocation-free once the scratch is warm.
pub fn refine_with(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    candidates: &[TopoRelation],
    scratch: &mut RelateScratch,
) -> TopoRelation {
    let m = relate_with(&r.geom, &s.geom, scratch);
    let best = TopoRelation::most_specific(&m);
    debug_assert!(
        candidates.contains(&best),
        "refinement found {best:?} outside candidate set {candidates:?} (matrix {m:?})"
    );
    best
}

/// Solves *find relation* for one candidate pair with the paper's P+C
/// pipeline (Algorithm 1).
pub fn find_relation(r: ObjectRef<'_>, s: ObjectRef<'_>) -> FindOutcome {
    find_relation_profiled(r, s, &mut Disabled)
}

/// [`find_relation`] through caller-owned scratch memory.
pub fn find_relation_with(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    scratch: &mut RelateScratch,
) -> FindOutcome {
    find_relation_profiled_with(r, s, &mut Disabled, scratch)
}

/// [`find_relation`] with per-stage observation: each stage's latency and
/// decisions, plus the pair's MBR class, are reported to `prof`.
///
/// Statically dispatched — instantiated with [`Disabled`] (as by
/// [`find_relation`]) this compiles to the uninstrumented pipeline.
pub fn find_relation_profiled<P: Profiler>(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    prof: &mut P,
) -> FindOutcome {
    find_relation_profiled_with(r, s, prof, &mut RelateScratch::default())
}

/// [`find_relation_profiled`] through caller-owned scratch memory — what
/// the join executors call with their per-worker scratch.
pub fn find_relation_profiled_with<P: Profiler>(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    prof: &mut P,
    scratch: &mut RelateScratch,
) -> FindOutcome {
    let t = prof.start();
    let mbr_rel = MbrRelation::classify(r.mbr, s.mbr);
    prof.stage(Stage::MbrClassify, t);
    let out = match mbr_rel {
        MbrRelation::Disjoint => {
            prof.decided(Stage::MbrClassify);
            FindOutcome {
                relation: TopoRelation::Disjoint,
                determination: Determination::MbrFilter,
            }
        }
        MbrRelation::Cross => {
            prof.decided(Stage::MbrClassify);
            FindOutcome {
                relation: TopoRelation::Intersects,
                determination: Determination::MbrFilter,
            }
        }
        _ => {
            let t = prof.start();
            let filtered = intermediate_filter(mbr_rel, r, s);
            prof.stage(Stage::IntermediateFilter, t);
            match filtered {
                IfOutcome::Definite(relation) => {
                    prof.decided(Stage::IntermediateFilter);
                    FindOutcome {
                        relation,
                        determination: Determination::IntermediateFilter,
                    }
                }
                IfOutcome::Refine(cands) => {
                    let t = prof.start();
                    let relation = refine_with(r, s, cands, scratch);
                    prof.stage(Stage::Refinement, t);
                    prof.decided(Stage::Refinement);
                    FindOutcome {
                        relation,
                        determination: Determination::Refinement,
                    }
                }
            }
        }
    };
    prof.mbr_class(
        mbr_rel as usize,
        out.determination == Determination::Refinement,
    );
    out
}

/// Aggregate statistics of a pipeline run over a pair stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Pairs processed.
    pub pairs: u64,
    /// Pairs decided by the MBR filter alone.
    pub by_mbr: u64,
    /// Pairs decided by the intermediate filters.
    pub by_intermediate: u64,
    /// Pairs requiring DE-9IM refinement (*undetermined* pairs).
    pub refined: u64,
}

impl PipelineStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: &FindOutcome) {
        self.pairs += 1;
        match outcome.determination {
            Determination::MbrFilter => self.by_mbr += 1,
            Determination::IntermediateFilter => self.by_intermediate += 1,
            Determination::Refinement => self.refined += 1,
        }
    }

    /// Percentage of pairs that needed refinement — the paper's
    /// "% of undetermined pairs" metric (Figure 7(b), Figure 8(a)).
    pub fn undetermined_pct(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.refined as f64 / self.pairs as f64 * 100.0
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.pairs += other.pairs;
        self.by_mbr += other.by_mbr;
        self.by_intermediate += other.by_intermediate;
        self.refined += other.refined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SpatialObject;
    use stj_geom::{Polygon, Rect};
    use stj_raster::Grid;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn obj(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::build(Polygon::rect(Rect::from_coords(x0, y0, x1, y1)), &grid())
    }

    #[test]
    fn disjoint_mbrs_decided_by_mbr_filter() {
        let a = obj(0.0, 0.0, 10.0, 10.0);
        let b = obj(50.0, 50.0, 60.0, 60.0);
        let out = find_relation(a.view(), b.view());
        assert_eq!(out.relation, TopoRelation::Disjoint);
        assert_eq!(out.determination, Determination::MbrFilter);
    }

    #[test]
    fn crossing_mbrs_decided_by_mbr_filter() {
        let wide = obj(0.0, 40.0, 100.0, 60.0);
        let tall = obj(40.0, 0.0, 60.0, 100.0);
        let out = find_relation(wide.view(), tall.view());
        assert_eq!(out.relation, TopoRelation::Intersects);
        assert_eq!(out.determination, Determination::MbrFilter);
    }

    #[test]
    fn deep_containment_decided_by_intermediate_filter() {
        let outer = obj(0.0, 0.0, 90.0, 90.0);
        let inner = obj(40.0, 40.0, 50.0, 50.0);
        let out = find_relation(inner.view(), outer.view());
        assert_eq!(out.relation, TopoRelation::Inside);
        assert_eq!(out.determination, Determination::IntermediateFilter);
        let out2 = find_relation(outer.view(), inner.view());
        assert_eq!(out2.relation, TopoRelation::Contains);
        assert_eq!(out2.determination, Determination::IntermediateFilter);
    }

    #[test]
    fn overlapping_bodies_decided_by_intermediate_filter() {
        // Big overlap: C of one overlaps P of the other.
        let a = obj(0.0, 0.0, 60.0, 60.0);
        let b = obj(30.0, 30.0, 90.0, 90.0);
        let out = find_relation(a.view(), b.view());
        assert_eq!(out.relation, TopoRelation::Intersects);
        assert_eq!(out.determination, Determination::IntermediateFilter);
    }

    #[test]
    fn raster_disjoint_decided_by_intermediate_filter() {
        // MBRs overlap, bodies (and rasters) far apart within them.
        let a = SpatialObject::build(
            Polygon::from_coords(vec![(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let b = SpatialObject::build(
            Polygon::from_coords(vec![(40.0, 40.0), (40.0, 39.0), (39.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let out = find_relation(a.view(), b.view());
        assert_eq!(out.relation, TopoRelation::Disjoint);
        assert_eq!(out.determination, Determination::IntermediateFilter);
    }

    #[test]
    fn touching_pair_requires_refinement() {
        // Shared edge: rasters cannot distinguish meets from a hairline
        // gap; refinement must resolve it.
        let a = obj(0.0, 0.0, 50.0, 50.0);
        let b = obj(50.0, 0.0, 90.0, 50.0);
        let out = find_relation(a.view(), b.view());
        assert_eq!(out.relation, TopoRelation::Meets);
        assert_eq!(out.determination, Determination::Refinement);
    }

    #[test]
    fn equal_pair_requires_refinement_but_is_correct() {
        let a = obj(10.0, 10.0, 60.0, 60.0);
        let b = obj(10.0, 10.0, 60.0, 60.0);
        let out = find_relation(a.view(), b.view());
        assert_eq!(out.relation, TopoRelation::Equals);
        assert_eq!(out.determination, Determination::Refinement);
    }

    #[test]
    fn covered_by_with_equal_mbrs() {
        // b fills a's full extent; a is a diagonal-ish slice covered by b.
        let b = obj(0.0, 0.0, 60.0, 60.0);
        let a = SpatialObject::build(
            Polygon::from_coords(vec![(0.0, 0.0), (60.0, 0.0), (60.0, 60.0)], vec![]).unwrap(),
            &grid(),
        );
        let out = find_relation(a.view(), b.view());
        assert_eq!(out.relation, TopoRelation::CoveredBy);
        let out2 = find_relation(b.view(), a.view());
        assert_eq!(out2.relation, TopoRelation::Covers);
    }

    #[test]
    fn stats_accumulate() {
        let mut st = PipelineStats::default();
        let a = obj(0.0, 0.0, 10.0, 10.0);
        let b = obj(50.0, 50.0, 60.0, 60.0);
        let c = obj(2.0, 2.0, 8.0, 8.0);
        st.record(&find_relation(a.view(), b.view())); // mbr
        st.record(&find_relation(c.view(), a.view())); // intermediate (deep inside)
        st.record(&find_relation(a.view(), a.view())); // refinement (equals)
        assert_eq!(st.pairs, 3);
        assert_eq!(st.by_mbr, 1);
        assert_eq!(st.by_intermediate, 1);
        assert_eq!(st.refined, 1);
        assert!((st.undetermined_pct() - 33.333).abs() < 0.01);
        let mut st2 = PipelineStats::default();
        st2.merge(&st);
        st2.merge(&st);
        assert_eq!(st2.pairs, 6);
        assert_eq!(st2.refined, 2);
    }

    #[test]
    fn empty_stats_pct_is_zero() {
        assert_eq!(PipelineStats::default().undetermined_pct(), 0.0);
    }
}
