//! Geo-spatial interlinking output (GeoSPARQL).
//!
//! The paper's headline application (Sec 1, Sec 5) is enriching
//! knowledge graphs with topological links between spatial entities.
//! This module maps detected [`TopoRelation`]s to the GeoSPARQL
//! simple-features vocabulary and serializes discovered links as
//! N-Triples, so the join output can be loaded into any RDF store —
//! the integration path the paper names (Silk-style link discovery).

use crate::exec::Link;
use std::fmt::Write as _;
use stj_de9im::TopoRelation;

/// GeoSPARQL simple-features property IRI for a relation, from the
/// perspective `r → s`.
///
/// `Intersects` (proper interior overlap in this crate's semantics) maps
/// to `sfOverlaps` for area/area pairs; the generic non-disjoint
/// relation in GeoSPARQL is `sfIntersects`, which every non-disjoint
/// relation implies (see [`implied_properties`]).
pub fn geosparql_property(rel: TopoRelation) -> &'static str {
    match rel {
        TopoRelation::Disjoint => "http://www.opengis.net/ont/geosparql#sfDisjoint",
        TopoRelation::Meets => "http://www.opengis.net/ont/geosparql#sfTouches",
        TopoRelation::Intersects => "http://www.opengis.net/ont/geosparql#sfOverlaps",
        TopoRelation::Equals => "http://www.opengis.net/ont/geosparql#sfEquals",
        TopoRelation::Inside | TopoRelation::CoveredBy => {
            "http://www.opengis.net/ont/geosparql#sfWithin"
        }
        TopoRelation::Contains | TopoRelation::Covers => {
            "http://www.opengis.net/ont/geosparql#sfContains"
        }
    }
}

/// All GeoSPARQL properties a detected relation entails, most specific
/// first — e.g. a `meets` pair satisfies both `sfTouches` and
/// `sfIntersects`.
pub fn implied_properties(rel: TopoRelation) -> Vec<&'static str> {
    let mut out = vec![geosparql_property(rel)];
    if rel != TopoRelation::Disjoint {
        out.push("http://www.opengis.net/ont/geosparql#sfIntersects");
    }
    out.dedup();
    out
}

/// Serializes discovered links as N-Triples.
///
/// Subject/object IRIs are produced by the caller-supplied naming
/// functions (typically mapping dataset indexes to entity IRIs). Only
/// the most specific property per link is emitted; pass
/// `include_implied = true` to also materialize `sfIntersects` for
/// every non-disjoint link.
pub fn links_to_ntriples(
    links: &[Link],
    subject_iri: impl Fn(u32) -> String,
    object_iri: impl Fn(u32) -> String,
    include_implied: bool,
) -> String {
    let mut out = String::new();
    for link in links {
        let props = if include_implied {
            implied_properties(link.relation)
        } else {
            vec![geosparql_property(link.relation)]
        };
        for p in props {
            let _ = writeln!(
                out,
                "<{}> <{}> <{}> .",
                subject_iri(link.r),
                p,
                object_iri(link.s)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_mapping_is_total_and_sensible() {
        for rel in TopoRelation::SPECIFIC_TO_GENERAL {
            let p = geosparql_property(rel);
            assert!(p.starts_with("http://www.opengis.net/ont/geosparql#sf"));
        }
        assert!(geosparql_property(TopoRelation::Inside).ends_with("sfWithin"));
        assert!(geosparql_property(TopoRelation::Covers).ends_with("sfContains"));
        assert!(geosparql_property(TopoRelation::Meets).ends_with("sfTouches"));
    }

    #[test]
    fn implied_properties_add_intersects() {
        let meets = implied_properties(TopoRelation::Meets);
        assert_eq!(meets.len(), 2);
        assert!(meets[1].ends_with("sfIntersects"));
        let disjoint = implied_properties(TopoRelation::Disjoint);
        assert_eq!(disjoint.len(), 1);
    }

    #[test]
    fn ntriples_serialization() {
        let links = vec![
            Link {
                r: 0,
                s: 3,
                relation: TopoRelation::Inside,
            },
            Link {
                r: 1,
                s: 4,
                relation: TopoRelation::Meets,
            },
        ];
        let nt = links_to_ntriples(
            &links,
            |i| format!("http://ex.org/lake/{i}"),
            |j| format!("http://ex.org/park/{j}"),
            false,
        );
        let lines: Vec<&str> = nt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "<http://ex.org/lake/0> <http://www.opengis.net/ont/geosparql#sfWithin> <http://ex.org/park/3> ."
        );
        assert!(lines[1].contains("sfTouches"));

        let with_implied = links_to_ntriples(
            &links,
            |i| format!("http://ex.org/lake/{i}"),
            |j| format!("http://ex.org/park/{j}"),
            true,
        );
        assert_eq!(with_implied.lines().count(), 4);
    }
}
