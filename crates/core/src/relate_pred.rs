//! `relate_p` — predicate-specific topology tests (Sec 3.3, Figure 6).
//!
//! Instead of finding the most specific relation, `relate_p` answers
//! "does relation `p` hold for this pair?" with a filter sequence
//! tailored to `p`. Three short-circuit layers:
//!
//! 1. **Impossible relation** — the MBR classification already rules `p`
//!    out (e.g. `equals` with different MBRs, `meets` with crossing
//!    MBRs).
//! 2. **Raster verdicts** — merge-joins on the `P`/`C` lists that either
//!    confirm (`rC ⊆ sP` proves containment) or refute (`rC ⊄ sC`
//!    refutes containment; interior cell contact refutes `meets`).
//! 3. **Refinement** — DE-9IM as the fallback.

use crate::object::SpatialObject;
use stj_de9im::{relate, TopoRelation};
use stj_index::MbrRelation;

/// How a [`relate_p`] query was answered (for filter-effectiveness
/// accounting, mirroring [`crate::pipeline::Determination`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelateDetermination {
    /// Decided by the MBR classification (including "impossible
    /// relation" short-circuits).
    MbrFilter,
    /// Decided by `P`/`C` list merge-joins.
    IntermediateFilter,
    /// Required the DE-9IM matrix.
    Refinement,
}

/// Result of a [`relate_p`] query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelateOutcome {
    /// Whether relation `p` holds for the pair.
    pub holds: bool,
    /// The deciding stage.
    pub determination: RelateDetermination,
}

impl RelateOutcome {
    fn mbr(holds: bool) -> RelateOutcome {
        RelateOutcome {
            holds,
            determination: RelateDetermination::MbrFilter,
        }
    }

    fn raster(holds: bool) -> RelateOutcome {
        RelateOutcome {
            holds,
            determination: RelateDetermination::IntermediateFilter,
        }
    }
}

/// Tests whether topological relation `p` holds between `r` and `s`.
pub fn relate_p(r: &SpatialObject, s: &SpatialObject, p: TopoRelation) -> RelateOutcome {
    use TopoRelation::*;
    let mbr_rel = MbrRelation::classify(&r.mbr, &s.mbr);

    // Layer 1: impossible-relation short-circuits, plus the two MBR cases
    // that *confirm* on their own.
    match mbr_rel {
        MbrRelation::Disjoint => return RelateOutcome::mbr(p == Disjoint),
        MbrRelation::Cross => {
            // Definite `intersects`: p holds iff intersects implies p...
            // the only relations consistent with a crossing-MBR pair are
            // plain intersects.
            return RelateOutcome::mbr(p == Intersects);
        }
        _ => {
            if !mbr_rel.admits(p) {
                return RelateOutcome::mbr(false);
            }
        }
    }

    let (ra, sa) = (&r.april, &s.april);
    // Layer 2: predicate-specific raster filters (Figure 6).
    match p {
        Equals => {
            if !ra.c.matches(&sa.c) || !ra.p.matches(&sa.p) {
                return RelateOutcome::raster(false);
            }
        }
        Inside | CoveredBy => {
            if !ra.c.inside(&sa.c) {
                return RelateOutcome::raster(false);
            }
            if ra.c.inside(&sa.p) {
                // Proves r ⊂ int(s): strict containment, which satisfies
                // both `inside` and `covered by`.
                return RelateOutcome::raster(true);
            }
        }
        Contains | Covers => {
            if !ra.c.contains(&sa.c) {
                return RelateOutcome::raster(false);
            }
            if ra.p.contains(&sa.c) {
                return RelateOutcome::raster(true);
            }
        }
        Meets => {
            if !ra.c.overlaps(&sa.c) {
                // Disjoint: no boundary contact.
                return RelateOutcome::raster(false);
            }
            if ra.c.overlaps(&sa.p) || ra.p.overlaps(&sa.c) {
                // Interiors provably meet: not `meets`.
                return RelateOutcome::raster(false);
            }
        }
        Intersects => {
            if !ra.c.overlaps(&sa.c) {
                return RelateOutcome::raster(false);
            }
            if ra.c.overlaps(&sa.p) || ra.p.overlaps(&sa.c) {
                return RelateOutcome::raster(true);
            }
        }
        Disjoint => {
            if !ra.c.overlaps(&sa.c) {
                return RelateOutcome::raster(true);
            }
            if ra.c.overlaps(&sa.p) || ra.p.overlaps(&sa.c) {
                return RelateOutcome::raster(false);
            }
        }
    }

    // Layer 3: refinement.
    let m = relate(&r.polygon, &s.polygon);
    RelateOutcome {
        holds: p.holds(&m),
        determination: RelateDetermination::Refinement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::{Polygon, Rect};
    use stj_raster::Grid;
    use TopoRelation::*;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn obj(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::build(Polygon::rect(Rect::from_coords(x0, y0, x1, y1)), &grid())
    }

    /// Oracle: full relate + relation semantics.
    fn oracle(r: &SpatialObject, s: &SpatialObject, p: TopoRelation) -> bool {
        p.holds(&relate(&r.polygon, &s.polygon))
    }

    const ALL: [TopoRelation; 8] = [
        Disjoint, Intersects, Meets, Equals, Inside, Contains, CoveredBy, Covers,
    ];

    #[test]
    fn agrees_with_oracle_on_catalog() {
        let objects = [
            obj(0.0, 0.0, 50.0, 50.0),   // base
            obj(10.0, 10.0, 30.0, 30.0), // deep inside base
            obj(0.0, 0.0, 50.0, 50.0),   // equal to base
            obj(50.0, 0.0, 90.0, 50.0),  // meets base on an edge
            obj(60.0, 60.0, 90.0, 90.0), // disjoint from base
            obj(25.0, 25.0, 75.0, 75.0), // overlaps base
            obj(0.0, 0.0, 25.0, 25.0),   // covered by base (corner)
        ];
        for (i, r) in objects.iter().enumerate() {
            for (j, s) in objects.iter().enumerate() {
                for p in ALL {
                    let got = relate_p(r, s, p);
                    assert_eq!(
                        got.holds,
                        oracle(r, s, p),
                        "pair ({i},{j}) predicate {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn impossible_relations_short_circuit() {
        let small = obj(10.0, 10.0, 20.0, 20.0);
        let big = obj(0.0, 0.0, 50.0, 50.0);
        // small's MBR is inside big's: contains/covers/equals impossible.
        for p in [Contains, Covers, Equals] {
            let out = relate_p(&small, &big, p);
            assert!(!out.holds);
            assert_eq!(out.determination, RelateDetermination::MbrFilter, "{p:?}");
        }
    }

    #[test]
    fn cross_mbrs_answer_from_mbr_alone() {
        let wide = obj(0.0, 40.0, 100.0, 60.0);
        let tall = obj(40.0, 0.0, 60.0, 100.0);
        let out = relate_p(&wide, &tall, Intersects);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::MbrFilter);
        let out = relate_p(&wide, &tall, Meets);
        assert!(!out.holds);
        assert_eq!(out.determination, RelateDetermination::MbrFilter);
    }

    #[test]
    fn meets_refuted_cheaply_for_clear_overlaps() {
        let a = obj(0.0, 0.0, 60.0, 60.0);
        let b = obj(30.0, 30.0, 90.0, 90.0);
        let out = relate_p(&a, &b, Meets);
        assert!(!out.holds);
        assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
    }

    #[test]
    fn deep_containment_confirmed_by_raster() {
        let outer = obj(0.0, 0.0, 90.0, 90.0);
        let inner = obj(40.0, 40.0, 50.0, 50.0);
        for p in [Inside, CoveredBy] {
            let out = relate_p(&inner, &outer, p);
            assert!(out.holds, "{p:?}");
            assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
        }
        for p in [Contains, Covers] {
            let out = relate_p(&outer, &inner, p);
            assert!(out.holds, "{p:?}");
            assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
        }
    }

    #[test]
    fn equals_refuted_by_differing_lists() {
        // Same MBR, different footprints.
        let square = obj(0.0, 0.0, 60.0, 60.0);
        let tri = SpatialObject::build(
            Polygon::from_coords(vec![(0.0, 0.0), (60.0, 0.0), (60.0, 60.0), (0.0, 60.0), (0.0, 30.0), (30.0, 30.0), (30.0, 15.0), (0.0, 15.0)], vec![]).unwrap(),
            &grid(),
        );
        let out = relate_p(&square, &tri, Equals);
        assert!(!out.holds);
        assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
    }

    #[test]
    fn equals_needs_refinement_when_lists_match() {
        let a = obj(0.0, 0.0, 60.0, 60.0);
        let b = obj(0.0, 0.0, 60.0, 60.0);
        let out = relate_p(&a, &b, Equals);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::Refinement);
    }

    #[test]
    fn disjoint_predicate_paths() {
        let a = obj(0.0, 0.0, 10.0, 10.0);
        let far = obj(50.0, 50.0, 60.0, 60.0);
        let out = relate_p(&a, &far, Disjoint);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::MbrFilter);

        // Bodies near but separate with overlapping MBRs.
        let t1 = SpatialObject::build(
            Polygon::from_coords(vec![(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let t2 = SpatialObject::build(
            Polygon::from_coords(vec![(40.0, 40.0), (40.0, 39.0), (39.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let out = relate_p(&t1, &t2, Disjoint);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
    }
}
