//! `relate_p` — predicate-specific topology tests (Sec 3.3, Figure 6).
//!
//! Instead of finding the most specific relation, `relate_p` answers
//! "does relation `p` hold for this pair?" with a filter sequence
//! tailored to `p`. Three short-circuit layers:
//!
//! 1. **Impossible relation** — the MBR classification already rules `p`
//!    out (e.g. `equals` with different MBRs, `meets` with crossing
//!    MBRs).
//! 2. **Raster verdicts** — merge-joins on the `P`/`C` lists that either
//!    confirm (`rC ⊆ sP` proves containment) or refute (`rC ⊄ sC`
//!    refutes containment; interior cell contact refutes `meets`).
//! 3. **Refinement** — DE-9IM as the fallback.

use crate::arena::ObjectRef;
use stj_de9im::{relate_with, RelateScratch, TopoRelation};
use stj_index::MbrRelation;
use stj_obs::{Disabled, Profiler, Stage};

/// How a [`relate_p`] query was answered (for filter-effectiveness
/// accounting, mirroring [`crate::pipeline::Determination`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelateDetermination {
    /// Decided by the MBR classification (including "impossible
    /// relation" short-circuits).
    MbrFilter,
    /// Decided by `P`/`C` list merge-joins.
    IntermediateFilter,
    /// Required the DE-9IM matrix.
    Refinement,
}

/// Result of a [`relate_p`] query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelateOutcome {
    /// Whether relation `p` holds for the pair.
    pub holds: bool,
    /// The deciding stage.
    pub determination: RelateDetermination,
}

impl RelateOutcome {
    fn mbr(holds: bool) -> RelateOutcome {
        RelateOutcome {
            holds,
            determination: RelateDetermination::MbrFilter,
        }
    }

    fn raster(holds: bool) -> RelateOutcome {
        RelateOutcome {
            holds,
            determination: RelateDetermination::IntermediateFilter,
        }
    }
}

/// Layer 1 verdict from the MBR classification alone: `Some(holds)` for
/// impossible-relation short-circuits and the two self-confirming MBR
/// cases, `None` if the rasters must be consulted.
pub(crate) fn mbr_verdict(mbr_rel: MbrRelation, p: TopoRelation) -> Option<bool> {
    use TopoRelation::*;
    match mbr_rel {
        MbrRelation::Disjoint => Some(p == Disjoint),
        // Definite `intersects`: the only relation consistent with a
        // crossing-MBR pair is plain intersects.
        MbrRelation::Cross => Some(p == Intersects),
        _ if !mbr_rel.admits(p) => Some(false),
        _ => None,
    }
}

/// Layer 2 verdict from the predicate-specific raster filters
/// (Figure 6): `Some(holds)` when the `P`/`C` merge-joins confirm or
/// refute `p`, `None` when the pair must be refined.
pub(crate) fn raster_verdict(r: ObjectRef<'_>, s: ObjectRef<'_>, p: TopoRelation) -> Option<bool> {
    use TopoRelation::*;
    let (ra, sa) = (r.april, s.april);
    match p {
        Equals => {
            if !ra.c.matches(sa.c) || !ra.p.matches(sa.p) {
                return Some(false);
            }
        }
        Inside | CoveredBy => {
            if !ra.c.inside(sa.c) {
                return Some(false);
            }
            if ra.c.inside(sa.p) {
                // Proves r ⊂ int(s): strict containment, which satisfies
                // both `inside` and `covered by`.
                return Some(true);
            }
        }
        Contains | Covers => {
            if !ra.c.contains(sa.c) {
                return Some(false);
            }
            if ra.p.contains(sa.c) {
                return Some(true);
            }
        }
        Meets => {
            if !ra.c.overlaps(sa.c) {
                // Disjoint: no boundary contact.
                return Some(false);
            }
            if ra.c.overlaps(sa.p) || ra.p.overlaps(sa.c) {
                // Interiors provably meet: not `meets`.
                return Some(false);
            }
        }
        Intersects => {
            if !ra.c.overlaps(sa.c) {
                return Some(false);
            }
            if ra.c.overlaps(sa.p) || ra.p.overlaps(sa.c) {
                return Some(true);
            }
        }
        Disjoint => {
            if !ra.c.overlaps(sa.c) {
                return Some(true);
            }
            if ra.c.overlaps(sa.p) || ra.p.overlaps(sa.c) {
                return Some(false);
            }
        }
    }
    None
}

/// Tests whether topological relation `p` holds between `r` and `s`.
pub fn relate_p(r: ObjectRef<'_>, s: ObjectRef<'_>, p: TopoRelation) -> RelateOutcome {
    relate_p_profiled(r, s, p, &mut Disabled)
}

/// [`relate_p`] with per-stage observation, mirroring
/// [`crate::pipeline::find_relation_profiled`]: each layer's latency and
/// decisions, plus the pair's MBR class, go to `prof`. Instantiated with
/// [`Disabled`] this compiles to the uninstrumented test.
pub fn relate_p_profiled<P: Profiler>(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    p: TopoRelation,
    prof: &mut P,
) -> RelateOutcome {
    relate_p_profiled_with(r, s, p, prof, &mut RelateScratch::default())
}

/// [`relate_p_profiled`] through caller-owned scratch memory — what the
/// join executors call with their per-worker scratch.
pub fn relate_p_profiled_with<P: Profiler>(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    p: TopoRelation,
    prof: &mut P,
    scratch: &mut RelateScratch,
) -> RelateOutcome {
    // Layer 1: MBR classification and its short-circuits.
    let t = prof.start();
    let mbr_rel = MbrRelation::classify(r.mbr, s.mbr);
    let l1 = mbr_verdict(mbr_rel, p);
    prof.stage(Stage::MbrClassify, t);
    if let Some(holds) = l1 {
        prof.decided(Stage::MbrClassify);
        prof.mbr_class(mbr_rel as usize, false);
        return RelateOutcome::mbr(holds);
    }

    // Layer 2: predicate-specific raster filters.
    let t = prof.start();
    let l2 = raster_verdict(r, s, p);
    prof.stage(Stage::IntermediateFilter, t);
    if let Some(holds) = l2 {
        prof.decided(Stage::IntermediateFilter);
        prof.mbr_class(mbr_rel as usize, false);
        return RelateOutcome::raster(holds);
    }

    // Layer 3: refinement.
    let t = prof.start();
    let m = relate_with(&r.geom, &s.geom, scratch);
    let holds = p.holds(&m);
    prof.stage(Stage::Refinement, t);
    prof.decided(Stage::Refinement);
    prof.mbr_class(mbr_rel as usize, true);
    RelateOutcome {
        holds,
        determination: RelateDetermination::Refinement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SpatialObject;
    use stj_de9im::relate;
    use stj_geom::{Polygon, Rect};
    use stj_raster::Grid;
    use TopoRelation::*;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn obj(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::build(Polygon::rect(Rect::from_coords(x0, y0, x1, y1)), &grid())
    }

    /// Oracle: full relate + relation semantics.
    fn oracle(r: &SpatialObject, s: &SpatialObject, p: TopoRelation) -> bool {
        p.holds(&relate(&r.polygon, &s.polygon))
    }

    const ALL: [TopoRelation; 8] = [
        Disjoint, Intersects, Meets, Equals, Inside, Contains, CoveredBy, Covers,
    ];

    #[test]
    fn agrees_with_oracle_on_catalog() {
        let objects = [
            obj(0.0, 0.0, 50.0, 50.0),   // base
            obj(10.0, 10.0, 30.0, 30.0), // deep inside base
            obj(0.0, 0.0, 50.0, 50.0),   // equal to base
            obj(50.0, 0.0, 90.0, 50.0),  // meets base on an edge
            obj(60.0, 60.0, 90.0, 90.0), // disjoint from base
            obj(25.0, 25.0, 75.0, 75.0), // overlaps base
            obj(0.0, 0.0, 25.0, 25.0),   // covered by base (corner)
        ];
        for (i, r) in objects.iter().enumerate() {
            for (j, s) in objects.iter().enumerate() {
                for p in ALL {
                    let got = relate_p(r.view(), s.view(), p);
                    assert_eq!(got.holds, oracle(r, s, p), "pair ({i},{j}) predicate {p:?}");
                }
            }
        }
    }

    #[test]
    fn impossible_relations_short_circuit() {
        let small = obj(10.0, 10.0, 20.0, 20.0);
        let big = obj(0.0, 0.0, 50.0, 50.0);
        // small's MBR is inside big's: contains/covers/equals impossible.
        for p in [Contains, Covers, Equals] {
            let out = relate_p(small.view(), big.view(), p);
            assert!(!out.holds);
            assert_eq!(out.determination, RelateDetermination::MbrFilter, "{p:?}");
        }
    }

    #[test]
    fn cross_mbrs_answer_from_mbr_alone() {
        let wide = obj(0.0, 40.0, 100.0, 60.0);
        let tall = obj(40.0, 0.0, 60.0, 100.0);
        let out = relate_p(wide.view(), tall.view(), Intersects);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::MbrFilter);
        let out = relate_p(wide.view(), tall.view(), Meets);
        assert!(!out.holds);
        assert_eq!(out.determination, RelateDetermination::MbrFilter);
    }

    #[test]
    fn meets_refuted_cheaply_for_clear_overlaps() {
        let a = obj(0.0, 0.0, 60.0, 60.0);
        let b = obj(30.0, 30.0, 90.0, 90.0);
        let out = relate_p(a.view(), b.view(), Meets);
        assert!(!out.holds);
        assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
    }

    #[test]
    fn deep_containment_confirmed_by_raster() {
        let outer = obj(0.0, 0.0, 90.0, 90.0);
        let inner = obj(40.0, 40.0, 50.0, 50.0);
        for p in [Inside, CoveredBy] {
            let out = relate_p(inner.view(), outer.view(), p);
            assert!(out.holds, "{p:?}");
            assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
        }
        for p in [Contains, Covers] {
            let out = relate_p(outer.view(), inner.view(), p);
            assert!(out.holds, "{p:?}");
            assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
        }
    }

    #[test]
    fn equals_refuted_by_differing_lists() {
        // Same MBR, different footprints.
        let square = obj(0.0, 0.0, 60.0, 60.0);
        let tri = SpatialObject::build(
            Polygon::from_coords(
                vec![
                    (0.0, 0.0),
                    (60.0, 0.0),
                    (60.0, 60.0),
                    (0.0, 60.0),
                    (0.0, 30.0),
                    (30.0, 30.0),
                    (30.0, 15.0),
                    (0.0, 15.0),
                ],
                vec![],
            )
            .unwrap(),
            &grid(),
        );
        let out = relate_p(square.view(), tri.view(), Equals);
        assert!(!out.holds);
        assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
    }

    #[test]
    fn equals_needs_refinement_when_lists_match() {
        let a = obj(0.0, 0.0, 60.0, 60.0);
        let b = obj(0.0, 0.0, 60.0, 60.0);
        let out = relate_p(a.view(), b.view(), Equals);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::Refinement);
    }

    #[test]
    fn disjoint_predicate_paths() {
        let a = obj(0.0, 0.0, 10.0, 10.0);
        let far = obj(50.0, 50.0, 60.0, 60.0);
        let out = relate_p(a.view(), far.view(), Disjoint);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::MbrFilter);

        // Bodies near but separate with overlapping MBRs.
        let t1 = SpatialObject::build(
            Polygon::from_coords(vec![(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let t2 = SpatialObject::build(
            Polygon::from_coords(vec![(40.0, 40.0), (40.0, 39.0), (39.0, 40.0)], vec![]).unwrap(),
            &grid(),
        );
        let out = relate_p(t1.view(), t2.view(), Disjoint);
        assert!(out.holds);
        assert_eq!(out.determination, RelateDetermination::IntermediateFilter);
    }
}
