//! Adaptive filter ordering: a selectivity-driven cost model for the
//! MBR → APRIL → refine pipeline.
//!
//! The static pipeline runs the APRIL intermediate filter for every
//! candidate pair whose MBR classification cannot decide it, even for
//! MBR classes where APRIL almost never decides — pure overhead on the
//! hot path. This module learns, per (MBR class × query mode), whether
//! the intermediate stage pays for itself, and skips it for the rest of
//! the join when it does not:
//!
//! - **Counters** ([`AdaptiveWorker`] → [`AdaptiveModel`]): every pair
//!   that reaches the APRIL stage bumps per-worker local counters
//!   (pairs seen, pairs the stage decided). Stage costs are *sampled*:
//!   one pair in [`TIME_SAMPLE_PERIOD`] during warm-up takes two
//!   `Instant` reads around each stage. The counters are always on —
//!   they do not require the full `Profiler` — and workers fold them
//!   into the shared atomic model every [`MERGE_PERIOD`] pairs, so the
//!   per-pair path never touches shared cache lines.
//! - **Warm-up and verdict**: once a cell has observed
//!   [`WARMUP_SAMPLES`] pairs (and at least one timing sample), it
//!   settles a [`Verdict`]: *keep* the APRIL stage when its expected
//!   saving (`decisiveness × mean refine cost`) exceeds its cost
//!   (`mean APRIL cost`), *skip* it otherwise. The first worker to
//!   observe the threshold decides; all workers pick the verdict up at
//!   their next merge.
//! - **Post-skip audit**: warm-up refine times are measured under the
//!   filter, which narrows the candidate set even when inconclusive, so
//!   a skip verdict rests on an underestimate of the unfiltered refine
//!   cost. Skipped refinements keep being sampled (one in
//!   [`POST_SAMPLE_PERIOD`]), and once [`REVISIT_SAMPLES`] realized
//!   samples disagree — the full pipeline is cheaper than the skip
//!   path's actual refinement — the verdict flips back to *keep*,
//!   one-way, within a few dozen pairs per worker.
//! - **Soundness**: skipping is *always* sound. The intermediate filter
//!   only ever pre-empts DE-9IM refinement, and refinement is exact —
//!   a skipped pair takes the `refine_with` path over the MBR class's
//!   own candidate set and produces the identical relation. Only the
//!   stage-attribution split (`by_intermediate` vs `refined`) moves;
//!   links and relations are bit-identical to the static pipeline
//!   (enforced by `stj-check` invariant (h), `adaptive_equivalence`).
//!
//! The model is shared state safe to hold across joins: `stj-serve`
//! keeps one resident [`AdaptiveModel`] and warms it across online
//! relate requests, and derives a probe-side APRIL interval cap from it
//! ([`AdaptiveModel::probe_interval_cap`]) once the verdicts say the
//! intermediate stage is not earning its precision.

use crate::arena::ObjectRef;
use crate::filters::{intermediate_filter, IfOutcome};
use crate::pipeline::{refine_with, Determination, FindOutcome};
use crate::relate_pred::{mbr_verdict, raster_verdict, RelateDetermination, RelateOutcome};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;
use stj_de9im::{relate_with, RelateScratch, TopoRelation};
use stj_index::MbrRelation;
use stj_obs::{Json, Profiler, Stage};

/// Pairs a cell must observe through the APRIL stage before its verdict
/// settles. Small enough to converge early in any join worth adapting,
/// large enough that decisiveness estimates are stable.
pub const WARMUP_SAMPLES: u64 = 512;

/// During warm-up, one pair in this many is timed (two `Instant` reads
/// around each stage); all other pairs only bump plain counters.
pub const TIME_SAMPLE_PERIOD: u64 = 8;

/// After a *skip* verdict, refinements are still timed — every one of
/// the first [`REVISIT_SAMPLES`] per worker, then one in this many.
/// The samples feed realized-savings reporting *and* the post-skip
/// audit: warm-up refine times are measured under the filter, whose
/// `IfOutcome::Refine` hands refinement a narrowed candidate set, so a
/// skip decision is made from an underestimate of the unfiltered refine
/// cost and must be auditable against realized samples.
const POST_SAMPLE_PERIOD: u64 = 64;

/// Post-skip refine samples a worker accumulates locally before folding
/// them in and re-examining the skip verdict. The first this-many skips
/// per cell are all timed, so a mis-skipped cell is caught within a
/// handful of pairs per worker.
const REVISIT_SAMPLES: u64 = 8;

/// Pairs a worker processes between folds of its local counters into the
/// shared model (and refreshes of its cached verdicts).
const MERGE_PERIOD: u32 = 1024;

/// Probe-side APRIL interval budget applied when the model has settled
/// on skipping the intermediate stage everywhere — rasterization
/// precision is wasted on a stage that no longer runs, so ad-hoc probes
/// are capped to a coarse approximation (still sound; see
/// [`stj_raster::AprilApprox::with_max_intervals`]).
pub const SKIP_PROBE_INTERVALS: usize = 256;

/// MBR classes tracked (all of `MbrRelation`; Disjoint/Cross never reach
/// the APRIL stage and their cells stay empty).
const CLASSES: usize = 6;

/// Query modes tracked: find-relation plus the eight `relate_p`
/// predicates.
const MODES: usize = 9;

const CELLS: usize = CLASSES * MODES;

/// The adaptive controller's operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdaptiveMode {
    /// Static pipeline, bit-identical to the pre-adaptive executor —
    /// stats, profiles, and links all match exactly. The library
    /// default (the `stj join` CLI defaults to [`AdaptiveMode::On`]).
    #[default]
    Off,
    /// Learn per-(class × mode) decisiveness during a warm-up window,
    /// then keep or skip the APRIL stage per cell.
    On,
    /// Skip the APRIL stage everywhere from the first pair (no
    /// warm-up). Links stay identical; useful for measuring the
    /// intermediate stage's gross cost.
    ForceSkip,
}

impl AdaptiveMode {
    /// Whether this mode needs a model at all.
    pub fn enabled(self) -> bool {
        self != AdaptiveMode::Off
    }

    /// Stable CLI/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            AdaptiveMode::Off => "off",
            AdaptiveMode::On => "on",
            AdaptiveMode::ForceSkip => "force-skip",
        }
    }

    /// Parses a CLI/API knob value (`on`, `off`, `force-skip`).
    pub fn parse(s: &str) -> Option<AdaptiveMode> {
        match s {
            "off" => Some(AdaptiveMode::Off),
            "on" => Some(AdaptiveMode::On),
            "force-skip" => Some(AdaptiveMode::ForceSkip),
            _ => None,
        }
    }
}

/// A cell's settled (or not-yet-settled) decision about the APRIL stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Still inside the warm-up window: run the full pipeline and
    /// sample stage costs.
    Warming,
    /// The stage pays for itself here: keep running it.
    Keep,
    /// The stage decides too little to cover its cost: go straight to
    /// refinement.
    Skip,
}

impl Verdict {
    fn from_u8(v: u8) -> Verdict {
        match v {
            1 => Verdict::Keep,
            2 => Verdict::Skip,
            _ => Verdict::Warming,
        }
    }

    /// Stable JSON label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Warming => "warming",
            Verdict::Keep => "keep",
            Verdict::Skip => "skip",
        }
    }
}

/// One shared (class × mode) cell: always-on counts plus sampled stage
/// costs, all relaxed atomics (workers only ever fold deltas in).
#[derive(Default)]
struct SharedCell {
    /// Pairs that reached the APRIL stage.
    pairs: AtomicU64,
    /// ... of which the APRIL stage decided.
    decided: AtomicU64,
    /// Sampled intermediate-stage nanos and sample count.
    april_ns: AtomicU64,
    april_timed: AtomicU64,
    /// Sampled refinement nanos and sample count (warm-up window).
    refine_ns: AtomicU64,
    refine_timed: AtomicU64,
    /// Pairs routed straight to refinement under a skip verdict.
    skipped: AtomicU64,
    /// Sampled refinement nanos and count observed *after* the skip
    /// verdict (for realized-savings reporting).
    post_refine_ns: AtomicU64,
    post_refine_timed: AtomicU64,
    /// 0 = warming, 1 = keep, 2 = skip. Settled once out of warming;
    /// the post-skip audit may later revise 2 → 1 (never back), so a
    /// cell changes verdict at most twice over its lifetime.
    verdict: AtomicU8,
}

/// Plain per-worker counter deltas for one cell, folded into the shared
/// model at merge points.
#[derive(Clone, Copy, Default)]
struct LocalCell {
    pairs: u64,
    decided: u64,
    april_ns: u64,
    april_timed: u64,
    refine_ns: u64,
    refine_timed: u64,
    skipped: u64,
    post_refine_ns: u64,
    post_refine_timed: u64,
}

impl LocalCell {
    fn is_empty(&self) -> bool {
        self.pairs == 0 && self.skipped == 0
    }
}

/// The shared per-join (or, in `stj-serve`, per-process) decisiveness
/// model: one [`SharedCell`] per (MBR class × query mode). Safe to share
/// across worker threads; all operations are relaxed atomics off the
/// per-pair fast path.
pub struct AdaptiveModel {
    mode: AdaptiveMode,
    warmup: u64,
    cells: [SharedCell; CELLS],
}

/// Flat cell index for `(MBR class, query mode)`.
fn cell_index(class: usize, mode: usize) -> usize {
    debug_assert!(class < CLASSES && mode < MODES);
    class * MODES + mode
}

/// Query-mode index: 0 = find-relation, `1 + p` for predicate `p`.
fn mode_index(predicate: Option<TopoRelation>) -> usize {
    predicate.map_or(0, |p| 1 + p as usize)
}

/// The eight predicates in discriminant order — inverse of
/// [`mode_index`] for report labels.
const PREDICATES: [TopoRelation; 8] = [
    TopoRelation::Disjoint,
    TopoRelation::Intersects,
    TopoRelation::Meets,
    TopoRelation::Equals,
    TopoRelation::Inside,
    TopoRelation::Contains,
    TopoRelation::CoveredBy,
    TopoRelation::Covers,
];

impl AdaptiveModel {
    /// A fresh model with the default warm-up window.
    pub fn new(mode: AdaptiveMode) -> AdaptiveModel {
        AdaptiveModel::with_warmup(mode, WARMUP_SAMPLES)
    }

    /// A fresh model with an explicit warm-up window (tests use tiny
    /// windows to exercise post-verdict behavior on small corpora).
    pub fn with_warmup(mode: AdaptiveMode, warmup: u64) -> AdaptiveModel {
        let model = AdaptiveModel {
            mode,
            warmup: warmup.max(1),
            cells: std::array::from_fn(|_| SharedCell::default()),
        };
        if mode == AdaptiveMode::ForceSkip {
            for cell in &model.cells {
                cell.verdict.store(2, Ordering::Relaxed);
            }
        }
        model
    }

    /// The operating mode this model was created with.
    pub fn mode(&self) -> AdaptiveMode {
        self.mode
    }

    fn verdict(&self, idx: usize) -> Verdict {
        Verdict::from_u8(self.cells[idx].verdict.load(Ordering::Relaxed))
    }

    /// Folds one worker's local deltas into the shared cell, then
    /// settles the verdict if the warm-up threshold was just crossed.
    fn absorb(&self, idx: usize, local: &LocalCell) {
        let cell = &self.cells[idx];
        let pairs = cell.pairs.fetch_add(local.pairs, Ordering::Relaxed) + local.pairs;
        cell.decided.fetch_add(local.decided, Ordering::Relaxed);
        cell.april_ns.fetch_add(local.april_ns, Ordering::Relaxed);
        cell.april_timed
            .fetch_add(local.april_timed, Ordering::Relaxed);
        cell.refine_ns.fetch_add(local.refine_ns, Ordering::Relaxed);
        cell.refine_timed
            .fetch_add(local.refine_timed, Ordering::Relaxed);
        cell.skipped.fetch_add(local.skipped, Ordering::Relaxed);
        cell.post_refine_ns
            .fetch_add(local.post_refine_ns, Ordering::Relaxed);
        cell.post_refine_timed
            .fetch_add(local.post_refine_timed, Ordering::Relaxed);
        match cell.verdict.load(Ordering::Relaxed) {
            0 if pairs >= self.warmup => self.settle(cell),
            2 if self.mode == AdaptiveMode::On => self.revisit(cell),
            _ => {}
        }
    }

    /// Settles a warmed cell's verdict from its observed counters. Keep
    /// iff the stage's expected per-pair saving (`decisiveness × mean
    /// refine cost`) covers its per-pair cost (`mean APRIL cost`).
    fn settle(&self, cell: &SharedCell) {
        let pairs = cell.pairs.load(Ordering::Relaxed);
        let decided = cell.decided.load(Ordering::Relaxed);
        let april_timed = cell.april_timed.load(Ordering::Relaxed);
        if pairs == 0 || april_timed == 0 {
            // No cost evidence yet (timing is sampled): keep warming.
            return;
        }
        let refine_timed = cell.refine_timed.load(Ordering::Relaxed);
        let keep = if refine_timed == 0 {
            // The stage decided every sampled pair — clearly earning.
            true
        } else {
            let april = cell.april_ns.load(Ordering::Relaxed) as u128 / april_timed as u128;
            let refine = cell.refine_ns.load(Ordering::Relaxed) as u128 / refine_timed as u128;
            // decisiveness × refine ≥ april, in integers:
            decided as u128 * refine >= pairs as u128 * april
        };
        // First settler wins; later workers see it at their next merge.
        let _ = cell.verdict.compare_exchange(
            0,
            if keep { 1 } else { 2 },
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Audits a settled *skip* verdict against realized refine samples.
    ///
    /// The warm-up's refine times are measured downstream of the filter,
    /// which narrows the DE-9IM candidate set even when it cannot
    /// decide — so refinement without the filter can be *more* expensive
    /// than the warm-up suggested (selection bias: only
    /// filter-inconclusive pairs were sampled). Once enough post-skip
    /// samples exist, re-run the comparison with the realized cost: flip
    /// back to *keep* when the full pipeline
    /// (`mean_april + (1 − decisiveness) × mean_warmup_refine`) is
    /// cheaper per pair than the skip path's realized refinement. The
    /// flip is one-way; a keep verdict is terminal.
    fn revisit(&self, cell: &SharedCell) {
        let post_timed = cell.post_refine_timed.load(Ordering::Relaxed);
        if post_timed < REVISIT_SAMPLES {
            return;
        }
        let pairs = cell.pairs.load(Ordering::Relaxed);
        let decided = cell.decided.load(Ordering::Relaxed);
        let april_timed = cell.april_timed.load(Ordering::Relaxed);
        if pairs == 0 || april_timed == 0 {
            return;
        }
        let mean = |ns: u64, n: u64| {
            if n == 0 {
                0u128
            } else {
                ns as u128 / n as u128
            }
        };
        let april = mean(cell.april_ns.load(Ordering::Relaxed), april_timed);
        let refine = mean(
            cell.refine_ns.load(Ordering::Relaxed),
            cell.refine_timed.load(Ordering::Relaxed),
        );
        let post = mean(cell.post_refine_ns.load(Ordering::Relaxed), post_timed);
        // keep_cost < skip_cost, cross-multiplied by pairs:
        let keep_cost = april * pairs as u128 + refine * (pairs - decided.min(pairs)) as u128;
        let skip_cost = post * pairs as u128;
        if keep_cost < skip_cost {
            let _ = cell
                .verdict
                .compare_exchange(2, 1, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// A probe-side APRIL interval cap derived from the settled
    /// verdicts: once every settled find-relation cell says *skip* (and
    /// at least one has settled), rasterization precision is wasted and
    /// ad-hoc probes can be built with a coarse
    /// [`SKIP_PROBE_INTERVALS`] budget. `None` means build at full
    /// budget.
    pub fn probe_interval_cap(&self) -> Option<usize> {
        match self.mode {
            AdaptiveMode::Off => None,
            AdaptiveMode::ForceSkip => Some(SKIP_PROBE_INTERVALS),
            AdaptiveMode::On => {
                let mut settled = 0;
                for class in 0..CLASSES {
                    match self.verdict(cell_index(class, 0)) {
                        Verdict::Keep => return None,
                        Verdict::Skip => settled += 1,
                        Verdict::Warming => {}
                    }
                }
                (settled > 0).then_some(SKIP_PROBE_INTERVALS)
            }
        }
    }

    /// Snapshots the decision trace: per-cell verdicts, warm-up sample
    /// counts, and estimated vs realized savings.
    pub fn report(&self) -> AdaptiveReport {
        let mut classes = Vec::new();
        for class_idx in 0..CLASSES {
            for mode in 0..MODES {
                let cell = &self.cells[cell_index(class_idx, mode)];
                let pairs = cell.pairs.load(Ordering::Relaxed);
                let skipped = cell.skipped.load(Ordering::Relaxed);
                if pairs == 0 && skipped == 0 {
                    continue;
                }
                let decided = cell.decided.load(Ordering::Relaxed);
                let mean = |ns: &AtomicU64, n: &AtomicU64| {
                    ns.load(Ordering::Relaxed)
                        .checked_div(n.load(Ordering::Relaxed))
                        .unwrap_or(0)
                };
                let mean_april_ns = mean(&cell.april_ns, &cell.april_timed);
                let mean_refine_ns = mean(&cell.refine_ns, &cell.refine_timed);
                let decisiveness = if pairs == 0 {
                    0.0
                } else {
                    decided as f64 / pairs as f64
                };
                // Counterfactual keep cost per pair vs the two refine
                // costs: the warm-up estimate and the sampled
                // post-verdict observation.
                let keep_cost = mean_april_ns as f64 + (1.0 - decisiveness) * mean_refine_ns as f64;
                let est_saved_ns = (skipped as f64 * (keep_cost - mean_refine_ns as f64)) as i64;
                let post_timed = cell.post_refine_timed.load(Ordering::Relaxed);
                let realized_saved_ns = if post_timed == 0 {
                    est_saved_ns
                } else {
                    let post_mean =
                        cell.post_refine_ns.load(Ordering::Relaxed) as f64 / post_timed as f64;
                    (skipped as f64 * (keep_cost - post_mean)) as i64
                };
                classes.push(AdaptiveCellReport {
                    class: MbrRelation::ALL[class_idx].name(),
                    predicate: (mode > 0).then(|| PREDICATES[mode - 1].to_string()),
                    verdict: self.verdict(cell_index(class_idx, mode)).label(),
                    samples: pairs,
                    april_decided: decided,
                    decisiveness_pct: decisiveness * 100.0,
                    mean_april_ns,
                    mean_refine_ns,
                    skipped_pairs: skipped,
                    est_saved_ns,
                    realized_saved_ns,
                });
            }
        }
        AdaptiveReport {
            mode: self.mode,
            warmup: self.warmup,
            classes,
        }
    }
}

/// The decision trace of one adaptive run — the `adaptive` block of
/// `--stats-json` and `/stats`.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// The controller mode the run used.
    pub mode: AdaptiveMode,
    /// Warm-up window (pairs per cell).
    pub warmup: u64,
    /// One entry per (MBR class × mode) cell that saw traffic.
    pub classes: Vec<AdaptiveCellReport>,
}

/// One cell of the decision trace.
#[derive(Clone, Debug)]
pub struct AdaptiveCellReport {
    /// MBR class label (`equal`, `inside`, `contains`, `overlap`, ...).
    pub class: &'static str,
    /// Predicate label in `relate_p` mode; `None` for find-relation.
    pub predicate: Option<String>,
    /// `warming`, `keep`, or `skip`.
    pub verdict: &'static str,
    /// Pairs observed through the APRIL stage.
    pub samples: u64,
    /// ... of which the stage decided.
    pub april_decided: u64,
    /// `april_decided / samples`, percent.
    pub decisiveness_pct: f64,
    /// Sampled mean APRIL-stage cost.
    pub mean_april_ns: u64,
    /// Sampled mean refinement cost (warm-up window).
    pub mean_refine_ns: u64,
    /// Pairs routed straight to refinement under a skip verdict.
    pub skipped_pairs: u64,
    /// Projected saving from skipping, from warm-up means.
    pub est_saved_ns: i64,
    /// Saving recomputed against post-verdict sampled refine costs
    /// (falls back to the estimate when no post samples were taken).
    pub realized_saved_ns: i64,
}

impl AdaptiveReport {
    /// Total pairs that bypassed the APRIL stage.
    pub fn skipped_pairs(&self) -> u64 {
        self.classes.iter().map(|c| c.skipped_pairs).sum()
    }

    /// Renders the `adaptive` JSON block.
    pub fn to_json(&self) -> Json {
        let classes: Vec<Json> = self
            .classes
            .iter()
            .map(|c| {
                Json::object([
                    ("class", Json::str(c.class)),
                    (
                        "predicate",
                        c.predicate
                            .as_ref()
                            .map_or(Json::Null, |p| Json::str(p.as_str())),
                    ),
                    ("verdict", Json::str(c.verdict)),
                    ("samples", Json::U64(c.samples)),
                    ("april_decided", Json::U64(c.april_decided)),
                    ("decisiveness_pct", Json::F64(c.decisiveness_pct)),
                    ("mean_april_ns", Json::U64(c.mean_april_ns)),
                    ("mean_refine_ns", Json::U64(c.mean_refine_ns)),
                    ("skipped_pairs", Json::U64(c.skipped_pairs)),
                    ("est_saved_ns", Json::I64(c.est_saved_ns)),
                    ("realized_saved_ns", Json::I64(c.realized_saved_ns)),
                ])
            })
            .collect();
        Json::object([
            ("mode", Json::str(self.mode.label())),
            ("warmup_pairs", Json::U64(self.warmup)),
            ("skipped_pairs", Json::U64(self.skipped_pairs())),
            (
                "est_saved_ns",
                Json::I64(self.classes.iter().map(|c| c.est_saved_ns).sum()),
            ),
            (
                "realized_saved_ns",
                Json::I64(self.classes.iter().map(|c| c.realized_saved_ns).sum()),
            ),
            ("classes", Json::Arr(classes)),
        ])
    }
}

/// Per-worker adaptive state: local counter deltas, cached verdicts,
/// and the merge cadence. Create one per worker from the shared model;
/// call [`AdaptiveWorker::flush`] before dropping it so the final
/// partial window reaches the model.
pub struct AdaptiveWorker<'a> {
    model: &'a AdaptiveModel,
    cells: [LocalCell; CELLS],
    verdicts: [Verdict; CELLS],
    since_merge: u32,
    ticks: u64,
    /// Post-skip refinements this worker has seen per cell (not reset at
    /// flush): the first [`REVISIT_SAMPLES`] are all timed so the audit
    /// gets its evidence within a few pairs of the skip verdict; after
    /// that, sampling backs off to one in [`POST_SAMPLE_PERIOD`].
    post_seen: [u32; CELLS],
}

impl<'a> AdaptiveWorker<'a> {
    /// A fresh worker view over `model`.
    pub fn new(model: &'a AdaptiveModel) -> AdaptiveWorker<'a> {
        let verdicts = std::array::from_fn(|i| model.verdict(i));
        AdaptiveWorker {
            model,
            cells: [LocalCell::default(); CELLS],
            verdicts,
            since_merge: 0,
            ticks: 0,
            post_seen: [0; CELLS],
        }
    }

    /// Folds all local deltas into the shared model and refreshes the
    /// cached verdicts.
    pub fn flush(&mut self) {
        for (i, cell) in self.cells.iter_mut().enumerate() {
            if !cell.is_empty() {
                self.model.absorb(i, cell);
                *cell = LocalCell::default();
            }
        }
        for (i, v) in self.verdicts.iter_mut().enumerate() {
            *v = self.model.verdict(i);
        }
        self.since_merge = 0;
    }

    fn bump(&mut self) {
        self.since_merge += 1;
        if self.since_merge >= MERGE_PERIOD {
            self.flush();
        }
    }

    /// Whether the next pair through a warming cell should be timed.
    fn sample_timer(&mut self) -> bool {
        self.ticks = self.ticks.wrapping_add(1);
        self.ticks.is_multiple_of(TIME_SAMPLE_PERIOD)
    }

    /// Whether the next skipped pair's refinement should be timed: the
    /// first [`REVISIT_SAMPLES`] skips per cell always are (audit
    /// evidence), then one in [`POST_SAMPLE_PERIOD`].
    fn sample_post_timer(&mut self, idx: usize) -> bool {
        if self.post_seen[idx] < REVISIT_SAMPLES as u32 {
            self.post_seen[idx] += 1;
            return true;
        }
        self.ticks = self.ticks.wrapping_add(1);
        self.ticks.is_multiple_of(POST_SAMPLE_PERIOD)
    }

    fn note_pair(
        &mut self,
        idx: usize,
        decided: bool,
        april_ns: Option<u64>,
        refine_ns: Option<u64>,
    ) {
        let cell = &mut self.cells[idx];
        cell.pairs += 1;
        cell.decided += u64::from(decided);
        if let Some(ns) = april_ns {
            cell.april_ns += ns;
            cell.april_timed += 1;
        }
        if let Some(ns) = refine_ns {
            cell.refine_ns += ns;
            cell.refine_timed += 1;
        }
        self.bump();
    }

    fn note_skip(&mut self, idx: usize, refine_ns: Option<u64>) {
        let cell = &mut self.cells[idx];
        cell.skipped += 1;
        if let Some(ns) = refine_ns {
            cell.post_refine_ns += ns;
            cell.post_refine_timed += 1;
            // Enough local evidence to audit the skip verdict: fold this
            // cell in eagerly (the model revisits on absorb) and pick up
            // a possible skip → keep flip without waiting out the merge
            // period — a mis-skip costs real refinement time every pair.
            if cell.post_refine_timed >= REVISIT_SAMPLES {
                self.model.absorb(idx, cell);
                self.cells[idx] = LocalCell::default();
                self.verdicts[idx] = self.model.verdict(idx);
            }
        }
        self.bump();
    }
}

/// Nanoseconds elapsed since `t0`, saturating.
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The adaptive variant of
/// [`crate::pipeline::find_relation_profiled_with`]: identical links and
/// relations, but the APRIL stage is consulted, timed, or skipped per
/// the worker's cell verdicts.
pub fn find_relation_adaptive_with<P: Profiler>(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    prof: &mut P,
    scratch: &mut RelateScratch,
    adaptive: &mut AdaptiveWorker<'_>,
) -> FindOutcome {
    let t = prof.start();
    let mbr_rel = MbrRelation::classify(r.mbr, s.mbr);
    prof.stage(Stage::MbrClassify, t);
    let out = match mbr_rel {
        MbrRelation::Disjoint => {
            prof.decided(Stage::MbrClassify);
            FindOutcome {
                relation: TopoRelation::Disjoint,
                determination: Determination::MbrFilter,
            }
        }
        MbrRelation::Cross => {
            prof.decided(Stage::MbrClassify);
            FindOutcome {
                relation: TopoRelation::Intersects,
                determination: Determination::MbrFilter,
            }
        }
        _ => {
            let idx = cell_index(mbr_rel as usize, mode_index(None));
            match adaptive.verdicts[idx] {
                Verdict::Skip => {
                    // Sound by construction: refinement is exact and the
                    // MBR class's own candidate set bounds the result.
                    let t = prof.start();
                    let t0 = adaptive.sample_post_timer(idx).then(Instant::now);
                    let relation = refine_with(r, s, mbr_rel.candidates(), scratch);
                    prof.stage(Stage::Refinement, t);
                    prof.decided(Stage::Refinement);
                    adaptive.note_skip(idx, t0.map(elapsed_ns));
                    FindOutcome {
                        relation,
                        determination: Determination::Refinement,
                    }
                }
                verdict => {
                    let timed = verdict == Verdict::Warming && adaptive.sample_timer();
                    let t = prof.start();
                    let t0 = timed.then(Instant::now);
                    let filtered = intermediate_filter(mbr_rel, r, s);
                    let april_ns = t0.map(elapsed_ns);
                    prof.stage(Stage::IntermediateFilter, t);
                    match filtered {
                        IfOutcome::Definite(relation) => {
                            prof.decided(Stage::IntermediateFilter);
                            adaptive.note_pair(idx, true, april_ns, None);
                            FindOutcome {
                                relation,
                                determination: Determination::IntermediateFilter,
                            }
                        }
                        IfOutcome::Refine(cands) => {
                            let t = prof.start();
                            let t1 = timed.then(Instant::now);
                            let relation = refine_with(r, s, cands, scratch);
                            let refine_ns = t1.map(elapsed_ns);
                            prof.stage(Stage::Refinement, t);
                            prof.decided(Stage::Refinement);
                            adaptive.note_pair(idx, false, april_ns, refine_ns);
                            FindOutcome {
                                relation,
                                determination: Determination::Refinement,
                            }
                        }
                    }
                }
            }
        }
    };
    prof.mbr_class(
        mbr_rel as usize,
        out.determination == Determination::Refinement,
    );
    out
}

/// The adaptive variant of
/// [`crate::relate_pred::relate_p_profiled_with`]: identical answers,
/// with the raster-verdict layer consulted, timed, or skipped per the
/// worker's (class × predicate) cell verdicts.
pub fn relate_p_adaptive_with<P: Profiler>(
    r: ObjectRef<'_>,
    s: ObjectRef<'_>,
    p: TopoRelation,
    prof: &mut P,
    scratch: &mut RelateScratch,
    adaptive: &mut AdaptiveWorker<'_>,
) -> RelateOutcome {
    let t = prof.start();
    let mbr_rel = MbrRelation::classify(r.mbr, s.mbr);
    let l1 = mbr_verdict(mbr_rel, p);
    prof.stage(Stage::MbrClassify, t);
    if let Some(holds) = l1 {
        prof.decided(Stage::MbrClassify);
        prof.mbr_class(mbr_rel as usize, false);
        return RelateOutcome {
            holds,
            determination: RelateDetermination::MbrFilter,
        };
    }

    let idx = cell_index(mbr_rel as usize, mode_index(Some(p)));
    let refine = |prof: &mut P,
                  scratch: &mut RelateScratch,
                  adaptive: &mut AdaptiveWorker<'_>,
                  timed: bool| {
        let t = prof.start();
        let t1 = timed.then(Instant::now);
        let m = relate_with(&r.geom, &s.geom, scratch);
        let holds = p.holds(&m);
        let ns = t1.map(elapsed_ns);
        prof.stage(Stage::Refinement, t);
        prof.decided(Stage::Refinement);
        prof.mbr_class(mbr_rel as usize, true);
        let _ = adaptive;
        (holds, ns)
    };

    match adaptive.verdicts[idx] {
        Verdict::Skip => {
            let timed = adaptive.sample_post_timer(idx);
            let (holds, ns) = refine(prof, scratch, adaptive, timed);
            adaptive.note_skip(idx, ns);
            RelateOutcome {
                holds,
                determination: RelateDetermination::Refinement,
            }
        }
        verdict => {
            let timed = verdict == Verdict::Warming && adaptive.sample_timer();
            let t = prof.start();
            let t0 = timed.then(Instant::now);
            let l2 = raster_verdict(r, s, p);
            let april_ns = t0.map(elapsed_ns);
            prof.stage(Stage::IntermediateFilter, t);
            if let Some(holds) = l2 {
                prof.decided(Stage::IntermediateFilter);
                prof.mbr_class(mbr_rel as usize, false);
                adaptive.note_pair(idx, true, april_ns, None);
                return RelateOutcome {
                    holds,
                    determination: RelateDetermination::IntermediateFilter,
                };
            }
            let (holds, refine_ns) = refine(prof, scratch, adaptive, timed);
            adaptive.note_pair(idx, false, april_ns, refine_ns);
            RelateOutcome {
                holds,
                determination: RelateDetermination::Refinement,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SpatialObject;
    use crate::pipeline::find_relation;
    use crate::relate_pred::relate_p;
    use stj_geom::{Polygon, Rect};
    use stj_obs::Disabled;
    use stj_raster::Grid;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8)
    }

    fn obj(x0: f64, y0: f64, x1: f64, y1: f64) -> SpatialObject {
        SpatialObject::build(Polygon::rect(Rect::from_coords(x0, y0, x1, y1)), &grid())
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [AdaptiveMode::Off, AdaptiveMode::On, AdaptiveMode::ForceSkip] {
            assert_eq!(AdaptiveMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(AdaptiveMode::parse("sometimes"), None);
        assert!(!AdaptiveMode::Off.enabled());
        assert!(AdaptiveMode::ForceSkip.enabled());
    }

    #[test]
    fn force_skip_matches_static_pipeline_answers() {
        let model = AdaptiveModel::new(AdaptiveMode::ForceSkip);
        let mut worker = AdaptiveWorker::new(&model);
        let mut scratch = RelateScratch::default();
        let objects = [
            obj(0.0, 0.0, 50.0, 50.0),
            obj(10.0, 10.0, 30.0, 30.0),
            obj(0.0, 0.0, 50.0, 50.0),
            obj(50.0, 0.0, 90.0, 50.0),
            obj(60.0, 60.0, 90.0, 90.0),
            obj(25.0, 25.0, 75.0, 75.0),
        ];
        for r in &objects {
            for s in &objects {
                let adaptive = find_relation_adaptive_with(
                    r.view(),
                    s.view(),
                    &mut Disabled,
                    &mut scratch,
                    &mut worker,
                );
                let st = find_relation(r.view(), s.view());
                assert_eq!(adaptive.relation, st.relation);
                for p in [
                    TopoRelation::Equals,
                    TopoRelation::Inside,
                    TopoRelation::Contains,
                    TopoRelation::Intersects,
                    TopoRelation::Meets,
                ] {
                    let ad = relate_p_adaptive_with(
                        r.view(),
                        s.view(),
                        p,
                        &mut Disabled,
                        &mut scratch,
                        &mut worker,
                    );
                    assert_eq!(ad.holds, relate_p(r.view(), s.view(), p).holds, "{p:?}");
                }
            }
        }
        worker.flush();
        let report = model.report();
        assert!(report.skipped_pairs() > 0, "force-skip must skip");
        assert!(report.classes.iter().all(|c| c.verdict == "skip"));
    }

    #[test]
    fn warmup_settles_a_verdict_and_reports_it() {
        // Tiny warm-up; a meets-heavy stream where APRIL never decides
        // (shared-edge rectangles) must settle on skip.
        let model = AdaptiveModel::with_warmup(AdaptiveMode::On, 8);
        let mut worker = AdaptiveWorker::new(&model);
        let mut scratch = RelateScratch::default();
        let a = obj(0.0, 0.0, 50.0, 50.0);
        let b = obj(50.0, 0.0, 90.0, 50.0);
        // 8 warming pairs settle the verdict; the last 4 skip. Stays
        // below REVISIT_SAMPLES post-skip samples so the audit (tested
        // separately with synthetic costs) cannot engage — with real
        // timings on tiny objects its flip direction is noise.
        for _ in 0..12 {
            let out = find_relation_adaptive_with(
                a.view(),
                b.view(),
                &mut Disabled,
                &mut scratch,
                &mut worker,
            );
            assert_eq!(out.relation, TopoRelation::Meets);
            worker.flush();
        }
        let report = model.report();
        let cell = report
            .classes
            .iter()
            .find(|c| c.predicate.is_none())
            .expect("find-relation cell saw traffic");
        assert_eq!(cell.verdict, "skip", "0% decisive APRIL must be skipped");
        assert!(cell.skipped_pairs > 0);
        assert_eq!(cell.april_decided, 0);
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"mode\": \"on\""), "{rendered}");
        assert!(rendered.contains("\"verdict\": \"skip\""), "{rendered}");
    }

    #[test]
    fn post_skip_audit_flips_an_uneconomic_skip_to_keep() {
        // Warm-up counters fed directly so the costs are exact: APRIL
        // never decides and looks expensive next to the (filter-
        // narrowed) refine samples, so the cell settles on skip...
        let model = AdaptiveModel::with_warmup(AdaptiveMode::On, 8);
        let mut worker = AdaptiveWorker::new(&model);
        let idx = cell_index(MbrRelation::Equal as usize, mode_index(None));
        for _ in 0..8 {
            worker.note_pair(idx, false, Some(500), Some(100));
        }
        worker.flush();
        assert_eq!(model.verdict(idx), Verdict::Skip);
        assert_eq!(worker.verdicts[idx], Verdict::Skip);
        // ...but realized post-skip refinement is far more expensive
        // than the full pipeline was (5000 vs 500 + 100 per pair): the
        // audit must flip the verdict back to keep as soon as the
        // worker folds in REVISIT_SAMPLES realized samples, without
        // waiting for a merge period.
        for _ in 0..REVISIT_SAMPLES {
            worker.note_skip(idx, Some(5_000));
        }
        assert_eq!(model.verdict(idx), Verdict::Keep);
        assert_eq!(worker.verdicts[idx], Verdict::Keep, "eager refresh");
        // The flip is one-way: further cheap evidence cannot re-skip.
        for _ in 0..REVISIT_SAMPLES {
            worker.note_skip(idx, Some(1));
        }
        assert_eq!(model.verdict(idx), Verdict::Keep);
    }

    #[test]
    fn post_skip_audit_leaves_an_earning_skip_alone() {
        // Realized refinement matches the warm-up estimate, so the skip
        // keeps saving the APRIL cost every pair and must stand.
        let model = AdaptiveModel::with_warmup(AdaptiveMode::On, 8);
        let mut worker = AdaptiveWorker::new(&model);
        let idx = cell_index(MbrRelation::Overlap as usize, mode_index(None));
        for _ in 0..8 {
            worker.note_pair(idx, false, Some(500), Some(100));
        }
        worker.flush();
        assert_eq!(model.verdict(idx), Verdict::Skip);
        for _ in 0..4 * REVISIT_SAMPLES {
            worker.note_skip(idx, Some(100));
        }
        worker.flush();
        assert_eq!(model.verdict(idx), Verdict::Skip);
    }

    #[test]
    fn decisive_stream_settles_on_keep() {
        // Deep containment: APRIL decides every pair; the verdict must
        // be keep no matter the relative costs.
        let model = AdaptiveModel::with_warmup(AdaptiveMode::On, 8);
        let mut worker = AdaptiveWorker::new(&model);
        let mut scratch = RelateScratch::default();
        let outer = obj(0.0, 0.0, 90.0, 90.0);
        let inner = obj(40.0, 40.0, 50.0, 50.0);
        for _ in 0..64 {
            let out = find_relation_adaptive_with(
                inner.view(),
                outer.view(),
                &mut Disabled,
                &mut scratch,
                &mut worker,
            );
            assert_eq!(out.relation, TopoRelation::Inside);
            worker.flush();
        }
        let report = model.report();
        let cell = &report.classes[0];
        assert_eq!(cell.verdict, "keep");
        assert_eq!(cell.skipped_pairs, 0);
        assert!((cell.decisiveness_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn probe_cap_follows_verdicts() {
        assert_eq!(
            AdaptiveModel::new(AdaptiveMode::Off).probe_interval_cap(),
            None
        );
        assert_eq!(
            AdaptiveModel::new(AdaptiveMode::ForceSkip).probe_interval_cap(),
            Some(SKIP_PROBE_INTERVALS)
        );
        let on = AdaptiveModel::new(AdaptiveMode::On);
        assert_eq!(
            on.probe_interval_cap(),
            None,
            "unwarmed model keeps full budget"
        );
    }
}
