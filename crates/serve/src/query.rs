//! Request dispatch: the endpoint handlers shared by the HTTP and
//! binary-framing transports.
//!
//! Every handler is a pure function of `(ServeCtx, request)` →
//! [`Reply`]; transports only differ in how bytes get on and off the
//! wire. Most endpoints produce a buffered [`Response`]; `/v1/discover`
//! produces a [`Reply::Stream`] when the transport can stream (the
//! reactor's HTTP path), and is drained into a buffered response
//! everywhere else. Errors are structured JSON
//! (`{"error": {"code", "kind", "message"}}`) so clients can branch on
//! `kind` without parsing prose.
//!
//! Each dispatch pins the live dataset [`crate::Generation`] exactly
//! once and resolves everything through it, so a concurrent hot-swap
//! (`POST /v1/admin/reload`, SIGHUP) never mixes generations within one
//! response.

use crate::discover::{DiscoverFormat, DiscoverStream};
use crate::http::percent_decode;
use crate::{Endpoint, Generation, ProbeKey, ServeCtx};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stj_core::{
    find_relation_adaptive_with, find_relation_with, AdaptiveWorker, Determination, JoinBounds,
    JoinMethod, RelateScratch, SpatialObject, TopologyJoin, DEFAULT_MAX_INTERVALS,
};
use stj_de9im::TopoRelation;
use stj_obs::Json;
use stj_store::read_wkt_polygons;

/// Default and maximum `limit` for `/v1/relate` matches.
pub const DEFAULT_RELATE_LIMIT: u64 = 1000;
const MAX_RELATE_LIMIT: u64 = 1_000_000;

/// A transport-independent response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code (embedded in the frame for framed clients).
    pub status: u16,
    /// MIME type.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether the connection should close after this response
    /// (streaming joins close; everything else keeps alive).
    pub close: bool,
    /// Whether the response was truncated by a deadline or cap (for the
    /// truncation counter).
    pub truncated: bool,
}

impl Response {
    fn json(status: u16, doc: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: doc.render().into_bytes(),
            close: false,
            truncated: false,
        }
    }

    /// A structured JSON error.
    pub fn error(status: u16, kind: &str, message: impl Into<String>) -> Response {
        Response::json(
            status,
            &Json::object([(
                "error",
                Json::object([
                    ("code", Json::U64(status as u64)),
                    ("kind", Json::str(kind)),
                    ("message", Json::str(message.into())),
                ]),
            )]),
        )
    }
}

/// What a handler produced: a buffered response, or a streaming job the
/// transport pulls chunks from (only `/v1/discover` streams today, and
/// only over the reactor's HTTP path — chunked pull with
/// write-readiness backpressure is what keeps its memory bounded).
pub enum Reply {
    /// A fully rendered response.
    Full(Response),
    /// A chunk-at-a-time body; the head is `200` with the stream's
    /// content type, no `content-length`, and `connection: close`.
    Stream(DiscoverStream),
}

impl Reply {
    /// Collapses a stream into a buffered response (non-streaming
    /// transports and the plain [`dispatch`] entry point).
    pub fn into_response(self, ctx: &ServeCtx, scratch: &mut RelateScratch) -> Response {
        match self {
            Reply::Full(r) => r,
            Reply::Stream(mut s) => {
                let content_type = s.content_type();
                Response {
                    status: 200,
                    content_type,
                    body: s.drain_to_vec(ctx, scratch),
                    close: true,
                    truncated: false,
                }
            }
        }
    }
}

/// Which endpoint family a path belongs to (for per-endpoint latency).
pub fn endpoint_of(path: &str) -> Endpoint {
    match path {
        "/v1/relate" => Endpoint::Relate,
        "/v1/pair" => Endpoint::Pair,
        "/v1/join" => Endpoint::Join,
        "/v1/discover" => Endpoint::Discover,
        "/v1/admin/reload" => Endpoint::Admin,
        "/stats" | "/metrics" => Endpoint::Stats,
        _ => Endpoint::Other,
    }
}

/// Dispatches one request to its handler with one-shot scratch memory.
/// The pool's workers use [`dispatch_with`] with their per-worker
/// scratch instead.
pub fn dispatch(
    ctx: &ServeCtx,
    method: &str,
    path: &str,
    query: &[(String, String)],
    body: &[u8],
) -> Response {
    dispatch_with(
        ctx,
        method,
        path,
        query,
        body,
        &mut RelateScratch::default(),
    )
}

/// Dispatches one request to its handler, threading the caller's relate
/// scratch into the geometry-touching endpoints. Streams are drained
/// into a buffered response.
pub fn dispatch_with(
    ctx: &ServeCtx,
    method: &str,
    path: &str,
    query: &[(String, String)],
    body: &[u8],
    scratch: &mut RelateScratch,
) -> Response {
    dispatch_reply(ctx, method, path, query, body, scratch).into_response(ctx, scratch)
}

/// The full dispatcher. `/v1/discover` returns [`Reply::Stream`];
/// transports that can stream drive it chunk by chunk, everything else
/// collapses it with [`Reply::into_response`].
pub fn dispatch_reply(
    ctx: &ServeCtx,
    method: &str,
    path: &str,
    query: &[(String, String)],
    body: &[u8],
    scratch: &mut RelateScratch,
) -> Reply {
    // Pin the generation once; everything below resolves through it.
    let gen = ctx.generation();
    let full = |r: Response| Reply::Full(r);
    match (method, path) {
        ("GET", "/healthz") => full(Response::json(200, &Json::object([("ok", Json::Bool(true))]))),
        ("GET", "/stats") => full(handle_stats(ctx, &gen)),
        ("GET", "/metrics") => full(handle_metrics(ctx, &gen)),
        ("GET", "/v1/datasets") => full(handle_datasets(&gen)),
        ("POST", "/v1/relate") => full(handle_relate(ctx, &gen, query, body, scratch)),
        ("GET", "/v1/pair") => full(handle_pair(&gen, query, scratch)),
        ("POST", "/v1/join") => full(handle_join(ctx, &gen, query)),
        ("POST", "/v1/discover") => handle_discover(gen, query, body),
        ("POST", "/v1/admin/reload") => full(handle_reload(ctx, body)),
        (
            _,
            "/healthz" | "/stats" | "/metrics" | "/v1/datasets" | "/v1/relate" | "/v1/pair"
            | "/v1/join" | "/v1/discover" | "/v1/admin/reload",
        ) => full(Response::error(
            405,
            "method_not_allowed",
            format!("{method} not allowed here"),
        )),
        _ => full(Response::error(
            404,
            "not_found",
            format!("no such endpoint: {path}"),
        )),
    }
}

/// Parses a framed request target (`/path?query`, still
/// percent-encoded) into dispatch inputs and runs it with one-shot
/// scratch memory.
pub fn dispatch_target(ctx: &ServeCtx, method: &str, target: &str, body: &[u8]) -> Response {
    dispatch_target_with(ctx, method, target, body, &mut RelateScratch::default())
}

/// [`dispatch_target`] threading the caller's relate scratch. Framed
/// transports never stream, so discover replies are drained.
pub fn dispatch_target_with(
    ctx: &ServeCtx,
    method: &str,
    target: &str,
    body: &[u8],
    scratch: &mut RelateScratch,
) -> Response {
    match parse_target(target) {
        Ok((path, query)) => dispatch_with(ctx, method, &path, &query, body, scratch),
        Err(r) => r,
    }
}

/// Splits and percent-decodes a request target into `(path, query)`.
pub fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), Response> {
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let Some(path) = percent_decode(path_raw) else {
        return Err(Response::error(
            400,
            "bad_target",
            "bad percent-encoding in path",
        ));
    };
    let mut query = Vec::new();
    if let Some(qs) = query_raw {
        for pair in qs.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match (percent_decode(k), percent_decode(v)) {
                (Some(k), Some(v)) => query.push((k, v)),
                _ => {
                    return Err(Response::error(
                        400,
                        "bad_target",
                        "bad percent-encoding in query",
                    ))
                }
            }
        }
    }
    Ok((path, query))
}

fn handle_stats(ctx: &ServeCtx, gen: &Generation) -> Response {
    let datasets: Vec<(String, usize, bool, &'static str)> = gen
        .datasets
        .iter()
        .map(|d| {
            (
                d.name.clone(),
                d.arena.len(),
                d.arena.is_zero_copy(),
                d.arena.backing_kind(),
            )
        })
        .collect();
    let doc = ctx.stats.render(
        ctx.started,
        gen.id,
        &datasets,
        ctx.cache.to_json(),
        ctx.config.to_json(),
        ctx.adaptive.report().to_json(),
    );
    Response::json(200, &doc)
}

/// `GET /metrics`: the same counters as `/stats`, rendered in the
/// Prometheus text exposition format for scrapers.
fn handle_metrics(ctx: &ServeCtx, gen: &Generation) -> Response {
    let s = &ctx.stats;
    let mut w = stj_obs::PromWriter::new();
    w.gauge(
        "stj_serve_uptime_seconds",
        "Seconds since the server started.",
        &[],
        ctx.started.elapsed().as_secs_f64(),
    );
    w.gauge(
        "stj_serve_generation",
        "The live dataset generation id (bumped by each reload).",
        &[],
        gen.id as f64,
    );
    w.counter(
        "stj_serve_reloads_total",
        "Dataset reloads, by outcome.",
        &[("outcome", "ok")],
        s.reloads.get(),
    );
    w.counter(
        "stj_serve_reloads_total",
        "Dataset reloads, by outcome.",
        &[("outcome", "error")],
        s.reload_errors.get(),
    );
    w.counter(
        "stj_serve_requests_total",
        "Requests fully read and dispatched, by transport.",
        &[("transport", "http")],
        s.requests_http.get(),
    );
    w.counter(
        "stj_serve_requests_total",
        "Requests fully read and dispatched, by transport.",
        &[("transport", "framed")],
        s.requests_framed.get(),
    );
    for (class, counter) in [
        ("2xx", &s.responses_ok),
        ("4xx", &s.responses_client_error),
        ("5xx", &s.responses_server_error),
    ] {
        w.counter(
            "stj_serve_responses_total",
            "Responses written, by status class.",
            &[("class", class)],
            counter.get(),
        );
    }
    w.counter(
        "stj_serve_rejected_total",
        "Requests shed with 429 because the job queue was full.",
        &[],
        s.rejected_429.get(),
    );
    w.counter(
        "stj_serve_truncated_responses_total",
        "Responses truncated by a deadline or result cap.",
        &[],
        s.truncated_responses.get(),
    );
    w.counter(
        "stj_serve_slow_requests_total",
        "Requests slower than the slow-request log threshold.",
        &[],
        s.slow_requests.get(),
    );
    for (direction, counter) in [("in", &s.bytes_in), ("out", &s.bytes_out)] {
        w.counter(
            "stj_serve_bytes_total",
            "Bytes moved on the wire, by direction.",
            &[("direction", direction)],
            counter.get(),
        );
    }
    w.counter(
        "stj_serve_connections_total",
        "Connections accepted.",
        &[],
        s.connections.get(),
    );
    w.gauge(
        "stj_serve_open_connections",
        "Connections currently open (reactor transports).",
        &[],
        s.open_connections.get() as f64,
    );
    w.gauge(
        "stj_serve_write_backlog_bytes",
        "Bytes queued for write-out across open connections.",
        &[],
        s.write_backlog_bytes.get() as f64,
    );
    for (cause, counter) in [
        ("idle", &s.idle_timeouts),
        ("header", &s.header_timeouts),
    ] {
        w.counter(
            "stj_serve_connection_timeouts_total",
            "Connections closed by a deadline, by cause.",
            &[("cause", cause)],
            counter.get(),
        );
    }
    w.gauge(
        "stj_serve_queue_depth",
        "Job-queue depth between transports and the worker pool.",
        &[],
        s.queue_depth.get() as f64,
    );
    w.gauge(
        "stj_serve_queue_depth_peak",
        "High-water mark of the job-queue depth.",
        &[],
        s.queue_depth.peak() as f64,
    );
    w.gauge(
        "stj_serve_in_flight",
        "Requests currently being processed.",
        &[],
        s.in_flight.get() as f64,
    );
    w.gauge(
        "stj_serve_in_flight_peak",
        "High-water mark of in-flight requests.",
        &[],
        s.in_flight.peak() as f64,
    );
    for (event, counter) in [
        ("hit", &ctx.cache.hits),
        ("miss", &ctx.cache.misses),
        ("insertion", &ctx.cache.insertions),
        ("eviction", &ctx.cache.evictions),
        ("invalidation", &ctx.cache.invalidations),
    ] {
        w.counter(
            "stj_serve_cache_events_total",
            "Probe-cache events, by kind.",
            &[("event", event)],
            counter.get(),
        );
    }
    for d in &gen.datasets {
        w.gauge(
            "stj_serve_dataset_objects",
            "Objects loaded, per dataset.",
            &[("dataset", &d.name)],
            d.arena.len() as f64,
        );
    }
    for ep in Endpoint::ALL {
        w.histogram(
            "stj_serve_request_latency_ns",
            "Request latency in nanoseconds, by endpoint family.",
            &[("endpoint", ep.name())],
            &s.latency(ep).snapshot(),
        );
    }
    for st in crate::ConnState::ALL {
        w.histogram(
            "stj_serve_state_latency_ns",
            "Per-request lifecycle stage latency in nanoseconds.",
            &[("state", st.name())],
            &s.state_latency(st).snapshot(),
        );
    }
    Response {
        status: 200,
        content_type: stj_obs::prom::CONTENT_TYPE,
        body: w.finish().into_bytes(),
        close: false,
        truncated: false,
    }
}

fn handle_datasets(gen: &Generation) -> Response {
    let items: Vec<Json> = gen
        .datasets
        .iter()
        .enumerate()
        .map(|(i, d)| {
            Json::object([
                ("index", Json::U64(i as u64)),
                ("name", Json::str(d.name.clone())),
                ("objects", Json::U64(d.arena.len() as u64)),
                ("grid_order", Json::U64(u64::from(d.grid.order()))),
                ("backing", Json::str(d.arena.backing_kind())),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::object([
            ("generation", Json::U64(gen.id)),
            ("datasets", Json::Arr(items)),
        ]),
    )
}

/// The deadline for a request starting now (None when disabled).
fn request_deadline(ctx: &ServeCtx) -> Option<Instant> {
    (ctx.config.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(ctx.config.deadline_ms))
}

fn determination_label(d: Determination) -> &'static str {
    match d {
        Determination::MbrFilter => "mbr_filter",
        Determination::IntermediateFilter => "intermediate_filter",
        Determination::Refinement => "refinement",
    }
}

/// First query value for `key`, if present.
fn qp<'a>(query: &'a [(String, String)], key: &str) -> Option<&'a str> {
    query
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn handle_relate(
    ctx: &ServeCtx,
    gen: &Generation,
    query: &[(String, String)],
    body: &[u8],
    scratch: &mut RelateScratch,
) -> Response {
    let q = |key: &str| qp(query, key);
    let Some(ds_key) = q("dataset") else {
        return Response::error(
            400,
            "missing_param",
            "query parameter `dataset` is required",
        );
    };
    let Some((ds_idx, ds)) = gen.find_dataset(ds_key) else {
        return Response::error(404, "unknown_dataset", format!("no dataset {ds_key:?}"));
    };
    let limit = match q("limit") {
        None => DEFAULT_RELATE_LIMIT,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => n.min(MAX_RELATE_LIMIT),
            _ => return Response::error(400, "bad_param", format!("bad limit {v:?}")),
        },
    };

    let key = ProbeKey {
        generation: gen.id,
        dataset: ds_idx as u32,
        limit,
        wkt: body.to_vec(),
    };
    if let Some(cached) = ctx.cache.get(&key) {
        return Response {
            status: 200,
            content_type: "application/json",
            body: cached,
            close: false,
            truncated: false,
        };
    }

    // Parse the probe with the store's line-oriented WKT reader so
    // errors carry 1-based line numbers ("line 1: WKT syntax error:
    // ..."), exactly like `stj preprocess` on a bad input file.
    let polygons = match read_wkt_polygons(body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, "bad_wkt", e.to_string()),
    };
    let polygon = match polygons.len() {
        1 => polygons.into_iter().next().expect("len checked"),
        0 => return Response::error(400, "bad_wkt", "request body contains no polygon"),
        n => {
            return Response::error(
                400,
                "bad_wkt",
                format!("request body contains {n} polygons, expected exactly one"),
            )
        }
    };

    // Rasterize the probe once, on the dataset's own grid, then probe
    // the tile index and run the full pipeline per candidate. Once the
    // resident adaptive model has settled on skipping the APRIL stage,
    // probe rasterization precision is wasted too — ad-hoc probes are
    // built with a coarse interval budget (still sound: coarsening only
    // widens the approximation).
    let deadline = request_deadline(ctx);
    let budget = ctx
        .adaptive
        .probe_interval_cap()
        .unwrap_or(DEFAULT_MAX_INTERVALS);
    let probe = SpatialObject::build_with_budget(polygon, &ds.grid, budget);
    let mut candidates: Vec<u32> = Vec::new();
    ds.tiling
        .probe(probe.view().mbr, ds.arena.mbrs(), &mut |id| {
            candidates.push(id)
        });

    // Per-request view of the resident model: this request's pairs feed
    // the shared warm-up, and settled skip verdicts apply immediately.
    let mut adaptive = ctx
        .config
        .adaptive
        .enabled()
        .then(|| AdaptiveWorker::new(&ctx.adaptive));
    let mut matches = Json::Arr(Vec::new());
    let mut match_count: u64 = 0;
    let mut truncated = false;
    let mut limit_hit = false;
    for (n, &id) in candidates.iter().enumerate() {
        if n % 256 == 255 && deadline.is_some_and(|d| Instant::now() >= d) {
            truncated = true;
            break;
        }
        let out = match adaptive.as_mut() {
            Some(w) => find_relation_adaptive_with(
                probe.view(),
                ds.arena.object(id as usize),
                &mut stj_obs::Disabled,
                scratch,
                w,
            ),
            None => find_relation_with(probe.view(), ds.arena.object(id as usize), scratch),
        };
        if out.relation == TopoRelation::Disjoint {
            continue;
        }
        if match_count >= limit {
            limit_hit = true;
            break;
        }
        match_count += 1;
        if let Json::Arr(items) = &mut matches {
            items.push(Json::object([
                ("id", Json::U64(u64::from(id))),
                ("relation", Json::str(out.relation.to_string())),
                (
                    "determination",
                    Json::str(determination_label(out.determination)),
                ),
            ]));
        }
    }

    if let Some(w) = &mut adaptive {
        // Fold this request's partial window into the resident model so
        // warm-up progresses across requests.
        w.flush();
    }

    let doc = Json::object([
        ("dataset", Json::str(ds.name.clone())),
        ("candidates", Json::U64(candidates.len() as u64)),
        ("matches", matches),
        ("truncated", Json::Bool(truncated)),
        ("limit_hit", Json::Bool(limit_hit)),
    ]);
    let body_bytes = doc.render().into_bytes();
    // Truncated results depend on server load at request time; caching
    // them would pin a partial answer.
    if !truncated {
        ctx.cache.put(key, body_bytes.clone());
    }
    Response {
        status: 200,
        content_type: "application/json",
        body: body_bytes,
        close: false,
        truncated,
    }
}

/// Resolves a dataset and an object index within it.
fn resolve_object<'g>(
    gen: &'g Generation,
    query: &[(String, String)],
    ds_param: &str,
    idx_param: &str,
) -> Result<(&'g crate::LoadedDataset, usize), Response> {
    let q = |key: &str| qp(query, key);
    let Some(ds_key) = q(ds_param) else {
        return Err(Response::error(
            400,
            "missing_param",
            format!("query parameter `{ds_param}` is required"),
        ));
    };
    let Some((_, ds)) = gen.find_dataset(ds_key) else {
        return Err(Response::error(
            404,
            "unknown_dataset",
            format!("no dataset {ds_key:?}"),
        ));
    };
    let Some(idx_raw) = q(idx_param) else {
        return Err(Response::error(
            400,
            "missing_param",
            format!("query parameter `{idx_param}` is required"),
        ));
    };
    let Ok(idx) = idx_raw.parse::<usize>() else {
        return Err(Response::error(
            400,
            "bad_param",
            format!("bad object index {idx_raw:?}"),
        ));
    };
    if idx >= ds.arena.len() {
        return Err(Response::error(
            404,
            "object_out_of_range",
            format!(
                "index {idx} out of range for dataset {:?} ({} objects)",
                ds.name,
                ds.arena.len()
            ),
        ));
    }
    Ok((ds, idx))
}

fn handle_pair(
    gen: &Generation,
    query: &[(String, String)],
    scratch: &mut RelateScratch,
) -> Response {
    let (left, i) = match resolve_object(gen, query, "left", "i") {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (right, j) = match resolve_object(gen, query, "right", "j") {
        Ok(v) => v,
        Err(r) => return r,
    };
    if left.grid != right.grid {
        return Response::error(
            400,
            "grid_mismatch",
            "datasets were preprocessed on different grids; relations cannot be compared",
        );
    }
    let out = find_relation_with(left.arena.object(i), right.arena.object(j), scratch);
    Response::json(
        200,
        &Json::object([
            ("left", Json::str(left.name.clone())),
            ("i", Json::U64(i as u64)),
            ("right", Json::str(right.name.clone())),
            ("j", Json::U64(j as u64)),
            ("relation", Json::str(out.relation.to_string())),
            (
                "determination",
                Json::str(determination_label(out.determination)),
            ),
        ]),
    )
}

fn handle_join(ctx: &ServeCtx, gen: &Generation, query: &[(String, String)]) -> Response {
    let q = |key: &str| qp(query, key);
    let resolve = |param: &str| -> Result<&crate::LoadedDataset, Response> {
        let Some(key) = q(param) else {
            return Err(Response::error(
                400,
                "missing_param",
                format!("query parameter `{param}` is required"),
            ));
        };
        gen.find_dataset(key)
            .map(|(_, d)| d)
            .ok_or_else(|| Response::error(404, "unknown_dataset", format!("no dataset {key:?}")))
    };
    let left = match resolve("left") {
        Ok(d) => d,
        Err(r) => return r,
    };
    let right = match resolve("right") {
        Ok(d) => d,
        Err(r) => return r,
    };
    if left.grid != right.grid {
        return Response::error(
            400,
            "grid_mismatch",
            "datasets were preprocessed on different grids and cannot be joined",
        );
    }
    let method = match q("method").unwrap_or("pc") {
        "pc" => JoinMethod::PC,
        "st2" => JoinMethod::St2,
        "op2" => JoinMethod::Op2,
        "april" => JoinMethod::April,
        other => return Response::error(400, "bad_param", format!("unknown method {other:?}")),
    };
    let predicate = match q("predicate") {
        None => None,
        Some(name) => match TopoRelation::parse(name) {
            Some(p) => Some(p),
            None => {
                return Response::error(400, "bad_param", format!("unknown predicate {name:?}"))
            }
        },
    };
    let max_links = match q("max_links") {
        None => ctx.config.max_links,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => n.min(ctx.config.max_links),
            _ => return Response::error(400, "bad_param", format!("bad max_links {v:?}")),
        },
    };

    // Server-side joins honor the configured adaptive mode with a
    // per-run model (batch traffic would swamp the resident probe
    // model's verdicts with unrelated statistics).
    let mut join = TopologyJoin::new()
        .method(method)
        .adaptive(ctx.config.adaptive);
    if let Some(p) = predicate {
        join = join.predicate(p);
    }
    let bounds = JoinBounds {
        max_links: Some(max_links),
        deadline: request_deadline(ctx),
    };
    let bounded = join.run_bounded(&left.arena, &right.arena, bounds);

    // NDJSON: one compact link object per line, then a summary line.
    let mut body = String::with_capacity(bounded.result.links.len() * 40 + 256);
    for link in &bounded.result.links {
        let _ = writeln!(
            body,
            "{{\"r\":{},\"s\":{},\"relation\":\"{}\"}}",
            link.r, link.s, link.relation
        );
    }
    let _ = writeln!(
        body,
        "{{\"summary\":{{\"links\":{},\"candidates\":{},\"hit_link_cap\":{},\"hit_deadline\":{},\"truncated\":{}}}}}",
        bounded.result.links.len(),
        bounded.result.candidates,
        bounded.hit_link_cap,
        bounded.hit_deadline,
        bounded.truncated(),
    );
    Response {
        status: 200,
        content_type: "application/x-ndjson",
        body: body.into_bytes(),
        close: true,
        truncated: bounded.truncated(),
    }
}

/// `POST /v1/discover`: bulk link discovery of the WKT set in the body
/// against one dataset. Query parameters: `dataset` (required),
/// `format` (`ndjson` default, `nt` for GeoSPARQL N-Triples), `name`
/// (probe naming for N-Triples subjects, default `probes`).
fn handle_discover(gen: Arc<Generation>, query: &[(String, String)], body: &[u8]) -> Reply {
    let q = |key: &str| qp(query, key);
    let Some(ds_key) = q("dataset") else {
        return Reply::Full(Response::error(
            400,
            "missing_param",
            "query parameter `dataset` is required",
        ));
    };
    let Some((ds_idx, _)) = gen.find_dataset(ds_key) else {
        return Reply::Full(Response::error(
            404,
            "unknown_dataset",
            format!("no dataset {ds_key:?}"),
        ));
    };
    let format = match q("format") {
        None => DiscoverFormat::Ndjson,
        Some(f) => match DiscoverFormat::parse(f) {
            Some(f) => f,
            None => {
                return Reply::Full(Response::error(
                    400,
                    "bad_param",
                    format!("unknown format {f:?} (expected ndjson or nt)"),
                ))
            }
        },
    };
    let name = q("name").unwrap_or("probes").to_string();
    let probes = match read_wkt_polygons(body) {
        Ok(p) => p,
        Err(e) => return Reply::Full(Response::error(400, "bad_wkt", e.to_string())),
    };
    if probes.is_empty() {
        return Reply::Full(Response::error(
            400,
            "bad_wkt",
            "request body contains no polygons",
        ));
    }
    Reply::Stream(DiscoverStream::new(gen, ds_idx, probes, format, name))
}

/// `POST /v1/admin/reload`: hot-swap in a freshly loaded dataset
/// generation. An empty body re-reads the `--data` paths from startup;
/// a non-empty body is a newline-separated list of STJD paths that
/// replaces the configured set. Responds 200 with the new generation,
/// 409 when no paths are available (in-memory server), 500 when
/// loading failed (old generation stays live).
fn handle_reload(ctx: &ServeCtx, body: &[u8]) -> Response {
    let override_paths: Option<Vec<std::path::PathBuf>> = match std::str::from_utf8(body) {
        Ok(text) => {
            let paths: Vec<std::path::PathBuf> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(std::path::PathBuf::from)
                .collect();
            (!paths.is_empty()).then_some(paths)
        }
        Err(_) => {
            return Response::error(400, "bad_body", "reload body must be UTF-8 paths");
        }
    };
    match ctx.reload(override_paths) {
        Ok(fresh) => {
            let names: Vec<Json> = fresh
                .datasets
                .iter()
                .map(|d| Json::str(d.name.clone()))
                .collect();
            Response::json(
                200,
                &Json::object([
                    ("generation", Json::U64(fresh.id)),
                    ("datasets", Json::Arr(names)),
                ]),
            )
        }
        Err(e) if e.contains("no dataset paths") => {
            Response::error(409, "reload_unavailable", e)
        }
        Err(e) => Response::error(500, "reload_failed", e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoadedDataset, ServeConfig, ServeCtx};
    use stj_core::{find_relation, Dataset};
    use stj_geom::{Polygon, Rect};
    use stj_index::Tiling;
    use stj_raster::Grid;

    fn test_ctx() -> ServeCtx {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8);
        let polys = vec![
            Polygon::rect(Rect::from_coords(10.0, 10.0, 40.0, 40.0)),
            Polygon::rect(Rect::from_coords(20.0, 20.0, 30.0, 30.0)),
            Polygon::rect(Rect::from_coords(60.0, 60.0, 90.0, 90.0)),
        ];
        let ds = Dataset::build("boxes", polys, &grid);
        let arena = ds.to_arena();
        let tiling = Tiling::for_probes(arena.mbrs());
        let loaded = LoadedDataset {
            name: "boxes".to_string(),
            arena,
            grid,
            tiling,
        };
        ServeCtx::new(ServeConfig::default(), vec![loaded])
    }

    fn body_str(r: &Response) -> &str {
        std::str::from_utf8(&r.body).expect("utf8 body")
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let ctx = test_ctx();
        assert_eq!(dispatch(&ctx, "GET", "/healthz", &[], b"").status, 200);
        assert_eq!(dispatch(&ctx, "GET", "/nope", &[], b"").status, 404);
        assert_eq!(dispatch(&ctx, "DELETE", "/stats", &[], b"").status, 405);
        assert_eq!(dispatch(&ctx, "GET", "/v1/discover", &[], b"").status, 405);
        assert_eq!(
            dispatch(&ctx, "GET", "/v1/admin/reload", &[], b"").status,
            405
        );
    }

    #[test]
    fn endpoint_families_cover_new_paths() {
        assert_eq!(endpoint_of("/v1/discover"), Endpoint::Discover);
        assert_eq!(endpoint_of("/v1/admin/reload"), Endpoint::Admin);
        assert_eq!(endpoint_of("/v1/relate"), Endpoint::Relate);
        assert_eq!(endpoint_of("/elsewhere"), Endpoint::Other);
    }

    #[test]
    fn metrics_render_prometheus_text() {
        let ctx = test_ctx();
        ctx.stats.requests_http.add(3);
        ctx.stats.note_status(200);
        ctx.stats.latency(Endpoint::Relate).record(12_000);
        let r = dispatch(&ctx, "GET", "/metrics", &[], b"");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, stj_obs::prom::CONTENT_TYPE);
        let body = body_str(&r);
        assert!(
            body.contains("stj_serve_requests_total{transport=\"http\"} 3"),
            "{body}"
        );
        assert!(
            body.contains("stj_serve_responses_total{class=\"2xx\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("stj_serve_dataset_objects{dataset=\"boxes\"} 3"),
            "{body}"
        );
        assert!(
            body.contains("stj_serve_request_latency_ns_count{endpoint=\"relate\"} 1"),
            "{body}"
        );
        assert!(body.contains("stj_serve_generation 1"), "{body}");
        assert!(
            body.contains("stj_serve_state_latency_ns_count{state=\"queue\"}"),
            "{body}"
        );
        // Only GET is allowed.
        assert_eq!(dispatch(&ctx, "POST", "/metrics", &[], b"").status, 405);
    }

    #[test]
    fn relate_finds_containing_box() {
        let ctx = test_ctx();
        let q = vec![("dataset".to_string(), "boxes".to_string())];
        // A probe inside both object 0 and object 1's neighbourhood.
        let r = dispatch(
            &ctx,
            "POST",
            "/v1/relate",
            &q,
            b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))",
        );
        assert_eq!(r.status, 200, "{}", body_str(&r));
        let body = body_str(&r);
        assert!(body.contains("\"inside\""), "{body}");
        assert!(body.contains("\"truncated\": false"), "{body}");
        // Object 2 is far away: must not appear.
        assert!(!body.contains("\"id\": 2"), "{body}");
    }

    #[test]
    fn adaptive_model_warms_across_relate_requests() {
        use stj_core::AdaptiveMode;
        // Cache off so every request actually runs the pipeline.
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8);
        let polys = vec![
            Polygon::rect(Rect::from_coords(10.0, 10.0, 40.0, 40.0)),
            Polygon::rect(Rect::from_coords(20.0, 20.0, 30.0, 30.0)),
        ];
        let ds = Dataset::build("boxes", polys, &grid);
        let arena = ds.to_arena();
        let tiling = Tiling::for_probes(arena.mbrs());
        let loaded = LoadedDataset {
            name: "boxes".to_string(),
            arena,
            grid,
            tiling,
        };
        let config = ServeConfig {
            cache_mb: 0,
            adaptive: AdaptiveMode::ForceSkip,
            ..ServeConfig::default()
        };
        let ctx = ServeCtx::new(config, vec![loaded]);
        let q = vec![("dataset".to_string(), "boxes".to_string())];
        for _ in 0..3 {
            let r = dispatch(
                &ctx,
                "POST",
                "/v1/relate",
                &q,
                b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))",
            );
            assert_eq!(r.status, 200, "{}", body_str(&r));
            // Relations are identical to the static pipeline; only the
            // deciding stage moves under force-skip.
            assert!(body_str(&r).contains("\"inside\""), "{}", body_str(&r));
        }
        let report = ctx.adaptive.report();
        assert!(
            report.skipped_pairs() > 0,
            "requests must feed the resident model"
        );
        let stats = dispatch(&ctx, "GET", "/stats", &[], b"");
        let body = body_str(&stats);
        assert!(body.contains("\"adaptive\""), "{body}");
        assert!(body.contains("\"force-skip\""), "{body}");
    }

    #[test]
    fn relate_bad_wkt_is_line_numbered_400() {
        let ctx = test_ctx();
        let q = vec![("dataset".to_string(), "0".to_string())];
        let r = dispatch(&ctx, "POST", "/v1/relate", &q, b"POLYGON((not wkt");
        assert_eq!(r.status, 400);
        let body = body_str(&r);
        assert!(body.contains("\"kind\": \"bad_wkt\""), "{body}");
        assert!(body.contains("line 1:"), "{body}");
    }

    #[test]
    fn relate_caches_identical_probes() {
        let ctx = test_ctx();
        let q = vec![("dataset".to_string(), "boxes".to_string())];
        let wkt = b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))";
        let first = dispatch(&ctx, "POST", "/v1/relate", &q, wkt);
        let second = dispatch(&ctx, "POST", "/v1/relate", &q, wkt);
        assert_eq!(first.body, second.body);
        assert_eq!(ctx.cache.hits.get(), 1);
        assert_eq!(ctx.cache.misses.get(), 1);
    }

    #[test]
    fn relate_unknown_dataset_404() {
        let ctx = test_ctx();
        let q = vec![("dataset".to_string(), "nope".to_string())];
        let r = dispatch(
            &ctx,
            "POST",
            "/v1/relate",
            &q,
            b"POLYGON((0 0,1 0,1 1,0 0))",
        );
        assert_eq!(r.status, 404);
        assert!(body_str(&r).contains("unknown_dataset"));
    }

    #[test]
    fn pair_matches_offline_pipeline() {
        let ctx = test_ctx();
        let q: Vec<(String, String)> = [
            ("left", "boxes"),
            ("i", "1"),
            ("right", "boxes"),
            ("j", "0"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let r = dispatch(&ctx, "GET", "/v1/pair", &q, b"");
        assert_eq!(r.status, 200);
        let gen = ctx.generation();
        let expect = find_relation(gen.datasets[0].arena.object(1), gen.datasets[0].arena.object(0));
        assert!(
            body_str(&r).contains(&format!("\"relation\": \"{}\"", expect.relation)),
            "{}",
            body_str(&r)
        );
    }

    #[test]
    fn pair_out_of_range_404() {
        let ctx = test_ctx();
        let q: Vec<(String, String)> = [
            ("left", "boxes"),
            ("i", "99"),
            ("right", "boxes"),
            ("j", "0"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let r = dispatch(&ctx, "GET", "/v1/pair", &q, b"");
        assert_eq!(r.status, 404);
        assert!(body_str(&r).contains("object_out_of_range"));
    }

    #[test]
    fn join_streams_ndjson_with_summary() {
        let ctx = test_ctx();
        let q: Vec<(String, String)> = [("left", "boxes"), ("right", "boxes")]
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let r = dispatch(&ctx, "POST", "/v1/join", &q, b"");
        assert_eq!(r.status, 200);
        assert!(r.close, "join responses close the connection");
        let body = body_str(&r);
        let last = body.lines().last().expect("summary line");
        assert!(last.starts_with("{\"summary\":"), "{last}");
        assert!(
            body.lines().count() >= 2,
            "self-join must find links: {body}"
        );
    }

    #[test]
    fn join_max_links_caps_and_flags() {
        let ctx = test_ctx();
        let q: Vec<(String, String)> = [("left", "boxes"), ("right", "boxes"), ("max_links", "1")]
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let r = dispatch(&ctx, "POST", "/v1/join", &q, b"");
        assert_eq!(r.status, 200);
        assert!(r.truncated);
        let body = body_str(&r);
        assert_eq!(body.lines().count(), 2, "one link + summary: {body}");
        assert!(body.contains("\"hit_link_cap\":true"), "{body}");
    }

    #[test]
    fn dispatch_target_decodes_query() {
        let ctx = test_ctx();
        let r = dispatch_target(&ctx, "GET", "/v1/pair?left=boxes&i=0&right=boxes&j=0", b"");
        assert_eq!(r.status, 200);
        assert!(body_str(&r).contains("\"equals\""));
    }

    #[test]
    fn discover_buffers_when_not_streaming() {
        let ctx = test_ctx();
        let q = vec![("dataset".to_string(), "boxes".to_string())];
        let body = b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))\nPOLYGON((0 90, 5 90, 5 95, 0 95, 0 90))";
        let r = dispatch(&ctx, "POST", "/v1/discover", &q, body);
        assert_eq!(r.status, 200, "{}", body_str(&r));
        assert_eq!(r.content_type, "application/x-ndjson");
        assert!(r.close, "discover responses close the connection");
        let text = body_str(&r);
        assert!(
            text.lines().last().unwrap().starts_with("{\"summary\":"),
            "{text}"
        );
        assert!(text.contains("\"relation\":\"inside\""), "{text}");
    }

    #[test]
    fn discover_nt_uses_geosparql_properties() {
        let ctx = test_ctx();
        let q = vec![
            ("dataset".to_string(), "boxes".to_string()),
            ("format".to_string(), "nt".to_string()),
            ("name".to_string(), "mine".to_string()),
        ];
        let r = dispatch(
            &ctx,
            "POST",
            "/v1/discover",
            &q,
            b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))",
        );
        assert_eq!(r.status, 200, "{}", body_str(&r));
        assert_eq!(r.content_type, "application/n-triples");
        let text = body_str(&r);
        assert!(text.contains("<urn:stj:mine:0>"), "{text}");
        assert!(text.contains("geosparql#sfWithin"), "{text}");
        assert!(!text.contains("summary"), "{text}");
    }

    #[test]
    fn discover_requires_probes_and_known_dataset() {
        let ctx = test_ctx();
        let q = vec![("dataset".to_string(), "boxes".to_string())];
        assert_eq!(dispatch(&ctx, "POST", "/v1/discover", &q, b"").status, 400);
        let q = vec![("dataset".to_string(), "nope".to_string())];
        let r = dispatch(&ctx, "POST", "/v1/discover", &q, b"POLYGON((0 0,1 0,1 1,0 0))");
        assert_eq!(r.status, 404);
        let q = vec![
            ("dataset".to_string(), "boxes".to_string()),
            ("format".to_string(), "xml".to_string()),
        ];
        let r = dispatch(&ctx, "POST", "/v1/discover", &q, b"POLYGON((0 0,1 0,1 1,0 0))");
        assert_eq!(r.status, 400);
        assert!(body_str(&r).contains("unknown format"), "{}", body_str(&r));
    }

    #[test]
    fn reload_without_paths_is_409_and_counted() {
        let ctx = test_ctx();
        let r = dispatch(&ctx, "POST", "/v1/admin/reload", &[], b"");
        assert_eq!(r.status, 409, "{}", body_str(&r));
        assert!(body_str(&r).contains("reload_unavailable"));
        assert_eq!(ctx.stats.reload_errors.get(), 1);
        // A bogus override path is a load failure, not unavailability.
        let r = dispatch(
            &ctx,
            "POST",
            "/v1/admin/reload",
            &[],
            b"/definitely/not/here.stjd\n",
        );
        assert_eq!(r.status, 500, "{}", body_str(&r));
        assert!(body_str(&r).contains("reload_failed"));
    }
}
