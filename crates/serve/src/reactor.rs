//! The readiness-based serving core: one event-loop thread owning every
//! socket, a fixed worker pool doing only CPU work.
//!
//! The blocking pool ([`crate::pool`]) dedicates a worker thread to a
//! connection for its whole lifetime, so slow clients occupy workers
//! and concurrency is capped at the thread count. The reactor inverts
//! that: the event loop does all socket IO (nonblocking accept, read,
//! write) and all protocol parsing via the per-connection state machine
//! in [`crate::conn`]; workers only ever see fully parsed requests and
//! return fully rendered results. Thousands of connections cost one
//! thread plus a few KiB each.
//!
//! Plumbing, mirroring the no-FFI-crate discipline of
//! `stj-store::Mapping`: a private `sys` module declares the four
//! `epoll` / `eventfd` syscalls straight from the C ABI, Linux-only;
//! every other platform falls back to the blocking pool.
//!
//! - **In**: readable sockets append to the connection's read buffer;
//!   each complete request is pushed onto a *bounded* job queue. A full
//!   queue sheds that request with a keep-alive `429 Retry-After: 1` —
//!   per request, not per connection, written by the event loop itself.
//! - **Out**: workers park results on a completion queue and wake the
//!   event loop via `eventfd`; responses are rendered into the
//!   connection's write buffer and flushed as the socket accepts them.
//! - **Streams**: `/v1/discover` replies are pulled chunk by chunk. The
//!   next chunk's job is enqueued only after the previous chunk fully
//!   reached the socket, so a slow reader applies backpressure and the
//!   server holds at most one chunk per stream. Stream continuations
//!   ride an *unbounded* lane of the job queue — shedding them would
//!   corrupt a response already underway.
//! - **Drain**: on shutdown the loop stops accepting, closes idle
//!   connections, lets dispatched work and write-outs finish (bounded
//!   by [`DRAIN_TIMEOUT`]), then stops the workers.

#[cfg(target_os = "linux")]
use crate::conn::{Conn, ParseStep, Phase};
#[cfg(target_os = "linux")]
use crate::query::Response;
use crate::{ServeCtx, ShutdownFlag};
use std::io;
use std::net::TcpListener;
use std::sync::Arc;

/// Whether this platform has the reactor (Linux epoll); elsewhere
/// `Server::run` uses the blocking pool.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// Serves `listener` until `shutdown`, reactor-style. Errors with
/// `Unsupported` on non-Linux platforms.
#[cfg(not(target_os = "linux"))]
pub fn run(_listener: TcpListener, _ctx: Arc<ServeCtx>, _shutdown: ShutdownFlag) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "reactor requires linux epoll",
    ))
}

#[cfg(target_os = "linux")]
pub use imp::run;

/// Raw syscall surface. Declared directly against the C ABI — the
/// workspace builds offline with no libc crate (the same pattern as
/// `stj-store`'s `mmap` module).
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`. x86-64 packs it to 12 bytes; other
    /// architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::sys;
    use super::*;
    use crate::conn::ParsedRequest;
    use crate::discover::DiscoverStream;
    use crate::query::{self, Reply};
    use crate::ConnState;
    use std::collections::VecDeque;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex};
    use std::time::{Duration, Instant};
    use stj_core::RelateScratch;

    /// Epoll token of the listening socket.
    const TOKEN_LISTENER: u64 = u64::MAX;
    /// Epoll token of the completion-wakeup eventfd.
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    /// How long a drain may wait for in-flight work and write-outs.
    const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

    /// Requests at least this slow get a span line on stderr.
    const SLOW_REQUEST_LOG: Duration = Duration::from_millis(500);

    /// Hard cap on buffered-but-unparsed bytes per connection (pipelined
    /// requests queued behind a dispatched one). Far above any legal
    /// single request; a peer exceeding it is flooding.
    const MAX_BUFFERED_BYTES: usize = 2 * 1024 * 1024;

    /// Slot index + epoch → epoll token (and worker-completion tag).
    fn token_of(idx: usize, epoch: u32) -> u64 {
        (u64::from(epoch) << 32) | idx as u64
    }

    /// RAII epoll instance.
    struct Epoll {
        fd: i32,
    }

    impl Epoll {
        fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: i32, token: u64, events: u32) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events,
                data: token,
            };
            let evp = if op == sys::EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev
            };
            // SAFETY: `evp` points at a live EpollEvent (or is null for
            // DEL, which ignores it); the kernel copies it out before
            // returning.
            if unsafe { sys::epoll_ctl(self.fd, op, fd, evp) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, events)
        }

        fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, events)
        }

        fn del(&self, fd: i32) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits for events; EINTR reports as zero events.
        fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: the buffer outlives the call and its length is
            // passed as maxevents.
            let n = unsafe {
                sys::epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this instance.
            unsafe { sys::close(self.fd) };
        }
    }

    /// The completion wakeup: workers `wake()` after parking a result,
    /// the event loop `drain()`s the counter when the token fires.
    struct EventFd {
        fd: i32,
    }

    impl EventFd {
        fn new() -> io::Result<EventFd> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live u64; eventfd writes
            // are async-signal- and thread-safe.
            unsafe {
                sys::write(self.fd, (&one as *const u64).cast(), 8);
            }
        }

        fn drain(&self) {
            let mut buf = 0u64;
            // SAFETY: reads 8 bytes into a live u64; EFD_NONBLOCK makes
            // the read fail with EAGAIN once the counter is zero.
            unsafe {
                sys::read(self.fd, (&mut buf as *mut u64).cast(), 8);
            }
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this instance.
            unsafe { sys::close(self.fd) };
        }
    }

    // SAFETY: EventFd is just an fd; eventfd read/write are thread-safe.
    unsafe impl Send for EventFd {}
    unsafe impl Sync for EventFd {}

    /// Work for the pool.
    enum Job {
        /// A fresh, fully parsed request (bounded lane — sheddable).
        Request {
            token: u64,
            parsed: ParsedRequest,
            enqueued: Instant,
            trace_id: u64,
        },
        /// The next chunk of an in-flight stream (unbounded lane —
        /// never shed; at most one exists per connection).
        Chunk {
            token: u64,
            stream: DiscoverStream,
            enqueued: Instant,
        },
    }

    /// A finished unit of worker output.
    enum Done {
        Response {
            token: u64,
            resp: Response,
            keep_alive: bool,
        },
        /// Stream start: rendered head + first chunk; `stream` is
        /// `None` when that chunk was also the last.
        StreamHead {
            token: u64,
            head: Vec<u8>,
            chunk: Vec<u8>,
            stream: Option<DiscoverStream>,
        },
        StreamChunk {
            token: u64,
            chunk: Vec<u8>,
            stream: Option<DiscoverStream>,
        },
    }

    /// Two-lane job queue: bounded fresh requests, unbounded stream
    /// continuations. Continuations pop first — finishing a response in
    /// flight beats starting a new one.
    struct JobQueue {
        state: Mutex<Lanes>,
        ready: Condvar,
        depth: usize,
        stopped: AtomicBool,
    }

    #[derive(Default)]
    struct Lanes {
        fresh: VecDeque<Job>,
        cont: VecDeque<Job>,
    }

    impl JobQueue {
        fn new(depth: usize) -> JobQueue {
            JobQueue {
                state: Mutex::new(Lanes::default()),
                ready: Condvar::new(),
                depth: depth.max(1),
                stopped: AtomicBool::new(false),
            }
        }

        /// Queues a fresh request; hands it back when the lane is full
        /// so the caller can shed it.
        fn push_fresh(&self, job: Job, stats: &crate::ServeStats) -> Result<(), Job> {
            let mut q = self.state.lock().expect("job queue lock");
            if q.fresh.len() >= self.depth {
                return Err(job);
            }
            q.fresh.push_back(job);
            stats.queue_depth.set(q.fresh.len() as u64);
            drop(q);
            self.ready.notify_one();
            Ok(())
        }

        fn push_cont(&self, job: Job) {
            self.state
                .lock()
                .expect("job queue lock")
                .cont
                .push_back(job);
            self.ready.notify_one();
        }

        /// Blocks for the next job; `None` once stopped and empty.
        fn pop(&self, stats: &crate::ServeStats) -> Option<Job> {
            let mut q = self.state.lock().expect("job queue lock");
            loop {
                if let Some(job) = q.cont.pop_front() {
                    return Some(job);
                }
                if let Some(job) = q.fresh.pop_front() {
                    stats.queue_depth.set(q.fresh.len() as u64);
                    return Some(job);
                }
                if self.stopped.load(Ordering::SeqCst) {
                    return None;
                }
                let (guard, _) = self
                    .ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("job queue lock");
                q = guard;
            }
        }

        fn stop(&self) {
            self.stopped.store(true, Ordering::SeqCst);
            self.ready.notify_all();
        }
    }

    /// Worker → event loop results, with the eventfd wakeup attached.
    struct DoneQueue {
        q: Mutex<VecDeque<Done>>,
        waker: Arc<EventFd>,
    }

    impl DoneQueue {
        fn push(&self, d: Done) {
            self.q.lock().expect("done queue lock").push_back(d);
            self.waker.wake();
        }

        fn drain_into(&self, out: &mut Vec<Done>) {
            let mut q = self.q.lock().expect("done queue lock");
            out.extend(q.drain(..));
        }
    }

    /// One worker: pops parsed requests, runs handlers with its own
    /// scratch arena, parks results. Never touches a socket.
    fn worker_loop(ctx: &ServeCtx, jobs: &JobQueue, done: &DoneQueue) {
        let mut scratch = RelateScratch::default();
        while let Some(job) = jobs.pop(&ctx.stats) {
            let d = match job {
                Job::Request {
                    token,
                    parsed,
                    enqueued,
                    trace_id,
                } => run_request(ctx, token, parsed, enqueued, trace_id, &mut scratch),
                Job::Chunk {
                    token,
                    mut stream,
                    enqueued,
                } => {
                    ctx.stats
                        .state_latency(ConnState::Queue)
                        .record(enqueued.elapsed().as_nanos() as u64);
                    let start = Instant::now();
                    let chunk = stream.next_chunk(ctx, &mut scratch).unwrap_or_default();
                    ctx.stats
                        .state_latency(ConnState::Exec)
                        .record(start.elapsed().as_nanos() as u64);
                    let more = (!stream.is_finished()).then_some(stream);
                    Done::StreamChunk {
                        token,
                        chunk,
                        stream: more,
                    }
                }
            };
            done.push(d);
        }
    }

    fn run_request(
        ctx: &ServeCtx,
        token: u64,
        parsed: ParsedRequest,
        enqueued: Instant,
        trace_id: u64,
        scratch: &mut RelateScratch,
    ) -> Done {
        ctx.stats
            .state_latency(ConnState::Queue)
            .record(enqueued.elapsed().as_nanos() as u64);
        ctx.stats.in_flight.inc();
        let keep_alive_req = parsed.keep_alive();
        let start = Instant::now();
        let (endpoint, reply) = match parsed {
            ParsedRequest::Http(req) => {
                let endpoint = query::endpoint_of(&req.path);
                let reply =
                    query::dispatch_reply(ctx, &req.method, &req.path, &req.query, &req.body, scratch);
                (endpoint, reply)
            }
            ParsedRequest::Framed(req) => {
                let endpoint = query::endpoint_of(req.target.split('?').next().unwrap_or(""));
                let reply = match query::parse_target(&req.target) {
                    Ok((path, q)) => {
                        query::dispatch_reply(ctx, &req.method, &path, &q, &req.body, scratch)
                    }
                    Err(resp) => Reply::Full(resp),
                };
                // Framing has no streamed responses; buffer them whole.
                (endpoint, Reply::Full(reply.into_response(ctx, scratch)))
            }
        };
        let elapsed = start.elapsed();
        ctx.stats
            .latency(endpoint)
            .record(elapsed.as_nanos() as u64);
        ctx.stats
            .state_latency(ConnState::Exec)
            .record(elapsed.as_nanos() as u64);
        ctx.stats.in_flight.dec();
        if elapsed >= SLOW_REQUEST_LOG {
            ctx.stats.slow_requests.inc();
            eprintln!(
                "stj-serve: slow request trace_id={trace_id} endpoint={} dur_ms={:.1}",
                endpoint.name(),
                elapsed.as_secs_f64() * 1e3,
            );
        }
        match reply {
            Reply::Full(resp) => {
                ctx.stats.note_status(resp.status);
                if resp.truncated {
                    ctx.stats.truncated_responses.inc();
                }
                let keep_alive = keep_alive_req && !resp.close;
                Done::Response {
                    token,
                    resp,
                    keep_alive,
                }
            }
            Reply::Stream(mut s) => {
                ctx.stats.note_status(200);
                let id = trace_id.to_string();
                let head =
                    crate::http::streaming_head(200, s.content_type(), &[("x-stj-trace-id", &id)]);
                let chunk = s.next_chunk(ctx, scratch).unwrap_or_default();
                let more = (!s.is_finished()).then_some(s);
                Done::StreamHead {
                    token,
                    head,
                    chunk,
                    stream: more,
                }
            }
        }
    }

    /// Why a connection hit a deadline.
    enum TimeoutCause {
        Idle,
        Header,
    }

    /// The event loop's owned state: connection slab plus shared
    /// handles.
    struct Loop<'a> {
        epoll: &'a Epoll,
        ctx: &'a ServeCtx,
        jobs: &'a JobQueue,
        shutdown: &'a ShutdownFlag,
        slots: Vec<Option<Conn>>,
        free: Vec<usize>,
        next_epoch: u32,
        draining: bool,
    }

    impl Loop<'_> {
        /// Resolves a token to a live slot, rejecting stale epochs.
        fn index_of(&self, token: u64) -> Option<usize> {
            let idx = (token & 0xFFFF_FFFF) as usize;
            let epoch = (token >> 32) as u32;
            match self.slots.get(idx) {
                Some(Some(c)) if c.epoch == epoch => Some(idx),
                _ => None,
            }
        }

        fn accept_all(&mut self, listener: &TcpListener) {
            loop {
                match listener.accept() {
                    Ok((sock, _peer)) => {
                        let _ = sock.set_nonblocking(true);
                        let _ = sock.set_nodelay(true);
                        self.ctx.stats.connections.inc();
                        self.next_epoch = self.next_epoch.wrapping_add(1).max(1);
                        let epoch = self.next_epoch;
                        let idx = self.free.pop().unwrap_or_else(|| {
                            self.slots.push(None);
                            self.slots.len() - 1
                        });
                        let conn = Conn::new(sock, epoch);
                        let fd = conn.sock.as_raw_fd();
                        if self.epoll.add(fd, token_of(idx, epoch), sys::EPOLLIN).is_err() {
                            self.free.push(idx);
                            continue;
                        }
                        self.ctx.stats.open_connections.inc();
                        self.slots[idx] = Some(conn);
                        self.slots[idx].as_mut().expect("just stored").interest = sys::EPOLLIN;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        fn close(&mut self, idx: usize) {
            if let Some(conn) = self.slots[idx].take() {
                let _ = self.epoll.del(conn.sock.as_raw_fd());
                self.ctx.stats.open_connections.dec();
                let backlog = conn.backlog();
                if backlog > 0 {
                    self.ctx.stats.write_backlog_bytes.sub(backlog as u64);
                }
                self.free.push(idx);
                // Dropping the Conn closes the socket and releases any
                // paused stream (and its pinned generation).
            }
        }

        /// Re-registers the socket's epoll interest if it changed.
        fn want(&mut self, idx: usize, mask: u32) {
            let Some(conn) = self.slots[idx].as_mut() else {
                return;
            };
            if conn.interest == mask {
                return;
            }
            let token = token_of(idx, conn.epoch);
            let fd = conn.sock.as_raw_fd();
            conn.interest = mask;
            if self.epoll.modify(fd, token, mask).is_err() {
                self.close(idx);
            }
        }

        fn on_readable(&mut self, idx: usize) {
            let mut buf = [0u8; 16 * 1024];
            loop {
                let Some(conn) = self.slots[idx].as_mut() else {
                    return;
                };
                match conn.sock.read(&mut buf) {
                    Ok(0) => {
                        self.close(idx);
                        return;
                    }
                    Ok(n) => {
                        let now = Instant::now();
                        conn.last_activity = now;
                        if conn.phase == Phase::Reading && conn.head_started.is_none() {
                            conn.head_started = Some(now);
                        }
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        if conn.rbuf.len() > MAX_BUFFERED_BYTES {
                            self.close(idx);
                            return;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            self.try_dispatch(idx);
        }

        /// Parses and dispatches the next buffered request, if the
        /// connection is ready for one. At most one request per
        /// connection is in flight; pipelined followers wait in the
        /// read buffer until the response flushes.
        fn try_dispatch(&mut self, idx: usize) {
            let (step, keep_alive_hint) = {
                let Some(conn) = self.slots[idx].as_mut() else {
                    return;
                };
                if conn.phase != Phase::Reading {
                    return;
                }
                let step = conn.try_parse();
                let hint = match &step {
                    ParseStep::Request(p, _) => p.keep_alive(),
                    _ => false,
                };
                (step, hint)
            };
            match step {
                ParseStep::NeedMore => {}
                ParseStep::Error(resp) => {
                    self.ctx.stats.note_status(resp.status);
                    self.enqueue_and_flush(idx, &resp, false);
                }
                ParseStep::Request(parsed, consumed) => {
                    let stats = &self.ctx.stats;
                    stats.requests_total.inc();
                    match &parsed {
                        ParsedRequest::Http(_) => stats.requests_http.inc(),
                        ParsedRequest::Framed(_) => stats.requests_framed.inc(),
                    }
                    stats.bytes_in.add(consumed as u64);
                    let trace_id = stats.trace_seq.next();
                    let token = {
                        let conn = self.slots[idx].as_mut().expect("checked above");
                        if let Some(hs) = conn.head_started.take() {
                            stats
                                .state_latency(ConnState::Read)
                                .record(hs.elapsed().as_nanos() as u64);
                        }
                        conn.trace_id = trace_id;
                        token_of(idx, conn.epoch)
                    };
                    let job = Job::Request {
                        token,
                        parsed,
                        enqueued: Instant::now(),
                        trace_id,
                    };
                    match self.jobs.push_fresh(job, stats) {
                        Ok(()) => {
                            let conn = self.slots[idx].as_mut().expect("checked above");
                            conn.phase = Phase::Dispatched;
                            // Interest stays readable so a peer close is
                            // noticed; new bytes just buffer.
                        }
                        Err(_job) => {
                            // Queue full: shed THIS request, keep the
                            // connection (clients retry after 1s).
                            stats.rejected_429.inc();
                            let resp = Response::error(
                                429,
                                "overloaded",
                                "job queue full, retry later",
                            );
                            self.enqueue_and_flush(idx, &resp, keep_alive_hint);
                        }
                    }
                }
            }
        }

        /// Renders a reactor-originated response (sheds, parse errors)
        /// and starts flushing it.
        fn enqueue_and_flush(&mut self, idx: usize, resp: &Response, keep_alive: bool) {
            let Some(conn) = self.slots[idx].as_mut() else {
                return;
            };
            let before = conn.backlog();
            conn.enqueue_response(resp, keep_alive);
            let added = conn.backlog() - before;
            self.ctx.stats.write_backlog_bytes.add(added as u64);
            self.want(idx, sys::EPOLLIN | sys::EPOLLOUT);
            self.flush(idx);
        }

        fn flush(&mut self, idx: usize) {
            loop {
                let Some(conn) = self.slots[idx].as_mut() else {
                    return;
                };
                if conn.wpos >= conn.wbuf.len() {
                    break;
                }
                match conn.sock.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        self.close(idx);
                        return;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.last_activity = Instant::now();
                        self.ctx.stats.bytes_out.add(n as u64);
                        self.ctx.stats.write_backlog_bytes.sub(n as u64);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.want(idx, sys::EPOLLIN | sys::EPOLLOUT);
                        return;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            self.after_flush(idx);
        }

        /// The write buffer just drained: recycle, continue the stream,
        /// or close.
        fn after_flush(&mut self, idx: usize) {
            let (streaming, token) = {
                let Some(conn) = self.slots[idx].as_mut() else {
                    return;
                };
                conn.wbuf.clear();
                conn.wpos = 0;
                if let Some(ws) = conn.write_started.take() {
                    self.ctx
                        .stats
                        .state_latency(ConnState::Write)
                        .record(ws.elapsed().as_nanos() as u64);
                }
                (conn.streaming, token_of(idx, conn.epoch))
            };
            if streaming {
                let pending = self
                    .slots[idx]
                    .as_mut()
                    .and_then(|c| c.pending_stream.take());
                match pending {
                    Some(stream) => {
                        // Backpressure point: only now that the previous
                        // chunk fully reached the socket does the next
                        // one get produced.
                        if let Some(conn) = self.slots[idx].as_mut() {
                            conn.phase = Phase::Dispatched;
                        }
                        self.want(idx, sys::EPOLLIN);
                        self.jobs.push_cont(Job::Chunk {
                            token,
                            stream,
                            enqueued: Instant::now(),
                        });
                    }
                    None => self.close(idx),
                }
                return;
            }
            let close = {
                let Some(conn) = self.slots[idx].as_mut() else {
                    return;
                };
                conn.close_after_write || self.shutdown.requested()
            };
            if close {
                self.close(idx);
                return;
            }
            {
                let conn = self.slots[idx].as_mut().expect("checked above");
                conn.phase = Phase::Reading;
                conn.trace_id = 0;
                // Pipelined bytes already buffered count as a started
                // request head for the slow-loris deadline.
                conn.head_started = (!conn.rbuf.is_empty()).then(Instant::now);
            }
            self.want(idx, sys::EPOLLIN);
            // Level-triggered epoll will not re-fire for bytes already
            // in our buffer — re-parse leftovers now.
            self.try_dispatch(idx);
        }

        fn apply_done(&mut self, d: Done) {
            match d {
                Done::Response {
                    token,
                    resp,
                    keep_alive,
                } => {
                    let Some(idx) = self.index_of(token) else {
                        return; // connection died while the job ran
                    };
                    let keep = keep_alive && !self.shutdown.requested();
                    self.enqueue_and_flush(idx, &resp, keep);
                }
                Done::StreamHead {
                    token,
                    head,
                    chunk,
                    stream,
                } => {
                    let Some(idx) = self.index_of(token) else {
                        return;
                    };
                    let added = {
                        let conn = self.slots[idx].as_mut().expect("index_of checked");
                        conn.streaming = true;
                        conn.close_after_write = true;
                        conn.pending_stream = stream;
                        conn.phase = Phase::Writing;
                        conn.write_started = Some(Instant::now());
                        conn.wbuf.extend_from_slice(&head);
                        conn.wbuf.extend_from_slice(&chunk);
                        (head.len() + chunk.len()) as u64
                    };
                    self.ctx.stats.write_backlog_bytes.add(added);
                    self.want(idx, sys::EPOLLIN | sys::EPOLLOUT);
                    self.flush(idx);
                }
                Done::StreamChunk {
                    token,
                    chunk,
                    stream,
                } => {
                    let Some(idx) = self.index_of(token) else {
                        return;
                    };
                    let added = {
                        let conn = self.slots[idx].as_mut().expect("index_of checked");
                        conn.pending_stream = stream;
                        conn.phase = Phase::Writing;
                        conn.write_started = Some(Instant::now());
                        conn.wbuf.extend_from_slice(&chunk);
                        chunk.len() as u64
                    };
                    self.ctx.stats.write_backlog_bytes.add(added);
                    self.want(idx, sys::EPOLLIN | sys::EPOLLOUT);
                    self.flush(idx);
                }
            }
        }

        /// Enforces the idle and header (slow-loris) deadlines.
        fn check_deadlines(&mut self) {
            let idle = self.ctx.config.idle_deadline();
            let header = self.ctx.config.header_deadline();
            let now = Instant::now();
            for idx in 0..self.slots.len() {
                let Some(conn) = self.slots[idx].as_ref() else {
                    continue;
                };
                let cause = match conn.phase {
                    Phase::Reading => match conn.head_started {
                        // Wall-clock from first head byte: activity does
                        // NOT reset it — that is exactly the attack.
                        Some(hs) if now.duration_since(hs) >= header => {
                            Some(TimeoutCause::Header)
                        }
                        Some(_) => None,
                        None if now.duration_since(conn.last_activity) >= idle => {
                            Some(TimeoutCause::Idle)
                        }
                        None => None,
                    },
                    // A stalled writer (including a slow stream reader)
                    // is bounded by write progress.
                    Phase::Writing
                        if now.duration_since(conn.last_activity) >= idle =>
                    {
                        Some(TimeoutCause::Idle)
                    }
                    // Dispatched work is bounded by the handler
                    // deadline; the queue is bounded by depth.
                    _ => None,
                };
                match cause {
                    Some(TimeoutCause::Header) => {
                        self.ctx.stats.header_timeouts.inc();
                        self.close(idx);
                    }
                    Some(TimeoutCause::Idle) => {
                        self.ctx.stats.idle_timeouts.inc();
                        self.close(idx);
                    }
                    None => {}
                }
            }
        }

        /// Shutdown observed: stop accepting, drop connections with no
        /// response in progress.
        fn begin_drain(&mut self, listener: &TcpListener) {
            self.draining = true;
            let _ = self.epoll.del(listener.as_raw_fd());
            for idx in 0..self.slots.len() {
                let drop_it = matches!(
                    self.slots[idx].as_ref(),
                    Some(c) if c.phase == Phase::Reading
                );
                if drop_it {
                    self.close(idx);
                }
            }
        }

        fn open_count(&self) -> usize {
            self.slots.iter().filter(|s| s.is_some()).count()
        }
    }

    /// The reactor entry point: spawns the worker pool and runs the
    /// event loop on the calling thread until shutdown + drain.
    pub fn run(listener: TcpListener, ctx: Arc<ServeCtx>, shutdown: ShutdownFlag) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let waker = Arc::new(EventFd::new()?);
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;
        epoll.add(waker.fd, TOKEN_WAKE, sys::EPOLLIN)?;
        let jobs = JobQueue::new(ctx.config.queue_depth);
        let done = DoneQueue {
            q: Mutex::new(VecDeque::new()),
            waker: Arc::clone(&waker),
        };
        let threads = ctx.config.effective_threads();

        std::thread::scope(|scope| -> io::Result<()> {
            for w in 0..threads {
                let ctx = &*ctx;
                let jobs = &jobs;
                let done = &done;
                std::thread::Builder::new()
                    .name(format!("stj-serve-{w}"))
                    .spawn_scoped(scope, move || worker_loop(ctx, jobs, done))
                    .expect("spawn worker");
            }

            let mut lp = Loop {
                epoll: &epoll,
                ctx: &ctx,
                jobs: &jobs,
                shutdown: &shutdown,
                slots: Vec::new(),
                free: Vec::new(),
                next_epoch: 0,
                draining: false,
            };
            let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
            let mut completions: Vec<Done> = Vec::new();
            let mut drain_deadline: Option<Instant> = None;

            let result = loop {
                if !lp.draining && shutdown.requested() {
                    lp.begin_drain(&listener);
                    drain_deadline = Some(Instant::now() + DRAIN_TIMEOUT);
                }
                if lp.draining {
                    if lp.open_count() == 0 {
                        break Ok(());
                    }
                    if drain_deadline.is_some_and(|d| Instant::now() >= d) {
                        for idx in 0..lp.slots.len() {
                            lp.close(idx);
                        }
                        break Ok(());
                    }
                }
                if crate::pool::sighup_requested() {
                    // Reload on a throwaway thread: loading can take
                    // seconds and must not stall the event loop.
                    let ctx = Arc::clone(&ctx);
                    std::thread::spawn(move || {
                        if let Err(e) = ctx.reload(None) {
                            eprintln!("stj-serve: SIGHUP reload failed: {e}");
                        }
                    });
                }

                let n = match epoll.wait(&mut events, 100) {
                    Ok(n) => n,
                    Err(e) => break Err(e),
                };
                for i in 0..n {
                    let ev = events[i];
                    let token = ev.data;
                    let mask = ev.events;
                    match token {
                        TOKEN_WAKE => waker.drain(),
                        TOKEN_LISTENER => {
                            if !lp.draining {
                                lp.accept_all(&listener);
                            }
                        }
                        _ => {
                            let Some(idx) = lp.index_of(token) else {
                                continue;
                            };
                            if mask & sys::EPOLLERR != 0 {
                                lp.close(idx);
                                continue;
                            }
                            if mask & (sys::EPOLLIN | sys::EPOLLHUP) != 0 {
                                lp.on_readable(idx);
                            }
                            if mask & sys::EPOLLOUT != 0 && lp.index_of(token).is_some() {
                                lp.flush(idx);
                            }
                        }
                    }
                }
                done.drain_into(&mut completions);
                for d in completions.drain(..) {
                    lp.apply_done(d);
                }
                lp.check_deadlines();
            };

            jobs.stop();
            result
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::{LoadedDataset, ServeConfig};
        use stj_geom::{Polygon, Rect};
        use stj_index::Tiling;
        use stj_raster::Grid;

        fn test_ctx(config: ServeConfig) -> ServeCtx {
            let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8);
            let polys = vec![
                Polygon::rect(Rect::from_coords(10.0, 10.0, 40.0, 40.0)),
                Polygon::rect(Rect::from_coords(20.0, 20.0, 30.0, 30.0)),
            ];
            let arena = stj_core::Dataset::build("boxes", polys, &grid).to_arena();
            let tiling = Tiling::for_probes(arena.mbrs());
            let loaded = LoadedDataset {
                name: "boxes".to_string(),
                arena,
                grid,
                tiling,
            };
            ServeCtx::new(config, vec![loaded])
        }

        #[test]
        fn reactor_serves_http_and_framed_then_drains() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let config = ServeConfig {
                addr: addr.to_string(),
                threads: 2,
                ..ServeConfig::default()
            };
            let ctx = Arc::new(test_ctx(config));
            let shutdown = ShutdownFlag::new();
            let handle = {
                let ctx = Arc::clone(&ctx);
                let shutdown = shutdown.clone();
                std::thread::spawn(move || run(listener, ctx, shutdown))
            };

            let mut http = crate::Client::new(addr.to_string(), false);
            let (status, body) = http.request("GET", "/healthz", b"").expect("healthz");
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            // Keep-alive: a second request on the same connection.
            let (status, _) = http.request("GET", "/v1/datasets", b"").expect("datasets");
            assert_eq!(status, 200);

            let mut framed = crate::Client::new(addr.to_string(), true);
            let (status, body) = framed
                .request("POST", "/v1/relate?dataset=boxes", b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))")
                .expect("relate");
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            assert!(String::from_utf8_lossy(&body).contains("inside"));

            // Streaming discover over HTTP (close-delimited body).
            let (status, body) = http
                .request(
                    "POST",
                    "/v1/discover?dataset=boxes",
                    b"POLYGON((22 22, 28 22, 28 28, 22 28, 22 22))",
                )
                .expect("discover");
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            let text = String::from_utf8_lossy(&body);
            assert!(text.contains("\"summary\""), "{text}");

            shutdown.trigger();
            handle.join().expect("join").expect("run ok");
            assert_eq!(ctx.stats.open_connections.get(), 0);
        }
    }
}
