//! A sharded LRU cache for rendered probe results.
//!
//! `relate` probes are the service's hot path and frequently repeat
//! (map tiles, dashboards, retries), so the fully rendered response
//! body is cached keyed by `(dataset, probe WKT, limit)`. Sharding by
//! key hash keeps the lock a short critical section under concurrent
//! workers; each shard runs an independent LRU over its byte budget.
//!
//! Keys are FNV-1a hashes, but the full key material is stored and
//! compared on lookup — a hash collision must degrade to a miss, never
//! to a wrong answer.

use crate::stats::fnv1a;
use std::collections::HashMap;
use std::sync::Mutex;
use stj_obs::{Counter, Json};

const SHARDS: usize = 8;

/// Cache key material: dataset generation and index, result limit,
/// probe WKT bytes.
///
/// The generation id makes hot-swap safe against in-flight inserts: a
/// request that started on the old generation and finishes after the
/// swap inserts under the old id, which no new lookup ever asks for
/// (the swap also calls [`ProbeCache::clear`], but that alone would
/// lose the race).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeKey {
    pub generation: u64,
    pub dataset: u32,
    pub limit: u64,
    pub wkt: Vec<u8>,
}

impl ProbeKey {
    fn hash(&self) -> u64 {
        let mut h = fnv1a(&self.generation.to_le_bytes(), 0xcbf2_9ce4_8422_2325);
        h = fnv1a(&self.dataset.to_le_bytes(), h);
        h = fnv1a(&self.limit.to_le_bytes(), h);
        fnv1a(&self.wkt, h)
    }

    fn weight(&self) -> usize {
        self.wkt.len() + 64
    }
}

struct Entry {
    key: ProbeKey,
    body: Vec<u8>,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    bytes: usize,
    clock: u64,
}

impl Shard {
    fn evict_to(&mut self, budget: usize, evictions: &Counter) {
        while self.bytes > budget {
            let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            let e = self.map.remove(&oldest).expect("entry just found");
            self.bytes -= e.key.weight() + e.body.len();
            evictions.inc();
        }
    }
}

/// The sharded LRU. All methods are `&self`; internal mutation is
/// per-shard mutexes.
pub struct ProbeCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    /// Lookups that returned a body.
    pub hits: Counter,
    /// Lookups that found nothing (or a colliding key).
    pub misses: Counter,
    /// Entries inserted.
    pub insertions: Counter,
    /// Entries evicted to stay under budget.
    pub evictions: Counter,
    /// Whole-cache invalidations (dataset hot-swaps).
    pub invalidations: Counter,
}

impl ProbeCache {
    /// A cache bounded by `budget_mb` mebibytes across all shards.
    /// `budget_mb == 0` disables caching (every lookup misses, inserts
    /// are dropped).
    pub fn new(budget_mb: usize) -> ProbeCache {
        ProbeCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_mb * 1024 * 1024 / SHARDS,
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
            invalidations: Counter::new(),
        }
    }

    /// Drops every entry (dataset hot-swap): stale bodies keyed to the
    /// old generation would otherwise sit in the budget until evicted.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard lock");
            s.map.clear();
            s.bytes = 0;
        }
        self.invalidations.inc();
    }

    fn shard_of(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % SHARDS as u64) as usize]
    }

    /// The cached body for `key`, bumping its recency.
    pub fn get(&self, key: &ProbeKey) -> Option<Vec<u8>> {
        let hash = key.hash();
        let mut shard = self.shard_of(hash).lock().expect("cache shard lock");
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(&hash) {
            Some(e) if e.key == *key => {
                e.stamp = stamp;
                self.hits.inc();
                Some(e.body.clone())
            }
            _ => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or replaces) the body for `key`, evicting
    /// least-recently-used entries to stay under budget.
    pub fn put(&self, key: ProbeKey, body: Vec<u8>) {
        let weight = key.weight() + body.len();
        if weight > self.shard_budget {
            return; // would evict the whole shard for one entry
        }
        let hash = key.hash();
        let mut shard = self.shard_of(hash).lock().expect("cache shard lock");
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(old) = shard.map.remove(&hash) {
            shard.bytes -= old.key.weight() + old.body.len();
        }
        shard.map.insert(hash, Entry { key, body, stamp });
        shard.bytes += weight;
        self.insertions.inc();
        let budget = self.shard_budget;
        shard.evict_to(budget, &self.evictions);
    }

    /// Total bytes currently held across shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").bytes)
            .sum()
    }

    /// Entry count across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stats snapshot for `/stats`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("insertions", self.insertions.to_json()),
            ("evictions", self.evictions.to_json()),
            ("invalidations", self.invalidations.to_json()),
            ("entries", Json::U64(self.len() as u64)),
            ("bytes", Json::U64(self.bytes() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ds: u32, wkt: &str) -> ProbeKey {
        ProbeKey {
            generation: 1,
            dataset: ds,
            limit: 100,
            wkt: wkt.as_bytes().to_vec(),
        }
    }

    #[test]
    fn get_after_put_hits() {
        let c = ProbeCache::new(1);
        assert_eq!(c.get(&key(0, "POLYGON((0 0,1 0,1 1,0 0))")), None);
        c.put(key(0, "POLYGON((0 0,1 0,1 1,0 0))"), b"{\"x\":1}".to_vec());
        assert_eq!(
            c.get(&key(0, "POLYGON((0 0,1 0,1 1,0 0))")),
            Some(b"{\"x\":1}".to_vec())
        );
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
    }

    #[test]
    fn distinct_limits_are_distinct_entries() {
        let c = ProbeCache::new(1);
        let mut a = key(0, "P");
        a.limit = 1;
        let mut b = key(0, "P");
        b.limit = 2;
        c.put(a.clone(), b"one".to_vec());
        c.put(b.clone(), b"two".to_vec());
        assert_eq!(c.get(&a), Some(b"one".to_vec()));
        assert_eq!(c.get(&b), Some(b"two".to_vec()));
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let c = ProbeCache::new(1); // 128 KiB per shard
        let body = vec![0u8; 40 * 1024];
        // All keys map to some shard; insert enough to overflow every
        // shard several times.
        for i in 0..64u32 {
            c.put(key(i, "probe"), body.clone());
        }
        assert!(c.evictions.get() > 0, "evictions must have occurred");
        assert!(c.bytes() <= 1024 * 1024, "stays under total budget");
    }

    #[test]
    fn distinct_generations_are_distinct_entries() {
        let c = ProbeCache::new(1);
        let mut a = key(0, "P");
        a.generation = 1;
        let mut b = key(0, "P");
        b.generation = 2;
        c.put(a.clone(), b"gen1".to_vec());
        assert_eq!(c.get(&b), None, "new generation must not see old body");
        c.put(b.clone(), b"gen2".to_vec());
        assert_eq!(c.get(&a), Some(b"gen1".to_vec()));
        assert_eq!(c.get(&b), Some(b"gen2".to_vec()));
    }

    #[test]
    fn clear_empties_and_counts_invalidation() {
        let c = ProbeCache::new(1);
        c.put(key(0, "probe"), b"body".to_vec());
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.invalidations.get(), 1);
        assert_eq!(c.get(&key(0, "probe")), None);
        // The cache still accepts fresh entries after a clear.
        c.put(key(0, "probe"), b"body2".to_vec());
        assert_eq!(c.get(&key(0, "probe")), Some(b"body2".to_vec()));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = ProbeCache::new(0);
        c.put(key(0, "probe"), b"body".to_vec());
        assert_eq!(c.get(&key(0, "probe")), None);
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = ProbeCache::new(1);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let k = key(t * 1000 + i % 10, "probe");
                        if c.get(&k).is_none() {
                            c.put(k, vec![t as u8; 256]);
                        }
                    }
                });
            }
        });
        assert!(c.hits.get() + c.misses.get() >= 800);
    }
}
