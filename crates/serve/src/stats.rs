//! Service-level metrics and the `/stats` report.
//!
//! Every request updates a shared [`ServeStats`] (built from the
//! `stj-obs` service primitives); `/stats` renders a point-in-time
//! snapshot as a versioned `stj-serve-report/v1` JSON document, the
//! serving-side sibling of `stj-join-report/v1` and `stj-bench/v1`.

use std::time::Instant;
use stj_obs::{Counter, Gauge, Json, SharedHistogram};

/// FNV-1a over `bytes`, continuing from `seed` (pass the FNV offset
/// basis `0xcbf29ce484222325` to start a fresh hash).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which endpoint family a request hit, for per-endpoint latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    Relate,
    Pair,
    Join,
    Stats,
    Other,
}

impl Endpoint {
    /// All families, for label enumeration.
    pub const ALL: [Endpoint; 5] = [
        Endpoint::Relate,
        Endpoint::Pair,
        Endpoint::Join,
        Endpoint::Stats,
        Endpoint::Other,
    ];

    /// Stable label used in `/stats`, `/metrics` and slow-request logs.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Relate => "relate",
            Endpoint::Pair => "pair",
            Endpoint::Join => "join",
            Endpoint::Stats => "stats",
            Endpoint::Other => "other",
        }
    }
}

/// All service metrics. One instance per server, shared by workers.
#[derive(Default)]
pub struct ServeStats {
    /// Requests fully read and dispatched.
    pub requests_total: Counter,
    /// ... of which arrived over HTTP.
    pub requests_http: Counter,
    /// ... of which arrived over binary framing.
    pub requests_framed: Counter,
    /// 2xx responses.
    pub responses_ok: Counter,
    /// 4xx responses (excluding load-shed 429s).
    pub responses_client_error: Counter,
    /// 5xx responses.
    pub responses_server_error: Counter,
    /// Connections shed with 429 because the accept queue was full.
    pub rejected_429: Counter,
    /// Responses carrying a `truncated: true` flag (deadline or cap).
    pub truncated_responses: Counter,
    /// Requests slower than the slow-request log threshold.
    pub slow_requests: Counter,
    /// Trace-id sequence; every dispatched request draws the next id.
    pub trace_seq: Counter,
    /// Request bytes read (approximate: head + body as parsed).
    pub bytes_in: Counter,
    /// Response bytes written.
    pub bytes_out: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Accept-queue depth (with high-water mark).
    pub queue_depth: Gauge,
    /// Requests currently being processed.
    pub in_flight: Gauge,
    /// Per-endpoint request latency, nanoseconds.
    pub lat_relate: SharedHistogram,
    pub lat_pair: SharedHistogram,
    pub lat_join: SharedHistogram,
    pub lat_stats: SharedHistogram,
    pub lat_other: SharedHistogram,
}

impl ServeStats {
    /// A zeroed stats block.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// The latency histogram for `endpoint`.
    pub fn latency(&self, endpoint: Endpoint) -> &SharedHistogram {
        match endpoint {
            Endpoint::Relate => &self.lat_relate,
            Endpoint::Pair => &self.lat_pair,
            Endpoint::Join => &self.lat_join,
            Endpoint::Stats => &self.lat_stats,
            Endpoint::Other => &self.lat_other,
        }
    }

    /// Records the response status against the right counter.
    pub fn note_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_ok.inc(),
            400..=499 => self.responses_client_error.inc(),
            _ => self.responses_server_error.inc(),
        }
    }

    /// Renders the `stj-serve-report/v1` document.
    ///
    /// `datasets` is `(name, objects, zero_copy, backing)` per loaded
    /// dataset — `backing` is the arena's storage kind (`"columns"`,
    /// `"owned"`, or `"mapped"`); `cache` is the cache's own JSON
    /// block; `adaptive` is the resident adaptive model's decision
    /// trace.
    pub fn render(
        &self,
        started: Instant,
        datasets: &[(String, usize, bool, &'static str)],
        cache: Json,
        config: Json,
        adaptive: Json,
    ) -> Json {
        let mut ds = Json::Arr(Vec::new());
        if let Json::Arr(items) = &mut ds {
            for (name, objects, zero_copy, backing) in datasets {
                items.push(Json::object([
                    ("name", Json::str(name.clone())),
                    ("objects", Json::U64(*objects as u64)),
                    ("zero_copy", Json::Bool(*zero_copy)),
                    ("backing", Json::str(*backing)),
                ]));
            }
        }
        Json::object([
            ("schema", Json::str("stj-serve-report/v1")),
            ("uptime_ms", Json::U64(started.elapsed().as_millis() as u64)),
            ("config", config),
            ("datasets", ds),
            (
                "requests",
                Json::object([
                    ("total", self.requests_total.to_json()),
                    ("http", self.requests_http.to_json()),
                    ("framed", self.requests_framed.to_json()),
                    ("ok", self.responses_ok.to_json()),
                    ("client_error", self.responses_client_error.to_json()),
                    ("server_error", self.responses_server_error.to_json()),
                    ("rejected_429", self.rejected_429.to_json()),
                    ("truncated", self.truncated_responses.to_json()),
                    ("slow", self.slow_requests.to_json()),
                ]),
            ),
            (
                "transport",
                Json::object([
                    ("connections", self.connections.to_json()),
                    ("bytes_in", self.bytes_in.to_json()),
                    ("bytes_out", self.bytes_out.to_json()),
                    ("queue_depth", self.queue_depth.to_json()),
                    ("in_flight", self.in_flight.to_json()),
                ]),
            ),
            ("cache", cache),
            ("adaptive", adaptive),
            (
                "latency_ns",
                Json::object([
                    ("relate", self.lat_relate.to_json()),
                    ("pair", self.lat_pair.to_json()),
                    ("join", self.lat_join.to_json()),
                    ("stats", self.lat_stats.to_json()),
                    ("other", self.lat_other.to_json()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs() {
        let seed = 0xcbf2_9ce4_8422_2325;
        assert_ne!(fnv1a(b"a", seed), fnv1a(b"b", seed));
        assert_ne!(fnv1a(b"ab", seed), fnv1a(b"ba", seed));
        assert_eq!(fnv1a(b"same", seed), fnv1a(b"same", seed));
    }

    #[test]
    fn report_carries_schema_and_counts() {
        let s = ServeStats::new();
        s.requests_total.add(3);
        s.note_status(200);
        s.note_status(404);
        s.note_status(500);
        s.latency(Endpoint::Relate).record(1000);
        let doc = s.render(
            Instant::now(),
            &[("lakes".into(), 42, true, "mapped")],
            Json::object([("hits", Json::U64(0))]),
            Json::object([("threads", Json::U64(4))]),
            Json::object([("mode", Json::str("on"))]),
        );
        let text = doc.render();
        assert!(
            text.contains("\"schema\": \"stj-serve-report/v1\""),
            "{text}"
        );
        assert!(text.contains("\"lakes\""), "{text}");
        assert!(text.contains("\"adaptive\""), "{text}");
        assert!(text.contains("\"client_error\": 1"), "{text}");
        assert!(text.contains("\"server_error\": 1"), "{text}");
    }
}
