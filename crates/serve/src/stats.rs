//! Service-level metrics and the `/stats` report.
//!
//! Every request updates a shared [`ServeStats`] (built from the
//! `stj-obs` service primitives); `/stats` renders a point-in-time
//! snapshot as a versioned `stj-serve-report/v1` JSON document, the
//! serving-side sibling of `stj-join-report/v1` and `stj-bench/v1`.

use std::time::Instant;
use stj_obs::{Counter, Gauge, Json, SharedHistogram};

/// FNV-1a over `bytes`, continuing from `seed` (pass the FNV offset
/// basis `0xcbf29ce484222325` to start a fresh hash).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which endpoint family a request hit, for per-endpoint latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    Relate,
    Pair,
    Join,
    Discover,
    Admin,
    Stats,
    Other,
}

impl Endpoint {
    /// All families, for label enumeration.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Relate,
        Endpoint::Pair,
        Endpoint::Join,
        Endpoint::Discover,
        Endpoint::Admin,
        Endpoint::Stats,
        Endpoint::Other,
    ];

    /// Stable label used in `/stats`, `/metrics` and slow-request logs.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Relate => "relate",
            Endpoint::Pair => "pair",
            Endpoint::Join => "join",
            Endpoint::Discover => "discover",
            Endpoint::Admin => "admin",
            Endpoint::Stats => "stats",
            Endpoint::Other => "other",
        }
    }
}

/// The lifecycle stage a per-state latency sample measures: time from
/// first request byte to a parsed request (`Read`), parsed to picked up
/// by a worker (`Queue`), handler execution (`Exec`), and completion to
/// the last byte flushed (`Write`). Summed, the four stages are the
/// full in-server latency a client observes on one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    Read,
    Queue,
    Exec,
    Write,
}

impl ConnState {
    /// All stages, for label enumeration.
    pub const ALL: [ConnState; 4] = [
        ConnState::Read,
        ConnState::Queue,
        ConnState::Exec,
        ConnState::Write,
    ];

    /// Stable label used in `/stats` and `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            ConnState::Read => "read",
            ConnState::Queue => "queue",
            ConnState::Exec => "exec",
            ConnState::Write => "write",
        }
    }
}

/// All service metrics. One instance per server, shared by workers.
#[derive(Default)]
pub struct ServeStats {
    /// Requests fully read and dispatched.
    pub requests_total: Counter,
    /// ... of which arrived over HTTP.
    pub requests_http: Counter,
    /// ... of which arrived over binary framing.
    pub requests_framed: Counter,
    /// 2xx responses.
    pub responses_ok: Counter,
    /// 4xx responses (excluding load-shed 429s).
    pub responses_client_error: Counter,
    /// 5xx responses.
    pub responses_server_error: Counter,
    /// Connections shed with 429 because the accept queue was full.
    pub rejected_429: Counter,
    /// Responses carrying a `truncated: true` flag (deadline or cap).
    pub truncated_responses: Counter,
    /// Requests slower than the slow-request log threshold.
    pub slow_requests: Counter,
    /// Trace-id sequence; every dispatched request draws the next id.
    pub trace_seq: Counter,
    /// Request bytes read (approximate: head + body as parsed).
    pub bytes_in: Counter,
    /// Response bytes written.
    pub bytes_out: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Job-queue depth between the reactor and the worker pool (the
    /// accept queue, pre-reactor) — with high-water mark.
    pub queue_depth: Gauge,
    /// Requests currently being processed.
    pub in_flight: Gauge,
    /// Connections currently open (reactor only).
    pub open_connections: Gauge,
    /// Bytes queued for write-out across all connections (reactor
    /// only): the write-readiness backlog.
    pub write_backlog_bytes: Gauge,
    /// Connections closed for exceeding the idle deadline.
    pub idle_timeouts: Counter,
    /// Connections closed for dribbling a request head past the
    /// header-read deadline (slow-loris).
    pub header_timeouts: Counter,
    /// Successful dataset reloads (generation swaps).
    pub reloads: Counter,
    /// Failed reload attempts (old generation kept).
    pub reload_errors: Counter,
    /// The live dataset generation id.
    pub generation: Gauge,
    /// Per-endpoint request latency, nanoseconds.
    pub lat_relate: SharedHistogram,
    pub lat_pair: SharedHistogram,
    pub lat_join: SharedHistogram,
    pub lat_discover: SharedHistogram,
    pub lat_admin: SharedHistogram,
    pub lat_stats: SharedHistogram,
    pub lat_other: SharedHistogram,
    /// Per-state latency (reactor lifecycle stages), nanoseconds.
    pub lat_state_read: SharedHistogram,
    pub lat_state_queue: SharedHistogram,
    pub lat_state_exec: SharedHistogram,
    pub lat_state_write: SharedHistogram,
}

impl ServeStats {
    /// A zeroed stats block.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// The latency histogram for `endpoint`.
    pub fn latency(&self, endpoint: Endpoint) -> &SharedHistogram {
        match endpoint {
            Endpoint::Relate => &self.lat_relate,
            Endpoint::Pair => &self.lat_pair,
            Endpoint::Join => &self.lat_join,
            Endpoint::Discover => &self.lat_discover,
            Endpoint::Admin => &self.lat_admin,
            Endpoint::Stats => &self.lat_stats,
            Endpoint::Other => &self.lat_other,
        }
    }

    /// The latency histogram for a lifecycle `state`.
    pub fn state_latency(&self, state: ConnState) -> &SharedHistogram {
        match state {
            ConnState::Read => &self.lat_state_read,
            ConnState::Queue => &self.lat_state_queue,
            ConnState::Exec => &self.lat_state_exec,
            ConnState::Write => &self.lat_state_write,
        }
    }

    /// Records the response status against the right counter.
    pub fn note_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_ok.inc(),
            400..=499 => self.responses_client_error.inc(),
            _ => self.responses_server_error.inc(),
        }
    }

    /// Renders the `stj-serve-report/v1` document.
    ///
    /// `datasets` is `(name, objects, zero_copy, backing)` per loaded
    /// dataset — `backing` is the arena's storage kind (`"columns"`,
    /// `"owned"`, or `"mapped"`); `cache` is the cache's own JSON
    /// block; `adaptive` is the resident adaptive model's decision
    /// trace.
    pub fn render(
        &self,
        started: Instant,
        generation: u64,
        datasets: &[(String, usize, bool, &'static str)],
        cache: Json,
        config: Json,
        adaptive: Json,
    ) -> Json {
        let mut ds = Json::Arr(Vec::new());
        if let Json::Arr(items) = &mut ds {
            for (name, objects, zero_copy, backing) in datasets {
                items.push(Json::object([
                    ("name", Json::str(name.clone())),
                    ("objects", Json::U64(*objects as u64)),
                    ("zero_copy", Json::Bool(*zero_copy)),
                    ("backing", Json::str(*backing)),
                ]));
            }
        }
        Json::object([
            ("schema", Json::str("stj-serve-report/v1")),
            ("uptime_ms", Json::U64(started.elapsed().as_millis() as u64)),
            ("config", config),
            (
                "generation",
                Json::object([
                    ("id", Json::U64(generation)),
                    ("reloads", self.reloads.to_json()),
                    ("reload_errors", self.reload_errors.to_json()),
                ]),
            ),
            ("datasets", ds),
            (
                "requests",
                Json::object([
                    ("total", self.requests_total.to_json()),
                    ("http", self.requests_http.to_json()),
                    ("framed", self.requests_framed.to_json()),
                    ("ok", self.responses_ok.to_json()),
                    ("client_error", self.responses_client_error.to_json()),
                    ("server_error", self.responses_server_error.to_json()),
                    ("rejected_429", self.rejected_429.to_json()),
                    ("truncated", self.truncated_responses.to_json()),
                    ("slow", self.slow_requests.to_json()),
                ]),
            ),
            (
                "transport",
                Json::object([
                    ("connections", self.connections.to_json()),
                    ("bytes_in", self.bytes_in.to_json()),
                    ("bytes_out", self.bytes_out.to_json()),
                    ("queue_depth", self.queue_depth.to_json()),
                    ("in_flight", self.in_flight.to_json()),
                ]),
            ),
            (
                "reactor",
                Json::object([
                    ("open_connections", self.open_connections.to_json()),
                    ("write_backlog_bytes", self.write_backlog_bytes.to_json()),
                    ("idle_timeouts", self.idle_timeouts.to_json()),
                    ("header_timeouts", self.header_timeouts.to_json()),
                ]),
            ),
            ("cache", cache),
            ("adaptive", adaptive),
            (
                "latency_ns",
                Json::object([
                    ("relate", self.lat_relate.to_json()),
                    ("pair", self.lat_pair.to_json()),
                    ("join", self.lat_join.to_json()),
                    ("discover", self.lat_discover.to_json()),
                    ("admin", self.lat_admin.to_json()),
                    ("stats", self.lat_stats.to_json()),
                    ("other", self.lat_other.to_json()),
                ]),
            ),
            (
                "state_latency_ns",
                Json::object([
                    ("read", self.lat_state_read.to_json()),
                    ("queue", self.lat_state_queue.to_json()),
                    ("exec", self.lat_state_exec.to_json()),
                    ("write", self.lat_state_write.to_json()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs() {
        let seed = 0xcbf2_9ce4_8422_2325;
        assert_ne!(fnv1a(b"a", seed), fnv1a(b"b", seed));
        assert_ne!(fnv1a(b"ab", seed), fnv1a(b"ba", seed));
        assert_eq!(fnv1a(b"same", seed), fnv1a(b"same", seed));
    }

    #[test]
    fn report_carries_schema_and_counts() {
        let s = ServeStats::new();
        s.requests_total.add(3);
        s.note_status(200);
        s.note_status(404);
        s.note_status(500);
        s.latency(Endpoint::Relate).record(1000);
        s.state_latency(ConnState::Queue).record(500);
        s.generation.set(3);
        s.reloads.add(2);
        let doc = s.render(
            Instant::now(),
            3,
            &[("lakes".into(), 42, true, "mapped")],
            Json::object([("hits", Json::U64(0))]),
            Json::object([("threads", Json::U64(4))]),
            Json::object([("mode", Json::str("on"))]),
        );
        let text = doc.render();
        assert!(
            text.contains("\"schema\": \"stj-serve-report/v1\""),
            "{text}"
        );
        assert!(text.contains("\"lakes\""), "{text}");
        assert!(text.contains("\"adaptive\""), "{text}");
        assert!(text.contains("\"client_error\": 1"), "{text}");
        assert!(text.contains("\"server_error\": 1"), "{text}");
        assert!(text.contains("\"generation\""), "{text}");
        assert!(text.contains("\"reloads\": 2"), "{text}");
        assert!(text.contains("\"reactor\""), "{text}");
        assert!(text.contains("\"state_latency_ns\""), "{text}");
    }
}
