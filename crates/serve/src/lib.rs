//! `stj-serve`: an online topology-query service over zero-copy arenas.
//!
//! The batch pipeline answers "join these two datasets"; this crate
//! answers the *online* variants a resident service gets asked:
//!
//! - **relate** — the most specific topological relation between an
//!   ad-hoc WKT polygon and every object in a loaded dataset. The probe
//!   is rasterized once per request ([`stj_raster::AprilApprox`] on the
//!   dataset's own grid), candidates come from a probe-side
//!   [`stj_index::Tiling`], and each candidate runs the full enhanced
//!   MBR → APRIL → DE-9IM pipeline — bit-identical to the offline path.
//! - **pair** — the relation between two stored objects by index.
//! - **join** — a bounded server-side [`stj_core::TopologyJoin`]
//!   (`run_bounded`: link cap + deadline) streamed as NDJSON.
//!
//! Serving machinery, all on `std`: a hand-rolled HTTP/1.1 codec with
//! keep-alive ([`http`]) sharing one dispatch layer with a
//! length-prefixed binary framing for batch clients ([`framing`]); a
//! fixed worker pool behind a bounded accept queue with 429 load
//! shedding ([`pool`]); per-request deadlines with partial-result
//! truncation flags; a sharded LRU over rendered probe responses
//! ([`cache`]); and full observability exported at `/stats` as a
//! versioned `stj-serve-report/v1` document ([`stats`]).

pub mod cache;
pub mod client;
pub mod conn;
pub mod discover;
pub mod framing;
pub mod generation;
pub mod http;
pub mod pool;
pub mod query;
pub mod reactor;
pub mod stats;

pub use cache::{ProbeCache, ProbeKey};
pub use client::Client;
pub use generation::{Generation, GenerationCell};
pub use pool::{install_signal_handlers, sighup_requested, Server, ShutdownFlag};
pub use query::{dispatch, Reply, Response};
pub use stats::{ConnState, Endpoint, ServeStats};

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use stj_core::{AdaptiveMode, AdaptiveModel, DatasetArena};
use stj_index::Tiling;
use stj_obs::Json;
use stj_raster::Grid;
use stj_store::open_arena;

/// Server configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads; 0 means available parallelism.
    pub threads: usize,
    /// Bounded accept-queue depth; beyond it connections are shed with
    /// a 429.
    pub queue_depth: usize,
    /// Probe-cache budget in mebibytes (0 disables the cache).
    pub cache_mb: usize,
    /// Per-request deadline in milliseconds (0 disables deadlines).
    pub deadline_ms: u64,
    /// Server-side cap on links returned by `/v1/join`.
    pub max_links: u64,
    /// Idle keep-alive deadline in milliseconds: a connection with no
    /// traffic for this long is closed (0 falls back to the default).
    pub idle_ms: u64,
    /// Header-read deadline in milliseconds: a connection that has
    /// started a request head must deliver the complete request within
    /// this window or be closed — the slow-loris bound. Activity does
    /// not reset it (that is exactly the attack), only request
    /// completion does. 0 falls back to the default.
    pub header_ms: u64,
    /// Adaptive filter-ordering mode (see [`stj_core::adaptive`]). The
    /// server keeps one resident model that warms across relate
    /// requests; `/v1/join` runs apply the same mode per run. Default
    /// on; `off` is bit-identical to the static pipeline.
    pub adaptive: AdaptiveMode,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: 0,
            queue_depth: 64,
            cache_mb: 64,
            deadline_ms: 2000,
            max_links: 100_000,
            idle_ms: 5000,
            header_ms: 2000,
            adaptive: AdaptiveMode::On,
        }
    }
}

impl ServeConfig {
    /// Worker-thread count after resolving `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }

    /// The idle deadline after resolving `0` to the default.
    pub fn idle_deadline(&self) -> std::time::Duration {
        std::time::Duration::from_millis(if self.idle_ms > 0 { self.idle_ms } else { 5000 })
    }

    /// The header-read deadline after resolving `0` to the default.
    pub fn header_deadline(&self) -> std::time::Duration {
        std::time::Duration::from_millis(if self.header_ms > 0 { self.header_ms } else { 2000 })
    }

    /// The config block embedded in `/stats`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("addr", Json::str(self.addr.clone())),
            ("threads", Json::U64(self.effective_threads() as u64)),
            ("queue_depth", Json::U64(self.queue_depth as u64)),
            ("cache_mb", Json::U64(self.cache_mb as u64)),
            ("deadline_ms", Json::U64(self.deadline_ms)),
            ("max_links", Json::U64(self.max_links)),
            ("idle_ms", Json::U64(self.idle_deadline().as_millis() as u64)),
            (
                "header_ms",
                Json::U64(self.header_deadline().as_millis() as u64),
            ),
            ("adaptive", Json::str(self.adaptive.label())),
        ])
    }
}

/// One dataset resident in the server: its arena (zero-copy when the
/// platform supports it), grid, and a probe-side tile index built once
/// at startup.
pub struct LoadedDataset {
    /// Dataset name (from the store header).
    pub name: String,
    /// The columnar object arena.
    pub arena: DatasetArena,
    /// The raster grid the arena was preprocessed on.
    pub grid: Grid,
    /// Tile index over the arena's MBRs, for ad-hoc probes.
    pub tiling: Tiling,
}

impl LoadedDataset {
    /// Loads one STJD v2 file and builds its probe index.
    pub fn open(path: &Path) -> Result<LoadedDataset, String> {
        let (arena, grid) = open_arena(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let tiling = Tiling::for_probes(arena.mbrs());
        Ok(LoadedDataset {
            name: arena.name().to_string(),
            arena,
            grid,
            tiling,
        })
    }
}

/// Loads every `--data` file. Duplicate dataset names are rejected —
/// lookups are by name.
pub fn load_datasets(paths: &[impl AsRef<Path>]) -> Result<Vec<LoadedDataset>, String> {
    if paths.is_empty() {
        return Err("no datasets given".to_string());
    }
    let mut out: Vec<LoadedDataset> = Vec::with_capacity(paths.len());
    for p in paths {
        let ds = LoadedDataset::open(p.as_ref())?;
        if out.iter().any(|d| d.name == ds.name) {
            return Err(format!("duplicate dataset name {:?}", ds.name));
        }
        out.push(ds);
    }
    Ok(out)
}

/// Shared server state: config, the swappable dataset generation,
/// cache, metrics.
pub struct ServeCtx {
    /// The resolved configuration.
    pub config: ServeConfig,
    /// The live dataset generation (hot-swapped by reloads; requests
    /// pin the generation they started on via [`ServeCtx::generation`]).
    pub generations: GenerationCell,
    /// The probe-result cache.
    pub cache: ProbeCache,
    /// Service metrics backing `/stats`.
    pub stats: ServeStats,
    /// The resident adaptive model: relate requests feed it, so the
    /// APRIL-stage verdicts warm across the whole serving session
    /// rather than per request.
    pub adaptive: AdaptiveModel,
    /// Server start time (for `/stats` uptime).
    pub started: Instant,
}

impl ServeCtx {
    /// Builds the shared state; `datasets` becomes generation 1.
    pub fn new(config: ServeConfig, datasets: Vec<LoadedDataset>) -> ServeCtx {
        let ctx = ServeCtx {
            cache: ProbeCache::new(config.cache_mb),
            stats: ServeStats::new(),
            adaptive: AdaptiveModel::new(config.adaptive),
            started: Instant::now(),
            generations: GenerationCell::new(datasets),
            config,
        };
        ctx.stats.generation.set(1);
        ctx
    }

    /// The live generation, pinned for the caller's lifetime — a
    /// request resolves this once and serves entirely from it, so a
    /// concurrent hot-swap cannot mix generations within one response.
    pub fn generation(&self) -> Arc<Generation> {
        self.generations.current()
    }

    /// Hot-swaps in a freshly loaded generation (see
    /// [`GenerationCell::reload`]) and invalidates the probe cache. On
    /// error the old generation and cache stay untouched.
    pub fn reload(&self, override_paths: Option<Vec<std::path::PathBuf>>) -> Result<Arc<Generation>, String> {
        match self.generations.reload(override_paths) {
            Ok(fresh) => {
                // New lookups key on the new generation id already; the
                // clear just releases the old entries' memory promptly.
                self.cache.clear();
                self.stats.reloads.inc();
                self.stats.generation.set(fresh.id);
                Ok(fresh)
            }
            Err(e) => {
                self.stats.reload_errors.inc();
                Err(e)
            }
        }
    }
}
