//! The serving loop: accept thread, bounded queue, fixed worker pool,
//! load shedding, graceful drain.
//!
//! Shape (all `std`, no async runtime):
//!
//! - the accept thread polls a non-blocking listener and pushes
//!   accepted connections onto a bounded queue;
//! - when the queue is full the connection is *shed* immediately — a
//!   `429` with `Retry-After: 1` written from the accept thread (with a
//!   short write timeout so a stalled peer cannot block accepting) —
//!   rather than queued into unbounded latency;
//! - N workers pop connections and run their request loop (HTTP
//!   keep-alive or binary framing, sniffed via [`TcpStream::peek`]);
//! - on shutdown (SIGINT/SIGTERM or [`ShutdownFlag::trigger`]) the
//!   accept loop stops, workers drain the queue and finish in-flight
//!   requests, and [`Server::run`] returns — a graceful drain.

use crate::framing::{self, FrameError};
use crate::http::{self, RecvError};
use crate::query::{self, Response};
use crate::{ServeCtx, ServeStats};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use stj_core::RelateScratch;

/// Idle keep-alive timeout: a connection with no new request for this
/// long is closed (also bounds how long a drain can wait on idle
/// clients).
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// A cooperative shutdown flag, shared between the signal handler, the
/// accept loop, and the workers.
#[derive(Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unset flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Requests shutdown.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by this flag or a signal).
    pub fn requested(&self) -> bool {
        self.0.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }
}

/// Set by the signal handler; observed by every [`ShutdownFlag`].
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Set by the SIGHUP handler; consumed by [`sighup_requested`].
static SIGHUPPED: AtomicBool = AtomicBool::new(false);

/// Consumes a pending SIGHUP hot-reload request: `true` exactly once
/// per delivered signal.
pub fn sighup_requested() -> bool {
    SIGHUPPED.swap(false, Ordering::SeqCst)
}

/// Installs SIGINT/SIGTERM handlers that request a graceful drain, and
/// a SIGHUP handler that requests a dataset hot-reload.
///
/// Uses the raw `signal(2)` C ABI directly — the workspace builds
/// offline with no libc crate — and the handlers only store to an
/// `AtomicBool`, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" fn on_sighup(_sig: i32) {
        SIGHUPPED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    let hup = on_sighup as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
        signal(SIGHUP, hup);
    }
}

/// No-op on non-unix platforms (ctrl-c falls back to process kill).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// The bounded handoff between the accept thread and the workers.
struct ConnQueue {
    deque: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            deque: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pushes a connection; on a full queue the connection is handed
    /// back so the accept loop can shed it.
    fn push(&self, conn: TcpStream, stats: &ServeStats) -> Result<(), TcpStream> {
        let mut q = self.deque.lock().expect("queue lock");
        if q.len() >= self.capacity {
            return Err(conn);
        }
        q.push_back(conn);
        stats.queue_depth.set(q.len() as u64);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops a connection, waiting up to `wait`; `None` on timeout.
    fn pop(&self, wait: Duration, stats: &ServeStats) -> Option<TcpStream> {
        let mut q = self.deque.lock().expect("queue lock");
        if q.is_empty() {
            let (guard, _timeout) = self.ready.wait_timeout(q, wait).expect("queue lock");
            q = guard;
        }
        let conn = q.pop_front();
        stats.queue_depth.set(q.len() as u64);
        conn
    }

    fn is_empty(&self) -> bool {
        self.deque.lock().expect("queue lock").is_empty()
    }
}

/// The running server: a bound listener plus shared state.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServeCtx>,
    shutdown: ShutdownFlag,
}

impl Server {
    /// Binds the listener (without accepting yet).
    pub fn bind(ctx: ServeCtx) -> io::Result<Server> {
        let listener = TcpListener::bind(&ctx.config.addr)?;
        Ok(Server {
            listener,
            ctx: Arc::new(ctx),
            shutdown: ShutdownFlag::new(),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that triggers a graceful drain when set (signals work
    /// too, once [`install_signal_handlers`] ran).
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// The shared state, for post-drain inspection (final stats dump).
    pub fn ctx(&self) -> Arc<ServeCtx> {
        Arc::clone(&self.ctx)
    }

    /// Serves until shutdown is requested, then drains and returns.
    ///
    /// On Linux this runs the readiness-based [`crate::reactor`] (set
    /// `STJ_SERVE_REACTOR=0` to force the blocking pool); elsewhere it
    /// falls back to the thread-per-connection pool below.
    pub fn run(&self) -> io::Result<()> {
        let use_reactor = crate::reactor::supported()
            && std::env::var("STJ_SERVE_REACTOR").map_or(true, |v| v != "0");
        if use_reactor {
            return crate::reactor::run(
                self.listener.try_clone()?,
                Arc::clone(&self.ctx),
                self.shutdown.clone(),
            );
        }
        self.run_blocking()
    }

    /// The portable blocking pool: accept thread + bounded connection
    /// queue + worker-per-connection serving.
    fn run_blocking(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue = Arc::new(ConnQueue::new(self.ctx.config.queue_depth));
        let threads = self.ctx.config.effective_threads();

        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for w in 0..threads {
                let queue = Arc::clone(&queue);
                let ctx = Arc::clone(&self.ctx);
                let shutdown = self.shutdown.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("stj-serve-{w}"))
                        .spawn_scoped(scope, move || {
                            // The worker's relate arena: every request this
                            // worker serves reuses the same scratch buffers,
                            // so steady-state refinement stays allocation-free.
                            let mut scratch = RelateScratch::default();
                            loop {
                                match queue.pop(Duration::from_millis(50), &ctx.stats) {
                                    Some(conn) => {
                                        serve_connection(&ctx, &shutdown, conn, &mut scratch)
                                    }
                                    // Exit only once draining is done:
                                    // shutdown requested and the queue
                                    // observed empty.
                                    None if shutdown.requested() && queue.is_empty() => break,
                                    None => {}
                                }
                            }
                        })
                        .expect("spawn worker"),
                );
            }

            // Accept loop (runs on the caller's thread).
            while !self.shutdown.requested() {
                if sighup_requested() {
                    // Reload on a throwaway thread so slow dataset loads
                    // never stall accepting.
                    let ctx = Arc::clone(&self.ctx);
                    std::thread::spawn(move || {
                        if let Err(e) = ctx.reload(None) {
                            eprintln!("stj-serve: SIGHUP reload failed: {e}");
                        }
                    });
                }
                match self.listener.accept() {
                    Ok((conn, _peer)) => {
                        self.ctx.stats.connections.inc();
                        if let Err(mut conn) = queue.push(conn_prepared(conn), &self.ctx.stats) {
                            // Queue full: shed with 429 + Retry-After.
                            // The write timeout set in `conn_prepared`
                            // keeps a stalled peer from blocking accept.
                            shed(&mut conn, &self.ctx.stats);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }

            // Drain: workers exit once the queue is empty.
            for w in workers {
                let _ = w.join();
            }
            Ok(())
        })
    }
}

/// Applies per-connection socket settings (ignoring failures — a
/// connection that cannot take a timeout still gets served).
fn conn_prepared(conn: TcpStream) -> TcpStream {
    let _ = conn.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = conn.set_write_timeout(Some(IDLE_TIMEOUT));
    let _ = conn.set_nodelay(true);
    conn
}

/// Writes the 429 shed response and drops the connection.
fn shed(conn: &mut TcpStream, stats: &ServeStats) {
    stats.rejected_429.inc();
    let body = b"{\"error\": {\"code\": 429, \"kind\": \"overloaded\", \"message\": \"accept queue full, retry later\"}}\n";
    let _ = http::write_response(
        conn,
        429,
        "application/json",
        &[("retry-after", "1")],
        body,
        false,
    );
}

/// Serves one connection to completion: sniffs the protocol, then runs
/// the per-request loop until close, error, idle timeout, or drain.
fn serve_connection(
    ctx: &ServeCtx,
    shutdown: &ShutdownFlag,
    mut conn: TcpStream,
    scratch: &mut RelateScratch,
) {
    let mut magic = [0u8; 4];
    let framed = matches!(conn.peek(&mut magic), Ok(4) if magic == framing::MAGIC);
    if framed {
        let mut sink = [0u8; 4];
        if io::Read::read_exact(&mut conn, &mut sink).is_err() {
            return;
        }
        serve_framed(ctx, shutdown, conn, scratch);
    } else {
        serve_http(ctx, shutdown, conn, scratch);
    }
}

/// Requests at least this slow get a span line on stderr (and count
/// toward `slow_requests`).
const SLOW_REQUEST_LOG: Duration = Duration::from_millis(500);

/// Runs `f` with in-flight/latency accounting around it. Every request
/// draws a process-unique trace id (echoed to HTTP clients as an
/// `x-stj-trace-id` header); requests slower than [`SLOW_REQUEST_LOG`]
/// log a span line keyed by that id.
fn timed_dispatch(
    ctx: &ServeCtx,
    endpoint: crate::Endpoint,
    f: impl FnOnce() -> Response,
) -> (Response, u64) {
    let trace_id = ctx.stats.trace_seq.next();
    ctx.stats.in_flight.inc();
    let start = Instant::now();
    let resp = f();
    let elapsed = start.elapsed();
    ctx.stats
        .latency(endpoint)
        .record(elapsed.as_nanos() as u64);
    ctx.stats.in_flight.dec();
    ctx.stats.note_status(resp.status);
    if resp.truncated {
        ctx.stats.truncated_responses.inc();
    }
    if elapsed >= SLOW_REQUEST_LOG {
        ctx.stats.slow_requests.inc();
        eprintln!(
            "stj-serve: slow request trace_id={trace_id} endpoint={} status={} dur_ms={:.1}",
            endpoint.name(),
            resp.status,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    (resp, trace_id)
}

fn serve_http(
    ctx: &ServeCtx,
    shutdown: &ShutdownFlag,
    mut conn: TcpStream,
    scratch: &mut RelateScratch,
) {
    loop {
        let req = match http::read_request(&mut conn) {
            Ok(r) => r,
            Err(RecvError::Closed) => return,
            Err(RecvError::Io(_)) => return, // timeout or disconnect
            Err(RecvError::HeadTooLarge) => {
                let r = Response::error(431, "head_too_large", RecvError::HeadTooLarge.to_string());
                ctx.stats.note_status(r.status);
                let _ = write_http(&mut conn, &r, false, &ctx.stats);
                return;
            }
            Err(RecvError::BodyTooLarge) => {
                let r = Response::error(413, "body_too_large", RecvError::BodyTooLarge.to_string());
                ctx.stats.note_status(r.status);
                let _ = write_http(&mut conn, &r, false, &ctx.stats);
                return;
            }
            Err(RecvError::Malformed(m)) => {
                let r = Response::error(400, "malformed_request", m);
                ctx.stats.note_status(r.status);
                let _ = write_http(&mut conn, &r, false, &ctx.stats);
                return;
            }
        };
        ctx.stats.requests_total.inc();
        ctx.stats.requests_http.inc();
        ctx.stats
            .bytes_in
            .add((req.body.len() + req.path.len() + 32) as u64);

        let endpoint = query::endpoint_of(&req.path);
        let (resp, trace_id) = timed_dispatch(ctx, endpoint, || {
            query::dispatch_with(ctx, &req.method, &req.path, &req.query, &req.body, scratch)
        });
        let keep = req.keep_alive && !resp.close && !shutdown.requested();
        if write_http_traced(&mut conn, &resp, keep, &ctx.stats, trace_id).is_err() || !keep {
            return;
        }
    }
}

fn write_http(
    conn: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    stats: &ServeStats,
) -> io::Result<()> {
    write_headers(conn, resp, keep_alive, stats, &[])
}

/// Like [`write_http`] but stamps the request's trace id on the
/// response so a client can quote it when reporting a slow request.
fn write_http_traced(
    conn: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    stats: &ServeStats,
    trace_id: u64,
) -> io::Result<()> {
    let id = trace_id.to_string();
    write_headers(conn, resp, keep_alive, stats, &[("x-stj-trace-id", &id)])
}

fn write_headers(
    conn: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    stats: &ServeStats,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
    if resp.status == 429 {
        headers.push(("retry-after", "1"));
    }
    headers.extend_from_slice(extra);
    let n = http::write_response(
        conn,
        resp.status,
        resp.content_type,
        &headers,
        &resp.body,
        keep_alive,
    )?;
    stats.bytes_out.add(n as u64);
    Ok(())
}

fn serve_framed(
    ctx: &ServeCtx,
    shutdown: &ShutdownFlag,
    mut conn: TcpStream,
    scratch: &mut RelateScratch,
) {
    loop {
        let req = match framing::read_request_frame(&mut conn) {
            Ok(r) => r,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge) => {
                let r = Response::error(413, "frame_too_large", "frame exceeds size cap");
                ctx.stats.note_status(r.status);
                let _ = write_framed(&mut conn, &r, &ctx.stats);
                return;
            }
            Err(FrameError::Malformed(m)) => {
                let r = Response::error(400, "malformed_frame", m);
                ctx.stats.note_status(r.status);
                let _ = write_framed(&mut conn, &r, &ctx.stats);
                return;
            }
        };
        ctx.stats.requests_total.inc();
        ctx.stats.requests_framed.inc();
        ctx.stats
            .bytes_in
            .add((req.body.len() + req.target.len() + 8) as u64);

        let path = req.target.split('?').next().unwrap_or("");
        let endpoint = query::endpoint_of(path);
        // The binary framing has no headers, so the trace id only shows
        // up in slow-request logs for framed clients.
        let (resp, _trace_id) = timed_dispatch(ctx, endpoint, || {
            query::dispatch_target_with(ctx, &req.method, &req.target, &req.body, scratch)
        });
        let closing = resp.close || shutdown.requested();
        if write_framed(&mut conn, &resp, &ctx.stats).is_err() || closing {
            return;
        }
    }
}

fn write_framed(conn: &mut TcpStream, resp: &Response, stats: &ServeStats) -> io::Result<()> {
    let n = framing::write_response_frame(conn, resp.status, &resp.body)?;
    stats.bytes_out.add(n as u64);
    Ok(())
}
