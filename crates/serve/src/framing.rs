//! Length-prefixed binary framing for batch clients.
//!
//! HTTP keep-alive costs one head parse per request; batch drivers
//! (`serve_bench`, `stj query --framed`) skip it with a trivial binary
//! protocol sharing the same dispatch layer:
//!
//! - the client opens the connection with the 4-byte magic `STJB`
//!   (detected server-side via [`std::net::TcpStream::peek`], so plain
//!   HTTP clients on the same port are unaffected);
//! - each request frame is a `u32` little-endian payload length
//!   (capped at [`MAX_FRAME_BYTES`]) followed by the payload
//!   `"<METHOD> <path-with-query>\n<body>"`;
//! - each response frame is a `u32` little-endian payload length
//!   followed by `"<status>\n<body>"`.
//!
//! Response frames are not capped: a bounded join result may exceed the
//! request cap, and the server controls its own output.

use std::io::{self, Read, Write};

/// Connection-opening magic distinguishing framed clients from HTTP.
pub const MAGIC: [u8; 4] = *b"STJB";
/// Upper bound on a request frame payload.
pub const MAX_FRAME_BYTES: usize = 1024 * 1024;

/// Why a request frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// Transport error (includes mid-frame disconnects and timeouts).
    Io(io::Error),
    /// Declared length exceeded [`MAX_FRAME_BYTES`] → 413.
    TooLarge,
    /// Payload is not `"<METHOD> <target>\n<body>"` → 400.
    Malformed(String),
}

/// A request decoded from one frame.
#[derive(Clone, Debug)]
pub struct FramedRequest {
    /// Uppercased method.
    pub method: String,
    /// Raw target (`/path?query`), still percent-encoded.
    pub target: String,
    /// The request body.
    pub body: Vec<u8>,
}

/// Reads exactly `buf.len()` bytes, mapping clean EOF at offset 0 to
/// [`FrameError::Closed`].
fn read_exact_or_closed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..]).map_err(FrameError::Io)?;
        if n == 0 {
            return if filled == 0 {
                Err(FrameError::Closed)
            } else {
                Err(FrameError::Malformed("eof inside frame".into()))
            };
        }
        filled += n;
    }
    Ok(())
}

/// Reads one request frame (the connection magic must already have been
/// consumed).
pub fn read_request_frame(r: &mut impl Read) -> Result<FramedRequest, FrameError> {
    let mut len_buf = [0u8; 4];
    read_exact_or_closed(r, &mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge);
    }
    let mut payload = vec![0u8; len];
    if len > 0 {
        match read_exact_or_closed(r, &mut payload) {
            Err(FrameError::Closed) => {
                return Err(FrameError::Malformed("eof inside frame".into()))
            }
            other => other?,
        }
    }
    decode_payload(&payload)
}

/// Incrementally parses one request frame from the front of `buf` (the
/// connection magic must already have been consumed). Returns
/// `Ok(None)` when more bytes are needed, or the decoded frame plus the
/// byte count it consumed; leftover bytes belong to the next frame. The
/// size cap is enforced as soon as the length prefix is readable, so a
/// hostile length never allocates.
pub fn parse_request_frame(buf: &[u8]) -> Result<Option<(FramedRequest, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge);
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let req = decode_payload(&buf[4..4 + len])?;
    Ok(Some((req, 4 + len)))
}

/// Decodes a frame payload (`"<METHOD> <target>\n<body>"`).
fn decode_payload(payload: &[u8]) -> Result<FramedRequest, FrameError> {
    let newline = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| FrameError::Malformed("frame has no request line".into()))?;
    let line = std::str::from_utf8(&payload[..newline])
        .map_err(|_| FrameError::Malformed("request line is not utf-8".into()))?;
    let (method, target) = line
        .split_once(' ')
        .ok_or_else(|| FrameError::Malformed("request line has no method".into()))?;
    if method.is_empty() || target.is_empty() {
        return Err(FrameError::Malformed("empty method or target".into()));
    }
    Ok(FramedRequest {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        body: payload[newline + 1..].to_vec(),
    })
}

/// Writes one response frame.
pub fn write_response_frame(w: &mut impl Write, status: u16, body: &[u8]) -> io::Result<usize> {
    let bytes = render_response_frame(status, body);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Renders one response frame to bytes (for the reactor's queued
/// write-out).
pub fn render_response_frame(status: u16, body: &[u8]) -> Vec<u8> {
    let head = format!("{status}\n");
    let mut out = Vec::with_capacity(4 + head.len() + body.len());
    out.extend_from_slice(&((head.len() + body.len()) as u32).to_le_bytes());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes one request frame (client side).
pub fn write_request_frame(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!("{method} {target}\n");
    let len = (head.len() + body.len()) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one response frame (client side): `(status, body)`.
pub fn read_response_frame(r: &mut impl Read) -> io::Result<(u16, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let newline = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame has no status line"))?;
    let status = std::str::from_utf8(&payload[..newline])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, payload[newline + 1..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frame_roundtrips() {
        let mut buf = Vec::new();
        write_request_frame(
            &mut buf,
            "POST",
            "/v1/relate?dataset=0",
            b"POLYGON((0 0,1 0,1 1,0 0))",
        )
        .unwrap();
        let req = read_request_frame(&mut &buf[..]).expect("roundtrip");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/relate?dataset=0");
        assert_eq!(req.body, b"POLYGON((0 0,1 0,1 1,0 0))");
    }

    #[test]
    fn response_frame_roundtrips() {
        let mut buf = Vec::new();
        write_response_frame(&mut buf, 429, b"{\"error\":1}").unwrap();
        let (status, body) = read_response_frame(&mut &buf[..]).expect("roundtrip");
        assert_eq!(status, 429);
        assert_eq!(body, b"{\"error\":1}");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(b"ignored");
        assert!(matches!(
            read_request_frame(&mut &buf[..]),
            Err(FrameError::TooLarge)
        ));
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let mut full = Vec::new();
        write_request_frame(&mut full, "GET", "/stats", b"").unwrap();
        for cut in 0..full.len() {
            let r = read_request_frame(&mut &full[..cut]);
            assert!(r.is_err(), "cut at {cut}");
        }
        // Clean EOF between frames is Closed, not an error report.
        assert!(matches!(
            read_request_frame(&mut &b""[..]),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn parse_request_frame_is_incremental() {
        let mut full = Vec::new();
        write_request_frame(&mut full, "POST", "/v1/relate?dataset=0", b"wkt").unwrap();
        for cut in 0..full.len() {
            assert!(
                parse_request_frame(&full[..cut]).expect("prefix").is_none(),
                "cut at {cut} must want more bytes"
            );
        }
        // Two frames back to back: consumed points at the second.
        let mut two = full.clone();
        write_request_frame(&mut two, "GET", "/stats", b"").unwrap();
        let (first, consumed) = parse_request_frame(&two).expect("parse").expect("complete");
        assert_eq!(first.target, "/v1/relate?dataset=0");
        assert_eq!(consumed, full.len());
        let (second, rest) = parse_request_frame(&two[consumed..])
            .expect("parse")
            .expect("complete");
        assert_eq!(second.target, "/stats");
        assert_eq!(consumed + rest, two.len());
        // Oversized length prefix errors before the payload arrives.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(matches!(
            parse_request_frame(&huge),
            Err(FrameError::TooLarge)
        ));
    }

    #[test]
    fn frame_without_request_line_is_malformed() {
        let mut buf = 5u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"nonlf");
        assert!(matches!(
            read_request_frame(&mut &buf[..]),
            Err(FrameError::Malformed(_))
        ));
    }
}
