//! Bulk link discovery: a WKT probe set joined against a resident
//! dataset, produced in bounded-memory chunks.
//!
//! This is the serving-side form of the paper's headline workload —
//! interlinking an entire geometry set with a dataset — exposed two
//! ways that share one core:
//!
//! - `POST /v1/discover` streams results as NDJSON (or GeoSPARQL
//!   N-Triples with `format=nt`) over HTTP. The response has no
//!   `content-length`; the reactor writes one rendered chunk, waits for
//!   the socket to drain (write-readiness backpressure), and only then
//!   asks a worker for the next chunk — so server memory per job stays
//!   bounded at roughly one chunk no matter how slow the client reads.
//! - `stj discover` runs the same probe loop stdin→stdout against a
//!   local STJD file, matching `spatialjoin`'s pipe contract.
//!
//! Each probe runs the exact relate pipeline (tile-index candidates,
//! then MBR → APRIL → DE-9IM per candidate), so `format=nt` output is
//! byte-identical, after sorting, to offline `stj join` N-Triples over
//! the same preprocessed inputs.

use crate::{Generation, LoadedDataset, ServeCtx};
use std::fmt::Write as _;
use std::sync::Arc;
use stj_core::{
    find_relation_adaptive_with, find_relation_with, linking::geosparql_property, AdaptiveWorker,
    RelateScratch, SpatialObject, DEFAULT_MAX_INTERVALS,
};
use stj_de9im::TopoRelation;
use stj_geom::Polygon;

/// Target rendered size of one stream chunk. Chunks end on probe
/// boundaries, so a single probe with many links can overshoot — the
/// bound is per-probe output plus this, not a hard cap.
const CHUNK_TARGET_BYTES: usize = 32 * 1024;

/// Output serialization for a discover job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscoverFormat {
    /// One `{"probe":..,"id":..,"relation":".."}` object per link,
    /// then a final `{"summary":{..}}` line.
    Ndjson,
    /// GeoSPARQL N-Triples, one most-specific property per link (no
    /// summary line — the output loads directly into an RDF store).
    NTriples,
}

impl DiscoverFormat {
    /// Parses the `format` query/CLI parameter.
    pub fn parse(s: &str) -> Option<DiscoverFormat> {
        match s {
            "ndjson" => Some(DiscoverFormat::Ndjson),
            "nt" | "ntriples" => Some(DiscoverFormat::NTriples),
            _ => None,
        }
    }

    /// The response content type.
    pub fn content_type(self) -> &'static str {
        match self {
            DiscoverFormat::Ndjson => "application/x-ndjson",
            DiscoverFormat::NTriples => "application/n-triples",
        }
    }
}

/// Runs one probe polygon against a dataset and appends its output
/// lines to `out`. Returns `(candidates, links)` for this probe.
///
/// This is the shared core of the streaming endpoint and the CLI mode:
/// both produce output through this function, which is what makes the
/// online/offline equality contract testable.
pub fn discover_probe(
    ds: &LoadedDataset,
    probe_idx: u64,
    polygon: Polygon,
    probe_name: &str,
    format: DiscoverFormat,
    scratch: &mut RelateScratch,
    adaptive: &mut Option<AdaptiveWorker<'_>>,
    out: &mut String,
) -> (u64, u64) {
    let probe = SpatialObject::build_with_budget(polygon, &ds.grid, DEFAULT_MAX_INTERVALS);
    let mut candidates: Vec<u32> = Vec::new();
    ds.tiling
        .probe(probe.view().mbr, ds.arena.mbrs(), &mut |id| {
            candidates.push(id)
        });
    let mut links = 0u64;
    for &id in &candidates {
        let o = match adaptive.as_mut() {
            Some(w) => find_relation_adaptive_with(
                probe.view(),
                ds.arena.object(id as usize),
                &mut stj_obs::Disabled,
                scratch,
                w,
            ),
            None => find_relation_with(probe.view(), ds.arena.object(id as usize), scratch),
        };
        if o.relation == TopoRelation::Disjoint {
            continue;
        }
        links += 1;
        match format {
            DiscoverFormat::Ndjson => {
                let _ = writeln!(
                    out,
                    "{{\"probe\":{probe_idx},\"id\":{id},\"relation\":\"{}\"}}",
                    o.relation
                );
            }
            DiscoverFormat::NTriples => {
                // Matches `stj join --ntriples` naming exactly:
                // urn:stj:<dataset-name>:<index>, most specific
                // property only.
                let _ = writeln!(
                    out,
                    "<urn:stj:{probe_name}:{probe_idx}> <{}> <urn:stj:{}:{id}> .",
                    geosparql_property(o.relation),
                    ds.name
                );
            }
        }
    }
    (candidates.len() as u64, links)
}

/// A discover job in flight: the parsed probe set plus a cursor. The
/// job pins the generation it started on — a concurrent hot-swap never
/// mixes generations inside one stream.
pub struct DiscoverStream {
    generation: Arc<Generation>,
    ds_idx: usize,
    probes: Vec<Polygon>,
    next: usize,
    format: DiscoverFormat,
    probe_name: String,
    candidates: u64,
    links: u64,
    finished: bool,
}

impl DiscoverStream {
    /// A job over `probes` against dataset `ds_idx` of `generation`.
    pub fn new(
        generation: Arc<Generation>,
        ds_idx: usize,
        probes: Vec<Polygon>,
        format: DiscoverFormat,
        probe_name: String,
    ) -> DiscoverStream {
        DiscoverStream {
            generation,
            ds_idx,
            probes,
            next: 0,
            format,
            probe_name,
            candidates: 0,
            links: 0,
            finished: false,
        }
    }

    /// The job's output content type.
    pub fn content_type(&self) -> &'static str {
        self.format.content_type()
    }

    /// Whether the job has produced its final chunk.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Renders the next chunk, or `None` once the job is done. A chunk
    /// covers whole probes up to roughly [`CHUNK_TARGET_BYTES`]; the
    /// final chunk carries the NDJSON summary line.
    ///
    /// Deliberately not deadline-bounded: a bulk job runs as long as it
    /// runs, the per-chunk granularity keeps workers responsive, and a
    /// vanished client tears the job down via the reactor.
    pub fn next_chunk(&mut self, ctx: &ServeCtx, scratch: &mut RelateScratch) -> Option<Vec<u8>> {
        if self.finished {
            return None;
        }
        let ds = &self.generation.datasets[self.ds_idx];
        // A fresh per-chunk view of the resident adaptive model: chunk
        // pairs feed the shared warm-up, settled verdicts apply.
        let mut adaptive = ctx
            .config
            .adaptive
            .enabled()
            .then(|| AdaptiveWorker::new(&ctx.adaptive));
        let mut out = String::with_capacity(CHUNK_TARGET_BYTES + 1024);
        while self.next < self.probes.len() && out.len() < CHUNK_TARGET_BYTES {
            let polygon = self.probes[self.next].clone();
            let (cand, links) = discover_probe(
                ds,
                self.next as u64,
                polygon,
                &self.probe_name,
                self.format,
                scratch,
                &mut adaptive,
                &mut out,
            );
            self.candidates += cand;
            self.links += links;
            self.next += 1;
        }
        if let Some(w) = &mut adaptive {
            w.flush();
        }
        if self.next >= self.probes.len() {
            self.finished = true;
            if self.format == DiscoverFormat::Ndjson {
                let _ = writeln!(
                    out,
                    "{{\"summary\":{{\"probes\":{},\"candidates\":{},\"links\":{}}}}}",
                    self.probes.len(),
                    self.candidates,
                    self.links,
                );
            }
        }
        Some(out.into_bytes())
    }

    /// Drives the whole job into one buffer (non-reactor fallbacks and
    /// `dispatch` callers; memory is unbounded here, which is exactly
    /// what the reactor path avoids).
    pub fn drain_to_vec(&mut self, ctx: &ServeCtx, scratch: &mut RelateScratch) -> Vec<u8> {
        let mut all = Vec::new();
        while let Some(chunk) = self.next_chunk(ctx, scratch) {
            all.extend_from_slice(&chunk);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, ServeCtx};
    use stj_geom::Rect;
    use stj_index::Tiling;
    use stj_raster::Grid;

    fn test_ctx() -> ServeCtx {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 8);
        let polys = vec![
            Polygon::rect(Rect::from_coords(10.0, 10.0, 40.0, 40.0)),
            Polygon::rect(Rect::from_coords(20.0, 20.0, 30.0, 30.0)),
            Polygon::rect(Rect::from_coords(60.0, 60.0, 90.0, 90.0)),
        ];
        let arena = stj_core::Dataset::build("boxes", polys, &grid).to_arena();
        let tiling = Tiling::for_probes(arena.mbrs());
        let loaded = LoadedDataset {
            name: "boxes".to_string(),
            arena,
            grid,
            tiling,
        };
        ServeCtx::new(ServeConfig::default(), vec![loaded])
    }

    fn probes() -> Vec<Polygon> {
        vec![
            // Inside boxes 0 and containing nothing.
            Polygon::rect(Rect::from_coords(22.0, 22.0, 28.0, 28.0)),
            // Far away from everything.
            Polygon::rect(Rect::from_coords(0.0, 90.0, 5.0, 95.0)),
        ]
    }

    #[test]
    fn ndjson_stream_ends_with_summary() {
        let ctx = test_ctx();
        let mut stream = DiscoverStream::new(
            ctx.generation(),
            0,
            probes(),
            DiscoverFormat::Ndjson,
            "probes".to_string(),
        );
        let mut scratch = RelateScratch::default();
        let body = stream.drain_to_vec(&ctx, &mut scratch);
        let text = std::str::from_utf8(&body).unwrap();
        let last = text.lines().last().expect("summary line");
        assert!(last.starts_with("{\"summary\":{\"probes\":2,"), "{text}");
        assert!(text.contains("\"relation\":\"inside\""), "{text}");
        // Exhausted streams yield no more chunks.
        assert!(stream.next_chunk(&ctx, &mut scratch).is_none());
    }

    #[test]
    fn ntriples_match_manual_relate() {
        let ctx = test_ctx();
        let mut stream = DiscoverStream::new(
            ctx.generation(),
            0,
            probes(),
            DiscoverFormat::NTriples,
            "probes".to_string(),
        );
        let mut scratch = RelateScratch::default();
        let body = stream.drain_to_vec(&ctx, &mut scratch);
        let text = std::str::from_utf8(&body).unwrap();
        for line in text.lines() {
            assert!(line.starts_with("<urn:stj:probes:"), "{line}");
            assert!(line.ends_with(" ."), "{line}");
            assert!(line.contains("geosparql#sf"), "{line}");
        }
        // Probe 0 is inside box 0 and box 1's square: sfWithin links.
        assert!(text.contains("<urn:stj:probes:0> <http://www.opengis.net/ont/geosparql#sfWithin> <urn:stj:boxes:0> ."), "{text}");
        // Probe 1 is disjoint from everything: no lines for it.
        assert!(!text.contains("probes:1"), "{text}");
    }

    #[test]
    fn chunking_covers_all_probes_exactly_once() {
        let ctx = test_ctx();
        // Many probes, so multiple chunks are produced.
        let many: Vec<Polygon> = (0..500)
            .map(|i| {
                let o = (i % 50) as f64;
                Polygon::rect(Rect::from_coords(o, o, o + 30.0, o + 30.0))
            })
            .collect();
        let n = many.len();
        let mut stream = DiscoverStream::new(
            ctx.generation(),
            0,
            many,
            DiscoverFormat::Ndjson,
            "probes".to_string(),
        );
        let mut scratch = RelateScratch::default();
        let mut chunks = 0;
        let mut all = String::new();
        while let Some(c) = stream.next_chunk(&ctx, &mut scratch) {
            chunks += 1;
            all.push_str(std::str::from_utf8(&c).unwrap());
        }
        assert!(chunks > 1, "500 probes must span multiple chunks");
        let summary = all.lines().last().unwrap();
        assert!(summary.contains(&format!("\"probes\":{n}")), "{summary}");
    }
}
