//! Per-connection state for the reactor: protocol sniffing, buffered
//! incremental parsing, and the read→dispatch→write lifecycle.
//!
//! A [`Conn`] owns its nonblocking socket plus a read buffer and a
//! write buffer. Everything protocol-shaped lives here as pure
//! byte-buffer logic ([`Conn::try_parse`] never touches the socket), so
//! the state machine is testable without a live event loop; the reactor
//! only moves bytes between the socket and these buffers and reacts to
//! the outcomes.
//!
//! Lifecycle per request:
//!
//! ```text
//!   Reading --(complete request parsed)--> Dispatched
//!   Dispatched --(worker completion applied)--> Writing
//!   Writing --(buffer flushed, keep-alive)--> Reading   [re-parse leftovers]
//!   Writing --(buffer flushed, close)-----> closed
//!   Writing --(stream chunk flushed, more)-> Dispatched [continuation job]
//! ```
//!
//! Two wall-clock deadlines protect the reactor from slow peers (see
//! `ServeConfig::{idle_ms, header_ms}`): an *idle* deadline for quiet
//! keep-alive connections and stalled writers, and a *header* deadline
//! measured from the first byte of a request to its complete parse —
//! byte-at-a-time "slow loris" writers keep resetting activity but can
//! never reset that one.

use crate::framing::{self, FrameError};
use crate::http::{self, RecvError};
use crate::query::Response;
use std::net::TcpStream;
use std::time::Instant;

/// The wire protocol a connection speaks, sniffed from its first four
/// bytes (the `STJB` magic selects binary framing; anything else is
/// HTTP/1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Not enough bytes seen yet.
    Unknown,
    Http,
    Framed,
}

/// Where a connection is in its request lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Accumulating request bytes; parse attempts run on every read.
    Reading,
    /// A request (or stream continuation) is with the worker pool; the
    /// socket stays readable only to notice an early peer close.
    Dispatched,
    /// Flushing the write buffer.
    Writing,
}

/// One parsed request, either protocol.
pub enum ParsedRequest {
    Http(http::Request),
    Framed(framing::FramedRequest),
}

impl ParsedRequest {
    /// Whether the client asked to keep the connection open after the
    /// response (framed clients always do; closing is server-driven).
    pub fn keep_alive(&self) -> bool {
        match self {
            ParsedRequest::Http(r) => r.keep_alive,
            ParsedRequest::Framed(_) => true,
        }
    }
}

/// The outcome of a parse attempt against the read buffer.
pub enum ParseStep {
    /// The buffer holds a prefix of a request; keep reading.
    NeedMore,
    /// One complete request, with the byte count it consumed.
    Request(ParsedRequest, usize),
    /// The buffer is unsalvageable; write this error and close.
    Error(Response),
}

/// Per-connection state. The reactor stores these in a slab indexed by
/// the epoll token.
pub struct Conn {
    /// The nonblocking socket.
    pub sock: TcpStream,
    /// Epoch tag baked into the epoll token; detects stale events and
    /// stale worker completions after a slot is reused.
    pub epoch: u32,
    pub proto: Proto,
    pub phase: Phase,
    /// Bytes read but not yet consumed by a parse (may hold pipelined
    /// follow-up requests).
    pub rbuf: Vec<u8>,
    /// Bytes queued for write-out; `wpos` marks how far they got.
    pub wbuf: Vec<u8>,
    pub wpos: usize,
    /// Close once the write buffer drains.
    pub close_after_write: bool,
    /// The current response is a discover stream: after each flush the
    /// reactor asks for the next chunk instead of recycling the
    /// connection.
    pub streaming: bool,
    /// The paused stream between a flushed chunk and the continuation
    /// job (holds the pinned generation alive).
    pub pending_stream: Option<crate::discover::DiscoverStream>,
    /// Last socket progress (read or write), for the idle deadline.
    pub last_activity: Instant,
    /// When the first byte of the *current* request arrived; cleared on
    /// dispatch. The slow-loris deadline is measured from here.
    pub head_started: Option<Instant>,
    /// When the current response entered the write buffer (for the
    /// `Write` state latency).
    pub write_started: Option<Instant>,
    /// The epoll interest mask currently registered for this socket.
    pub interest: u32,
    /// Trace id of the request currently in flight (0 when none).
    pub trace_id: u64,
}

impl Conn {
    /// Wraps a freshly accepted socket.
    pub fn new(sock: TcpStream, epoch: u32) -> Conn {
        Conn {
            sock,
            epoch,
            proto: Proto::Unknown,
            phase: Phase::Reading,
            rbuf: Vec::with_capacity(1024),
            wbuf: Vec::new(),
            wpos: 0,
            close_after_write: false,
            streaming: false,
            pending_stream: None,
            last_activity: Instant::now(),
            head_started: None,
            write_started: None,
            interest: 0,
            trace_id: 0,
        }
    }

    /// Unflushed write-buffer bytes.
    pub fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Sniffs the protocol once four bytes are buffered. The framing
    /// magic is consumed (clients send it once per connection, before
    /// the first frame).
    fn sniff(&mut self) {
        if self.proto == Proto::Unknown && self.rbuf.len() >= 4 {
            if self.rbuf[..4] == framing::MAGIC {
                self.proto = Proto::Framed;
                self.rbuf.drain(..4);
            } else {
                self.proto = Proto::Http;
            }
        }
    }

    /// Attempts to parse one complete request from the front of the
    /// read buffer, consuming it on success. Pure buffer logic: the
    /// socket is never touched.
    pub fn try_parse(&mut self) -> ParseStep {
        self.sniff();
        match self.proto {
            Proto::Unknown => {
                // Under four bytes and none of them can rule out the
                // magic yet — except a prefix that already diverges.
                if !framing::MAGIC.starts_with(&self.rbuf) {
                    self.proto = Proto::Http;
                    return self.try_parse();
                }
                ParseStep::NeedMore
            }
            Proto::Http => match http::parse_request(&self.rbuf) {
                Ok(None) => ParseStep::NeedMore,
                Ok(Some((req, consumed))) => {
                    self.rbuf.drain(..consumed);
                    ParseStep::Request(ParsedRequest::Http(req), consumed)
                }
                Err(RecvError::HeadTooLarge) => ParseStep::Error(Response::error(
                    431,
                    "head_too_large",
                    RecvError::HeadTooLarge.to_string(),
                )),
                Err(RecvError::BodyTooLarge) => ParseStep::Error(Response::error(
                    413,
                    "body_too_large",
                    RecvError::BodyTooLarge.to_string(),
                )),
                Err(RecvError::Malformed(m)) => {
                    ParseStep::Error(Response::error(400, "malformed_request", m))
                }
                // parse_request never does IO.
                Err(RecvError::Closed) | Err(RecvError::Io(_)) => ParseStep::NeedMore,
            },
            Proto::Framed => match framing::parse_request_frame(&self.rbuf) {
                Ok(None) => ParseStep::NeedMore,
                Ok(Some((req, consumed))) => {
                    self.rbuf.drain(..consumed);
                    ParseStep::Request(ParsedRequest::Framed(req), consumed)
                }
                Err(FrameError::TooLarge) => ParseStep::Error(Response::error(
                    413,
                    "frame_too_large",
                    "frame exceeds size cap",
                )),
                Err(FrameError::Malformed(m)) => {
                    ParseStep::Error(Response::error(400, "malformed_frame", m))
                }
                Err(FrameError::Closed) | Err(FrameError::Io(_)) => ParseStep::NeedMore,
            },
        }
    }

    /// Renders `resp` into the write buffer in this connection's wire
    /// format and flips the phase to `Writing`. For HTTP, `keep_alive`
    /// decides the `connection:` header; 429s carry `retry-after: 1`
    /// and nonzero trace ids an `x-stj-trace-id`.
    pub fn enqueue_response(&mut self, resp: &Response, keep_alive: bool) {
        match self.proto {
            Proto::Framed => {
                self.wbuf
                    .extend_from_slice(&framing::render_response_frame(resp.status, &resp.body));
            }
            // Unknown degrades to HTTP: an error response to a client
            // that never finished identifying itself.
            Proto::Http | Proto::Unknown => {
                let id = self.trace_id.to_string();
                let mut headers: Vec<(&str, &str)> = Vec::with_capacity(2);
                if resp.status == 429 {
                    headers.push(("retry-after", "1"));
                }
                if self.trace_id != 0 {
                    headers.push(("x-stj-trace-id", &id));
                }
                let _ = http::write_response(
                    &mut self.wbuf,
                    resp.status,
                    resp.content_type,
                    &headers,
                    &resp.body,
                    keep_alive,
                );
            }
        }
        self.close_after_write = !keep_alive;
        self.phase = Phase::Writing;
        self.write_started = Some(Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected socket pair for tests (the sockets are never used by
    /// the parse logic, but `Conn` owns one).
    fn test_conn() -> Conn {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sock = TcpStream::connect(addr).expect("connect");
        let _accepted = listener.accept().expect("accept");
        Conn::new(sock, 1)
    }

    #[test]
    fn sniffs_http_from_first_bytes() {
        let mut c = test_conn();
        c.rbuf.extend_from_slice(b"GET ");
        assert!(matches!(c.try_parse(), ParseStep::NeedMore));
        assert_eq!(c.proto, Proto::Http);
        c.rbuf.clear();
        c.rbuf.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        match c.try_parse() {
            ParseStep::Request(ParsedRequest::Http(req), consumed) => {
                assert_eq!(req.path, "/healthz");
                assert_eq!(consumed, 25);
            }
            _ => panic!("expected a parsed request"),
        }
        assert!(c.rbuf.is_empty(), "request bytes must be consumed");
    }

    #[test]
    fn single_byte_g_resolves_to_http() {
        let mut c = test_conn();
        // 'G' already rules out the STJB magic prefix.
        c.rbuf.extend_from_slice(b"G");
        assert!(matches!(c.try_parse(), ParseStep::NeedMore));
        assert_eq!(c.proto, Proto::Http);
    }

    #[test]
    fn magic_prefix_stays_unknown_until_complete() {
        let mut c = test_conn();
        c.rbuf.extend_from_slice(b"ST");
        assert!(matches!(c.try_parse(), ParseStep::NeedMore));
        assert_eq!(c.proto, Proto::Unknown);
        c.rbuf.extend_from_slice(b"JB");
        assert!(matches!(c.try_parse(), ParseStep::NeedMore));
        assert_eq!(c.proto, Proto::Framed);
        assert!(c.rbuf.is_empty(), "magic must be consumed");
    }

    #[test]
    fn framed_request_parses_after_magic() {
        let mut c = test_conn();
        let mut wire = Vec::new();
        wire.extend_from_slice(&framing::MAGIC);
        let payload = b"GET /healthz\n";
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(payload);
        c.rbuf.extend_from_slice(&wire);
        match c.try_parse() {
            ParseStep::Request(ParsedRequest::Framed(req), consumed) => {
                assert_eq!(req.target, "/healthz");
                assert_eq!(consumed, 4 + payload.len());
            }
            _ => panic!("expected a framed request"),
        }
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut c = test_conn();
        c.rbuf.extend_from_slice(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        match c.try_parse() {
            ParseStep::Request(ParsedRequest::Http(r), _) => assert_eq!(r.path, "/a"),
            _ => panic!("first request"),
        }
        assert!(!c.rbuf.is_empty(), "second request must remain buffered");
        match c.try_parse() {
            ParseStep::Request(ParsedRequest::Http(r), _) => assert_eq!(r.path, "/b"),
            _ => panic!("second request"),
        }
        assert!(c.rbuf.is_empty());
    }

    #[test]
    fn malformed_http_is_a_parse_error() {
        let mut c = test_conn();
        c.rbuf.extend_from_slice(b"NOT A REQUEST\r\n\r\n");
        match c.try_parse() {
            ParseStep::Error(resp) => assert_eq!(resp.status, 400),
            _ => panic!("expected an error step"),
        }
    }

    #[test]
    fn enqueue_response_renders_http_with_trace() {
        let mut c = test_conn();
        c.proto = Proto::Http;
        c.trace_id = 7;
        let resp = Response::error(429, "overloaded", "busy");
        c.enqueue_response(&resp, true);
        assert_eq!(c.phase, Phase::Writing);
        assert!(!c.close_after_write, "keep-alive shed");
        let text = String::from_utf8_lossy(&c.wbuf);
        assert!(text.contains("HTTP/1.1 429"), "{text}");
        assert!(text.contains("retry-after: 1"), "{text}");
        assert!(text.contains("x-stj-trace-id: 7"), "{text}");
        assert!(text.contains("connection: keep-alive"), "{text}");
    }

    #[test]
    fn enqueue_response_renders_frame() {
        let mut c = test_conn();
        c.proto = Proto::Framed;
        let resp = Response {
            status: 200,
            content_type: "application/json",
            body: b"{}".to_vec(),
            close: false,
            truncated: false,
        };
        c.enqueue_response(&resp, true);
        assert_eq!(&c.wbuf[..4], &(6u32).to_le_bytes(), "len('200\\n{{}}')");
        assert_eq!(&c.wbuf[4..], b"200\n{}");
    }
}
