//! A deliberately minimal HTTP/1.1 server-side codec.
//!
//! The build environment is offline, so `stj serve` cannot lean on
//! hyper or tiny_http; this module implements exactly the subset the
//! service needs — request line + headers + `Content-Length` bodies,
//! keep-alive, and fixed-length responses — hardened against hostile
//! input: oversized heads (431) and bodies (413) are bounded *before*
//! allocation catches up with the peer, and fragmented (byte-at-a-time)
//! or truncated requests must never panic.

use std::io::{self, Read, Write};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded `key=value` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly before sending anything.
    Closed,
    /// Transport error (includes read timeouts and mid-request
    /// disconnects).
    Io(io::Error),
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared body length exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Structurally invalid request → 400; payload says what broke.
    Malformed(String),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(e) => write!(f, "io error: {e}"),
            RecvError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            RecvError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            RecvError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

/// Reads one request from `stream`.
///
/// Tolerates arbitrary fragmentation: the head is accumulated until the
/// blank line, and any body bytes that arrived in the same segments are
/// carried over before the exact remainder is read. Bytes glued past
/// the declared body (a pipelined next request) are rejected — this
/// blocking entry point serves one request at a time; the reactor's
/// buffer-based [`parse_request`] keeps leftovers for the next parse
/// instead.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RecvError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some((req, consumed)) = parse_request(&buf)? {
            if buf.len() > consumed {
                return Err(RecvError::Malformed(
                    "body longer than content-length".into(),
                ));
            }
            return Ok(req);
        }
        let n = stream.read(&mut chunk).map_err(RecvError::Io)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                RecvError::Closed
            } else if find_head_end(&buf).is_none() {
                RecvError::Malformed("eof inside request head".into())
            } else {
                RecvError::Malformed("eof inside request body".into())
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or
/// `Ok(Some((request, consumed)))` when a complete request occupies
/// `buf[..consumed]` — the caller keeps any remaining bytes for the
/// next parse, which is what makes the reactor tolerant of pipelined
/// clients. Size caps are enforced before the body accumulates: an
/// oversized head or declared body errors as soon as it is detectable.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, RecvError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(RecvError::HeadTooLarge);
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::Malformed("head is not utf-8".into()))?
        .to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RecvError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("missing http version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::Malformed(format!(
                "header without colon: {line:?}"
            )));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| RecvError::Malformed(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RecvError::BodyTooLarge);
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[body_start..total].to_vec();

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw)
        .ok_or_else(|| RecvError::Malformed("bad percent-encoding in path".into()))?;
    let mut query = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k)
                .ok_or_else(|| RecvError::Malformed("bad percent-encoding in query".into()))?;
            let v = percent_decode(v)
                .ok_or_else(|| RecvError::Malformed("bad percent-encoding in query".into()))?;
            query.push((k, v));
        }
    }

    Ok(Some((
        Request {
            method,
            path,
            query,
            body,
            keep_alive,
        },
        total,
    )))
}

/// Position of the `\r\n\r\n` separator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+` (as space). Returns `None` on invalid
/// escapes or non-utf8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') && !s.contains('+') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// The reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<usize> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(head.len() + body.len())
}

/// Renders the head of a streaming response: no `content-length`, the
/// connection always closes, and the body is delimited by EOF. Used by
/// `/v1/discover`, whose output is produced in chunks under
/// write-readiness backpressure rather than buffered whole.
pub fn streaming_head(status: u16, content_type: &str, extra_headers: &[(&str, &str)]) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\nconnection: close\r\n",
        reason(status),
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ByteAtATime<'a>(&'a [u8], usize);
    impl Read for ByteAtATime<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.1 >= self.0.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[self.1];
            self.1 += 1;
            Ok(1)
        }
    }

    #[test]
    fn parses_fragmented_request_with_body() {
        let raw = b"POST /v1/relate?dataset=0&limit=5 HTTP/1.1\r\ncontent-length: 7\r\n\r\npayload";
        let req = read_request(&mut ByteAtATime(raw, 0)).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/relate");
        assert_eq!(req.query_param("dataset"), Some("0"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.body, b"payload");
        assert!(req.keep_alive);
    }

    #[test]
    fn percent_decoding_in_query() {
        let raw = b"GET /v1/pair?left=lakes%201&i=3 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut &raw[..]).expect("parse");
        assert_eq!(req.query_param("left"), Some("lakes 1"));
        assert!(!req.keep_alive);
    }

    #[test]
    fn oversized_head_is_bounded() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES + 100));
        assert!(matches!(
            read_request(&mut &raw[..]),
            Err(RecvError::HeadTooLarge)
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_read() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(RecvError::BodyTooLarge)
        ));
    }

    #[test]
    fn truncated_requests_do_not_panic() {
        let full = b"POST /v1/relate HTTP/1.1\r\ncontent-length: 20\r\n\r\nshort";
        for cut in 0..full.len() {
            let r = read_request(&mut &full[..cut]);
            assert!(r.is_err(), "cut at {cut} should not yield a request");
        }
    }

    #[test]
    fn parse_request_is_incremental() {
        let raw = b"POST /v1/relate?dataset=0 HTTP/1.1\r\ncontent-length: 7\r\n\r\npayload";
        for cut in 0..raw.len() {
            assert!(
                parse_request(&raw[..cut]).expect("prefix parses").is_none(),
                "cut at {cut} must want more bytes"
            );
        }
        let (req, consumed) = parse_request(raw).expect("parse").expect("complete");
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"payload");
    }

    #[test]
    fn parse_request_leaves_pipelined_bytes() {
        let mut raw = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
        raw.extend_from_slice(b"GET /stats HTTP/1.1\r\n\r\n");
        let (first, consumed) = parse_request(&raw).expect("parse").expect("complete");
        assert_eq!(first.path, "/healthz");
        let (second, consumed2) = parse_request(&raw[consumed..])
            .expect("parse")
            .expect("complete");
        assert_eq!(second.path, "/stats");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn streaming_head_has_no_content_length() {
        let head = streaming_head(200, "application/x-ndjson", &[("x-a", "b")]);
        let text = std::str::from_utf8(&head).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("x-a: b\r\n"), "{text}");
        assert!(!text.contains("content-length"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "{text}");
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(
            read_request(&mut &b""[..]),
            Err(RecvError::Closed)
        ));
    }

    #[test]
    fn garbage_is_malformed_not_panic() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET / SPDY/9\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"[..],
            &b"GET /%zz HTTP/1.1\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"[..],
            &b"\xff\xfe\xfd\xfc\r\n\r\n"[..],
        ] {
            assert!(matches!(
                read_request(&mut &raw[..]),
                Err(RecvError::Malformed(_))
            ));
        }
    }
}
