//! A small blocking client for the service, speaking either transport.
//!
//! Shared by `stj query`, the end-to-end tests, and `serve_bench`, so
//! all three exercise the same wire code. The client keeps its
//! connection alive across requests and transparently reconnects when
//! the server closed it (join responses and drains do).

use crate::framing;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A keep-alive client for one server address.
pub struct Client {
    addr: String,
    framed: bool,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`host:port`). `framed` selects the binary
    /// framing transport instead of HTTP.
    pub fn new(addr: impl Into<String>, framed: bool) -> Client {
        Client {
            addr: addr.into(),
            framed,
            stream: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let conn = TcpStream::connect(&self.addr)?;
            conn.set_read_timeout(Some(Duration::from_secs(30)))?;
            conn.set_write_timeout(Some(Duration::from_secs(30)))?;
            conn.set_nodelay(true)?;
            let mut reader = BufReader::new(conn);
            if self.framed {
                reader.get_mut().write_all(&framing::MAGIC)?;
            }
            self.stream = Some(reader);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the response: `(status, body)`.
    ///
    /// `target` is the path with query string (`/v1/pair?left=...`).
    /// Retries once on a fresh connection if the kept-alive one turned
    /// out to be dead.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        let had_live_conn = self.stream.is_some();
        match self.request_once(method, target, body) {
            Err(_) if had_live_conn => {
                self.stream = None;
                self.request_once(method, target, body)
            }
            other => other,
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        let framed = self.framed;
        let stream = self.connect()?;
        if framed {
            let r = framing::write_request_frame(stream.get_mut(), method, target, body)
                .and_then(|()| framing::read_response_frame(stream));
            if r.is_err() {
                self.stream = None;
            }
            r
        } else {
            match http_request(stream, method, target, body) {
                Ok((status, body, close)) => {
                    // Join responses and server drains close the
                    // connection; drop ours so the next request
                    // reconnects.
                    if close {
                        self.stream = None;
                    }
                    Ok((status, body))
                }
                Err(e) => {
                    self.stream = None;
                    Err(e)
                }
            }
        }
    }

    /// Drops the kept-alive connection (next request reconnects).
    pub fn reset(&mut self) {
        self.stream = None;
    }
}

/// One HTTP request/response on an established connection. The third
/// element reports whether the server closed the connection.
fn http_request(
    stream: &mut BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>, bool)> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: stj\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.get_mut().write_all(head.as_bytes())?;
    stream.get_mut().write_all(body)?;
    stream.get_mut().flush()?;

    let mut status_line = String::new();
    stream.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

    let mut content_length: usize = 0;
    let mut close = false;
    loop {
        let mut line = String::new();
        stream.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok((status, body, close))
}
