//! A small blocking client for the service, speaking either transport.
//!
//! Shared by `stj query`, the end-to-end tests, and `serve_bench`, so
//! all three exercise the same wire code. The client keeps its
//! connection alive across requests and transparently reconnects when
//! the server closed it (join responses and drains do).

use crate::framing;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A keep-alive client for one server address.
pub struct Client {
    addr: String,
    framed: bool,
    stream: Option<BufReader<TcpStream>>,
    retry_after: Option<u64>,
}

impl Client {
    /// A client for `addr` (`host:port`). `framed` selects the binary
    /// framing transport instead of HTTP.
    pub fn new(addr: impl Into<String>, framed: bool) -> Client {
        Client {
            addr: addr.into(),
            framed,
            stream: None,
            retry_after: None,
        }
    }

    /// The `Retry-After` seconds from the last response, if the server
    /// sent one (429 sheds do). Framed 429s imply the protocol-fixed
    /// 1-second hint.
    pub fn retry_after(&self) -> Option<u64> {
        self.retry_after
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let conn = TcpStream::connect(&self.addr)?;
            conn.set_read_timeout(Some(Duration::from_secs(30)))?;
            conn.set_write_timeout(Some(Duration::from_secs(30)))?;
            conn.set_nodelay(true)?;
            let mut reader = BufReader::new(conn);
            if self.framed {
                reader.get_mut().write_all(&framing::MAGIC)?;
            }
            self.stream = Some(reader);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the response: `(status, body)`.
    ///
    /// `target` is the path with query string (`/v1/pair?left=...`).
    /// Retries once on a fresh connection if the kept-alive one turned
    /// out to be dead.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        let had_live_conn = self.stream.is_some();
        match self.request_once(method, target, body) {
            Err(_) if had_live_conn => {
                self.stream = None;
                self.request_once(method, target, body)
            }
            other => other,
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        let framed = self.framed;
        self.retry_after = None;
        let stream = self.connect()?;
        if framed {
            let r = framing::write_request_frame(stream.get_mut(), method, target, body)
                .and_then(|()| framing::read_response_frame(stream));
            match &r {
                Ok((429, _)) => self.retry_after = Some(1),
                Err(_) => self.stream = None,
                _ => {}
            }
            r
        } else {
            match http_request(stream, method, target, body) {
                Ok((status, body, close, retry_after)) => {
                    // Join responses and server drains close the
                    // connection; drop ours so the next request
                    // reconnects.
                    if close {
                        self.stream = None;
                    }
                    self.retry_after = retry_after;
                    Ok((status, body))
                }
                Err(e) => {
                    self.stream = None;
                    Err(e)
                }
            }
        }
    }

    /// Drops the kept-alive connection (next request reconnects).
    pub fn reset(&mut self) {
        self.stream = None;
    }
}

/// One HTTP request/response on an established connection. The third
/// element reports whether the server closed the connection; the
/// fourth carries a `Retry-After` seconds hint if the server sent one.
///
/// Responses without a `content-length` and with `connection: close`
/// are read to EOF — that is how the server delimits streamed bodies
/// (`/v1/discover`).
fn http_request(
    stream: &mut BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>, bool, Option<u64>)> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: stj\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.get_mut().write_all(head.as_bytes())?;
    stream.get_mut().write_all(body)?;
    stream.get_mut().flush()?;

    let mut status_line = String::new();
    stream.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

    let mut content_length: Option<usize> = None;
    let mut close = false;
    let mut retry_after = None;
    loop {
        let mut line = String::new();
        stream.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?);
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            stream.read_exact(&mut body)?;
            body
        }
        // Streamed body: EOF-delimited (the server set connection:
        // close and writes until the stream is done).
        None if close => {
            let mut body = Vec::new();
            stream.read_to_end(&mut body)?;
            body
        }
        None => Vec::new(),
    };
    Ok((status, body, close, retry_after))
}
