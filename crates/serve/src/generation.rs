//! Dataset generations: the hot-swap cell behind `POST
//! /v1/admin/reload` and SIGHUP.
//!
//! The server's datasets live in an immutable [`Generation`] behind an
//! `Arc`. Every request clones the `Arc` once at dispatch and resolves
//! datasets through it, so a concurrent swap is invisible to in-flight
//! work: old requests drain on the old generation, and the old arenas
//! (including their file mappings) are released when the last clone
//! drops — no locks are held across geometry work, and nothing is ever
//! unmapped under a live reader.
//!
//! A reload loads the new files *outside* any lock (loading can take
//! seconds for a large STJD v2 file), then flips the `RwLock<Arc<..>>`
//! in a few instructions. Reloads are serialized by a dedicated mutex
//! so two concurrent `reload` calls cannot interleave path updates and
//! id allocation; the read path never touches that mutex.
//!
//! Files are expected to be replaced via `rename(2)` (the standard
//! atomic-deploy move): the old inode stays alive under the old
//! mapping until the drain finishes, so a swap never `SIGBUS`es an
//! in-flight request. Overwriting a dataset file in place while it is
//! being served is the same hazard it always was (see
//! `stj-store::Mapping`).

use crate::{load_datasets, LoadedDataset};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One immutable set of loaded datasets, tagged with a process-unique
/// id (1-based; exported in `/stats` and `/metrics`).
pub struct Generation {
    /// Generation id: 1 for the startup load, +1 per successful reload.
    pub id: u64,
    /// Loaded datasets, in `--data` order.
    pub datasets: Vec<LoadedDataset>,
}

impl Generation {
    /// Resolves a dataset by name, or by decimal index into the
    /// `--data` order.
    pub fn find_dataset(&self, key: &str) -> Option<(usize, &LoadedDataset)> {
        if let Some((i, ds)) = self
            .datasets
            .iter()
            .enumerate()
            .find(|(_, d)| d.name == key)
        {
            return Some((i, ds));
        }
        let i: usize = key.parse().ok()?;
        self.datasets.get(i).map(|d| (i, d))
    }
}

/// The swappable generation holder plus the reload machinery.
pub struct GenerationCell {
    current: RwLock<Arc<Generation>>,
    next_id: AtomicU64,
    /// Serializes reloads; never taken on the read path.
    reload_lock: Mutex<()>,
    /// The dataset file paths a reload re-reads. Empty for in-memory
    /// servers (tests, benches), which makes reload unavailable unless
    /// the request body supplies paths.
    paths: Mutex<Vec<PathBuf>>,
}

impl GenerationCell {
    /// Wraps the startup datasets as generation 1.
    pub fn new(datasets: Vec<LoadedDataset>) -> GenerationCell {
        GenerationCell {
            current: RwLock::new(Arc::new(Generation { id: 1, datasets })),
            next_id: AtomicU64::new(2),
            reload_lock: Mutex::new(()),
            paths: Mutex::new(Vec::new()),
        }
    }

    /// The live generation. Cheap (one `RwLock` read + `Arc` clone);
    /// callers hold the `Arc` for the duration of a request so the
    /// generation cannot be unloaded under them.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().expect("generation lock"))
    }

    /// The live generation's id.
    pub fn id(&self) -> u64 {
        self.current().id
    }

    /// Sets the file paths reloads re-read (the `--data` arguments).
    pub fn set_paths(&self, paths: Vec<PathBuf>) {
        *self.paths.lock().expect("paths lock") = paths;
    }

    /// The configured reload paths.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.paths.lock().expect("paths lock").clone()
    }

    /// Loads a new generation and flips it in.
    ///
    /// `override_paths` (from a reload request body) replaces the
    /// configured path set for this and future reloads; `None` re-reads
    /// the configured paths. On any load error the old generation stays
    /// live and untouched.
    pub fn reload(&self, override_paths: Option<Vec<PathBuf>>) -> Result<Arc<Generation>, String> {
        let _serialized = self.reload_lock.lock().expect("reload lock");
        let paths = match &override_paths {
            Some(p) if !p.is_empty() => p.clone(),
            Some(_) | None => {
                let configured = self.paths();
                if configured.is_empty() {
                    return Err(
                        "no dataset paths configured (in-memory datasets cannot be reloaded)"
                            .to_string(),
                    );
                }
                configured
            }
        };
        // The slow part — file reads, index builds — runs outside the
        // swap lock; readers keep flowing on the old generation.
        let datasets = load_datasets(&paths)?;
        let fresh = Arc::new(Generation {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            datasets,
        });
        if let Some(p) = override_paths {
            if !p.is_empty() {
                self.set_paths(p);
            }
        }
        *self.current.write().expect("generation lock") = Arc::clone(&fresh);
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::{Polygon, Rect};
    use stj_index::Tiling;
    use stj_raster::Grid;

    fn loaded(name: &str, boxes: usize) -> LoadedDataset {
        let grid = Grid::new(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 6);
        let polys: Vec<Polygon> = (0..boxes)
            .map(|i| {
                let o = i as f64 * 5.0;
                Polygon::rect(Rect::from_coords(o, o, o + 4.0, o + 4.0))
            })
            .collect();
        let arena = stj_core::Dataset::build(name, polys, &grid).to_arena();
        let tiling = Tiling::for_probes(arena.mbrs());
        LoadedDataset {
            name: name.to_string(),
            arena,
            grid,
            tiling,
        }
    }

    #[test]
    fn startup_generation_is_one() {
        let cell = GenerationCell::new(vec![loaded("a", 3)]);
        let g = cell.current();
        assert_eq!(g.id, 1);
        assert_eq!(cell.id(), 1);
        assert_eq!(g.find_dataset("a").map(|(i, _)| i), Some(0));
        assert_eq!(g.find_dataset("0").map(|(i, _)| i), Some(0));
        assert!(g.find_dataset("nope").is_none());
    }

    #[test]
    fn reload_without_paths_is_an_error_and_keeps_generation() {
        let cell = GenerationCell::new(vec![loaded("a", 3)]);
        let err = match cell.reload(None) {
            Ok(_) => panic!("reload without paths must fail"),
            Err(e) => e,
        };
        assert!(err.contains("no dataset paths"), "{err}");
        assert_eq!(cell.id(), 1, "failed reload must not bump the id");
    }

    #[test]
    fn old_generation_survives_while_held() {
        let cell = GenerationCell::new(vec![loaded("a", 3)]);
        let held = cell.current();
        // Simulate a successful swap by writing a fresh generation in
        // directly (file-backed reloads are covered end-to-end).
        *cell.current.write().unwrap() = Arc::new(Generation {
            id: 2,
            datasets: vec![loaded("a", 5)],
        });
        assert_eq!(cell.id(), 2);
        assert_eq!(held.id, 1);
        assert_eq!(held.datasets[0].arena.len(), 3, "drained requests keep the old data");
        assert_eq!(cell.current().datasets[0].arena.len(), 5);
    }
}
