//! `stj-bench`: the benchmark harness regenerating every table and
//! figure of the paper's evaluation (Sec 4).
//!
//! Binaries (each prints one table/figure; `repro_all` runs the lot):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2` | Table 2 — dataset stats and storage footprints |
//! | `table3` | Table 3 — candidate pairs per combination |
//! | `fig7` | Figure 7(a)/(b) — throughput and % undetermined per method |
//! | `fig8` | Table 4 + Figure 8(a)/(b) — complexity-level scalability |
//! | `table5` | Table 5 — find relation vs relate_p throughput |
//! | `fig9` | Figure 9 — the case-study pair |
//! | `repro_all` | everything above, in sequence |
//!
//! Criterion microbenches live under `benches/`: interval-list
//! relations, Hilbert encoding, DE-9IM relate by complexity, and the
//! per-MBR-class pipeline.
//!
//! Set `STJ_SCALE` to grow/shrink the synthetic datasets (default 0.25;
//! see DESIGN.md §7 for the scaling rationale).
//!
//! `repro_all` additionally writes machine-readable telemetry
//! (`stj-bench/v1`): per combination, per-method throughput and outcome
//! stats plus a profiled P+C pass with per-stage latency histograms.
//! Default path `BENCH_PR1.json`; override with `STJ_BENCH_JSON`.

pub mod experiments;
pub mod harness;

#[cfg(test)]
mod smoke_tests;
