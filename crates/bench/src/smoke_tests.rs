//! Smoke tests: every experiment function runs end-to-end at a tiny
//! scale. Keeps the table/figure binaries from bitrotting without paying
//! bench-scale runtimes in `cargo test`.

#[cfg(test)]
mod tests {
    use crate::experiments::{self, ComboReport};
    use crate::harness::{profile_pc, run_method, ComboSetup, METHODS};
    use stj_datagen::ComboId;

    const TINY: f64 = 0.004;

    #[test]
    fn table2_runs() {
        experiments::table2(TINY);
    }

    #[test]
    fn table3_runs() {
        experiments::table3(TINY);
    }

    #[test]
    fn fig8_and_table5_run_on_shared_setup() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        experiments::fig8_with(&setup);
        experiments::table5_with(&setup);
    }

    #[test]
    fn fig9_runs() {
        experiments::fig9();
    }

    #[test]
    fn bench_report_has_the_stj_bench_v1_shape() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        let results: Vec<_> = METHODS.iter().map(|m| run_method(&setup, m)).collect();
        let profile = profile_pc(&setup);
        // The profiled pass must agree with the unprofiled P+C stats.
        let pc = &results[METHODS.iter().position(|m| m.name == "P+C").unwrap()];
        assert_eq!(profile.pairs_decided(), pc.stats.pairs);

        let report = ComboReport {
            combo: setup.combo,
            pairs: setup.pairs.len(),
            results,
            pc_profile: Some(profile),
        };
        let doc = experiments::bench_report(&[report], 0.01).render();
        for key in [
            "\"schema\": \"stj-bench/v1\"",
            "\"grid_order\"",
            "\"threads\"",
            "\"combos\"",
            "\"methods\"",
            "\"throughput_pairs_per_sec\"",
            "\"total_ns\"",
            "\"pc_profile\"",
            "\"mbr_classify\"",
            "\"intermediate_filter\"",
            "\"refinement\"",
            "\"p99_ns\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn bench_output_path_resolves_files_and_directories() {
        use crate::experiments::resolve_bench_output;
        // Unset: the binary's default name, in the working directory.
        assert_eq!(
            resolve_bench_output(None, "BENCH_PR5.json"),
            "BENCH_PR5.json"
        );
        // A plain value is taken verbatim as the output file.
        assert_eq!(
            resolve_bench_output(Some("out/custom.json"), "BENCH_PR5.json"),
            "out/custom.json"
        );
        // A trailing slash always means "directory", even if it does not
        // exist yet at resolution time.
        assert_eq!(
            resolve_bench_output(Some("artifacts/"), "BENCH_PR5.json"),
            "artifacts/BENCH_PR5.json"
        );
        // An existing directory without the trailing slash works too, so
        // one `STJ_BENCH_JSON=dir` serves every bench binary at once.
        let dir = std::env::temp_dir().join("stj-bench-output-test");
        std::fs::create_dir_all(&dir).unwrap();
        let resolved = resolve_bench_output(dir.to_str(), "BENCH_PR4.json");
        assert_eq!(resolved, dir.join("BENCH_PR4.json").display().to_string());
    }
}
