//! Smoke tests: every experiment function runs end-to-end at a tiny
//! scale. Keeps the table/figure binaries from bitrotting without paying
//! bench-scale runtimes in `cargo test`.

#[cfg(test)]
mod tests {
    use crate::experiments;
    use crate::harness::ComboSetup;
    use stj_datagen::ComboId;

    const TINY: f64 = 0.004;

    #[test]
    fn table2_runs() {
        experiments::table2(TINY);
    }

    #[test]
    fn table3_runs() {
        experiments::table3(TINY);
    }

    #[test]
    fn fig8_and_table5_run_on_shared_setup() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        experiments::fig8_with(&setup);
        experiments::table5_with(&setup);
    }

    #[test]
    fn fig9_runs() {
        experiments::fig9();
    }
}
