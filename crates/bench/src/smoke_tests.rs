//! Smoke tests: every experiment function runs end-to-end at a tiny
//! scale. Keeps the table/figure binaries from bitrotting without paying
//! bench-scale runtimes in `cargo test`.

#[cfg(test)]
mod tests {
    use crate::experiments::{self, ComboReport};
    use crate::harness::{profile_pc, run_method, ComboSetup, METHODS};
    use stj_datagen::ComboId;

    const TINY: f64 = 0.004;

    #[test]
    fn table2_runs() {
        experiments::table2(TINY);
    }

    #[test]
    fn table3_runs() {
        experiments::table3(TINY);
    }

    #[test]
    fn fig8_and_table5_run_on_shared_setup() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        experiments::fig8_with(&setup);
        experiments::table5_with(&setup);
    }

    #[test]
    fn fig9_runs() {
        experiments::fig9();
    }

    #[test]
    fn bench_report_has_the_stj_bench_v1_shape() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        let results: Vec<_> = METHODS.iter().map(|m| run_method(&setup, m)).collect();
        let profile = profile_pc(&setup);
        // The profiled pass must agree with the unprofiled P+C stats.
        let pc = &results[METHODS.iter().position(|m| m.name == "P+C").unwrap()];
        assert_eq!(profile.pairs_decided(), pc.stats.pairs);

        let report = ComboReport {
            combo: setup.combo,
            pairs: setup.pairs.len(),
            results,
            pc_profile: Some(profile),
        };
        let doc = experiments::bench_report(&[report], 0.01).render();
        for key in [
            "\"schema\": \"stj-bench/v1\"",
            "\"grid_order\"",
            "\"threads\"",
            "\"combos\"",
            "\"methods\"",
            "\"throughput_pairs_per_sec\"",
            "\"total_ns\"",
            "\"pc_profile\"",
            "\"mbr_classify\"",
            "\"intermediate_filter\"",
            "\"refinement\"",
            "\"p99_ns\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }
}
