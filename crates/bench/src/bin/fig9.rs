//! Regenerates the paper's Figure 9 case study. See `stj-bench` docs.

fn main() {
    stj_bench::experiments::fig9();
}
