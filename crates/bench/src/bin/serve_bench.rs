//! Serving benchmark: throughput and tail latency of the `stj-serve`
//! request pipeline at 1, 4, and 16 concurrent connections.
//!
//! The server runs in-process on a loopback port with deadlines
//! disabled, so the numbers measure the query pipeline plus transport —
//! not load shedding. Each client thread drives a framed
//! [`stj_serve::Client`] (keep-alive, length-prefixed frames) through a
//! deterministic probe schedule:
//!
//! - **relate** — ad-hoc WKT probes drawn from a fixed pool, revisited
//!   often enough that the probe cache sees a realistic mix of hits and
//!   misses (the per-run hit counts are reported);
//! - **pair** — stored-object lookups, the cheapest full-pipeline
//!   request, which bounds the transport + dispatch overhead.
//!
//! Every response is sanity-checked (status 200, non-empty body) and
//! per-request latency goes into a thread-private [`stj_obs::Histogram`]
//! merged after the run, so recording never serializes the clients.
//!
//! Run with:
//! ```text
//! cargo run --release -p stj-bench --bin serve_bench
//! ```
//!
//! Telemetry (`stj-bench/v1`) goes to `BENCH_PR5.json`, or the path in
//! `$STJ_BENCH_JSON`. `$STJ_SERVE_BENCH_SCALE` scales the dataset
//! (default 0.1); `$STJ_SERVE_BENCH_REQS` sets the request count per
//! connection per run (default 400).

use std::time::Instant;
use stj_core::{AdaptiveMode, Dataset};
use stj_datagen::{generate, DatasetId};
use stj_geom::wkt::polygon_to_wkt;
use stj_geom::Rect;
use stj_index::Tiling;
use stj_obs::{Histogram, Json};
use stj_raster::Grid;
use stj_serve::{Client, LoadedDataset, ServeConfig, ServeCtx, Server};

/// One endpoint's measured run at a given connection count.
struct RunSample {
    endpoint: &'static str,
    connections: usize,
    requests: u64,
    wall_ns: u64,
    hist: Histogram,
    cache_hits_delta: u64,
}

fn run_clients(
    addr: &str,
    connections: usize,
    requests_per_conn: u64,
    targets: &[(String, Vec<u8>)],
) -> (u64, u64, Histogram) {
    let t = Instant::now();
    let per_thread: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, true);
                    let mut hist = Histogram::new();
                    for i in 0..requests_per_conn {
                        // Offset each connection's schedule so concurrent
                        // clients are not in lock-step on one cache entry.
                        let idx = ((i + c as u64 * 7) % targets.len() as u64) as usize;
                        let (target, body) = &targets[idx];
                        let method = if body.is_empty() { "GET" } else { "POST" };
                        let t0 = Instant::now();
                        let (status, resp) = client
                            .request(method, target, body)
                            .expect("bench request failed");
                        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        assert_eq!(status, 200, "bench request got {status}: {target}");
                        assert!(!resp.is_empty(), "empty response body: {target}");
                        hist.record(ns);
                    }
                    hist
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let mut merged = Histogram::new();
    for h in &per_thread {
        merged.merge(h);
    }
    (connections as u64 * requests_per_conn, wall_ns, merged)
}

fn main() {
    let scale: f64 = std::env::var("STJ_SERVE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let requests_per_conn: u64 = std::env::var("STJ_SERVE_BENCH_REQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400)
        .max(1);
    let build_threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // Lakes probed against parks: the same correlated pairing the join
    // benches use, so relate probes actually hit candidates.
    let parks = generate(DatasetId::OPE, scale);
    let lakes = generate(DatasetId::OLE, scale);
    let mut extent = Rect::empty();
    for p in parks.iter().chain(&lakes) {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 12);

    // Probe pool: 64 lake polygons as ad-hoc WKT, reused round-robin so
    // the cache sees repeats.
    let probes: Vec<String> = lakes
        .iter()
        .step_by((lakes.len() / 64).max(1))
        .take(64)
        .map(polygon_to_wkt)
        .collect();

    let arena = Dataset::build_parallel("OPE", parks, &grid, build_threads).to_arena();
    let n = arena.len();
    let tiling = Tiling::for_probes(arena.mbrs());
    let datasets = vec![LoadedDataset {
        name: "OPE".to_string(),
        arena,
        grid,
        tiling,
    }];
    eprintln!("serving {n} objects, {} probe polygons", probes.len());

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 0,
        queue_depth: 256,
        cache_mb: 64,
        deadline_ms: 0,
        max_links: 100_000,
        adaptive: AdaptiveMode::On,
    };
    let server = Server::bind(ServeCtx::new(config, datasets)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_flag();
    let ctx = server.ctx();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    eprintln!("server on {addr}");

    // Request schedules. Bodies ride in the frame payload for relate;
    // pair is a pure GET with query parameters.
    let relate_targets: Vec<(String, Vec<u8>)> = probes
        .iter()
        .map(|wkt| {
            (
                "/v1/relate?dataset=OPE&limit=16".to_string(),
                wkt.clone().into_bytes(),
            )
        })
        .collect();
    let pair_targets: Vec<(String, Vec<u8>)> = (0..64u64)
        .map(|i| {
            let l = (i * 131) % n as u64;
            let r = (i * 137 + 1) % n as u64;
            (
                format!("/v1/pair?left=OPE&i={l}&right=OPE&j={r}"),
                Vec::new(),
            )
        })
        .collect();

    let mut samples = Vec::new();
    for connections in [1usize, 4, 16] {
        for (endpoint, targets) in [("relate", &relate_targets), ("pair", &pair_targets)] {
            let hits0 = ctx.cache.hits.get();
            let (requests, wall_ns, hist) =
                run_clients(&addr, connections, requests_per_conn, targets);
            let cache_hits_delta = ctx.cache.hits.get() - hits0;
            let req_per_sec = requests as f64 / (wall_ns as f64 / 1e9).max(1e-12);
            eprintln!(
                "{endpoint:<7} x{connections:<2}  {:>8.0} req/s  p50 {:>7.1} us  p99 {:>8.1} us  ({} cache hits)",
                req_per_sec,
                hist.p50() as f64 / 1e3,
                hist.p99() as f64 / 1e3,
                cache_hits_delta,
            );
            samples.push(RunSample {
                endpoint,
                connections,
                requests,
                wall_ns,
                hist,
                cache_hits_delta,
            });
        }
    }

    shutdown.trigger();
    server_thread.join().expect("server thread");
    eprintln!("server drained");

    let entries: Vec<Json> = samples
        .iter()
        .map(|s| {
            let req_per_sec = s.requests as f64 / (s.wall_ns as f64 / 1e9).max(1e-12);
            Json::object([
                ("endpoint", Json::str(s.endpoint)),
                ("connections", Json::from(s.connections)),
                ("requests", Json::U64(s.requests)),
                ("wall_ns", Json::U64(s.wall_ns)),
                ("req_per_sec", Json::F64(req_per_sec)),
                ("p50_ns", Json::U64(s.hist.p50())),
                ("p95_ns", Json::U64(s.hist.p95())),
                ("p99_ns", Json::U64(s.hist.p99())),
                ("max_ns", Json::U64(s.hist.max())),
                ("mean_ns", Json::F64(s.hist.mean())),
                ("cache_hits", Json::U64(s.cache_hits_delta)),
            ])
        })
        .collect();
    let report = Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("benchmark", Json::str("serve_throughput")),
        ("dataset", Json::str("OPE")),
        ("objects", Json::from(n)),
        ("probe_pool", Json::from(probes.len())),
        ("requests_per_connection", Json::U64(requests_per_conn)),
        ("transport", Json::str("framed")),
        ("runs", Json::Arr(entries)),
    ]);
    let path = stj_bench::experiments::bench_output_path("BENCH_PR5.json");
    std::fs::write(&path, report.render()).expect("write bench json");
    eprintln!("wrote {path}");
}
