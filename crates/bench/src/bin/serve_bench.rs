//! Serving benchmark: throughput and tail latency of the `stj-serve`
//! request pipeline, closed-loop at 1/4/16 connections and open-loop
//! at 64/256 connections.
//!
//! The server runs in-process on a loopback port with deadlines
//! disabled. Two arrival disciplines:
//!
//! - **closed-loop** (`mode=closed`): each connection fires its next
//!   request the moment the previous response lands — measures the
//!   pipeline + transport floor;
//! - **open-loop** (`mode=open`): requests follow a fixed global
//!   arrival schedule (request `k` of connection `c` fires at
//!   `start + (k*conns + c)/rate`), latency is measured from the
//!   *scheduled* arrival (no coordinated omission), and `429` sheds
//!   are counted instead of asserted — the reactor's bounded queue is
//!   part of what is being measured. Relate runs assert a zero shed
//!   rate at the default queue depth.
//!
//! Endpoints:
//!
//! - **relate** — ad-hoc WKT probes drawn from a fixed pool, revisited
//!   often enough that the probe cache sees a realistic mix of hits and
//!   misses (the per-run hit counts are reported);
//! - **pair** — stored-object lookups, the cheapest full-pipeline
//!   request, which bounds the transport + dispatch overhead.
//!
//! Per-request latency goes into a thread-private
//! [`stj_obs::Histogram`] merged after the run, so recording never
//! serializes the clients.
//!
//! Run with:
//! ```text
//! cargo run --release -p stj-bench --bin serve_bench
//! ```
//!
//! Telemetry (`stj-bench/v1`) goes to `BENCH_PR10.json`, or the path in
//! `$STJ_BENCH_JSON`. `$STJ_SERVE_BENCH_SCALE` scales the dataset
//! (default 0.1); `$STJ_SERVE_BENCH_REQS` sets the closed-loop request
//! count per connection per run (default 400);
//! `$STJ_SERVE_BENCH_OPEN_REQS` the open-loop count (default 40);
//! `$STJ_SERVE_BENCH_RATE` the open-loop arrival rate in req/s
//! (default 2000).

use std::time::Instant;
use stj_core::{AdaptiveMode, Dataset};
use stj_datagen::{generate, DatasetId};
use stj_geom::wkt::polygon_to_wkt;
use stj_geom::Rect;
use stj_index::Tiling;
use stj_obs::{Histogram, Json};
use stj_raster::Grid;
use stj_serve::{Client, LoadedDataset, ServeConfig, ServeCtx, Server};

/// One endpoint's measured run at a given connection count.
struct RunSample {
    endpoint: &'static str,
    mode: &'static str,
    transport: &'static str,
    connections: usize,
    requests: u64,
    sheds: u64,
    wall_ns: u64,
    hist: Histogram,
    cache_hits_delta: u64,
}

/// Open-loop drive: `connections` threads, one keep-alive client each,
/// requests fired on the global arrival schedule. Every connection is
/// established and sends one unmeasured warm-up request before the
/// clock starts (a barrier separates setup from the schedule), so
/// connect/spawn churn can't clump the first arrivals into a burst.
/// Latency is measured from the scheduled arrival time; 429s count as
/// sheds.
fn run_open_loop(
    addr: &str,
    framed: bool,
    connections: usize,
    requests_per_conn: u64,
    rate: f64,
    targets: &[(String, Vec<u8>)],
) -> (u64, u64, u64, Histogram) {
    let barrier = std::sync::Barrier::new(connections);
    let start_cell: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let (barrier, start_cell) = (&barrier, &start_cell);
    let results: Vec<(u64, Histogram)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, framed);
                    {
                        let (target, body) = &targets[(c * 7) % targets.len()];
                        let method = if body.is_empty() { "GET" } else { "POST" };
                        let (status, _) = client
                            .request(method, target, body)
                            .expect("warm-up request failed");
                        assert!(status == 200 || status == 429, "warm-up got {status}");
                    }
                    barrier.wait();
                    let start = *start_cell.get_or_init(Instant::now);
                    let mut hist = Histogram::new();
                    let mut sheds = 0u64;
                    for k in 0..requests_per_conn {
                        let global = k * connections as u64 + c as u64;
                        let scheduled = std::time::Duration::from_secs_f64(global as f64 / rate);
                        if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let arrival = start + scheduled;
                        let idx = ((k + c as u64 * 7) % targets.len() as u64) as usize;
                        let (target, body) = &targets[idx];
                        let method = if body.is_empty() { "GET" } else { "POST" };
                        let (status, resp) = client
                            .request(method, target, body)
                            .expect("bench request failed");
                        let ns = arrival.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        match status {
                            200 => {
                                assert!(!resp.is_empty(), "empty response body: {target}");
                                hist.record(ns);
                            }
                            429 => sheds += 1,
                            other => panic!("bench request got {other}: {target}"),
                        }
                    }
                    (sheds, hist)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall_ns = start_cell
        .get()
        .expect("schedule clock set")
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64;
    let mut merged = Histogram::new();
    let mut sheds = 0u64;
    for (s, h) in &results {
        sheds += s;
        merged.merge(h);
    }
    (
        connections as u64 * requests_per_conn,
        sheds,
        wall_ns,
        merged,
    )
}

fn run_clients(
    addr: &str,
    connections: usize,
    requests_per_conn: u64,
    targets: &[(String, Vec<u8>)],
) -> (u64, u64, Histogram) {
    let t = Instant::now();
    let per_thread: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, true);
                    let mut hist = Histogram::new();
                    for i in 0..requests_per_conn {
                        // Offset each connection's schedule so concurrent
                        // clients are not in lock-step on one cache entry.
                        let idx = ((i + c as u64 * 7) % targets.len() as u64) as usize;
                        let (target, body) = &targets[idx];
                        let method = if body.is_empty() { "GET" } else { "POST" };
                        let t0 = Instant::now();
                        let (status, resp) = client
                            .request(method, target, body)
                            .expect("bench request failed");
                        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        assert_eq!(status, 200, "bench request got {status}: {target}");
                        assert!(!resp.is_empty(), "empty response body: {target}");
                        hist.record(ns);
                    }
                    hist
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let mut merged = Histogram::new();
    for h in &per_thread {
        merged.merge(h);
    }
    (connections as u64 * requests_per_conn, wall_ns, merged)
}

fn main() {
    let scale: f64 = std::env::var("STJ_SERVE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let requests_per_conn: u64 = std::env::var("STJ_SERVE_BENCH_REQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400)
        .max(1);
    let build_threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // Lakes probed against parks: the same correlated pairing the join
    // benches use, so relate probes actually hit candidates.
    let parks = generate(DatasetId::OPE, scale);
    let lakes = generate(DatasetId::OLE, scale);
    let mut extent = Rect::empty();
    for p in parks.iter().chain(&lakes) {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 12);

    // Probe pool: 64 lake polygons as ad-hoc WKT, reused round-robin so
    // the cache sees repeats.
    let probes: Vec<String> = lakes
        .iter()
        .step_by((lakes.len() / 64).max(1))
        .take(64)
        .map(polygon_to_wkt)
        .collect();

    let arena = Dataset::build_parallel("OPE", parks, &grid, build_threads).to_arena();
    let n = arena.len();
    let tiling = Tiling::for_probes(arena.mbrs());
    let datasets = vec![LoadedDataset {
        name: "OPE".to_string(),
        arena,
        grid,
        tiling,
    }];
    eprintln!("serving {n} objects, {} probe polygons", probes.len());

    // Default queue depth on purpose: the open-loop runs measure the
    // bounded queue's shed behavior as shipped, not a tuned-up one.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 0,
        cache_mb: 64,
        deadline_ms: 0,
        max_links: 100_000,
        adaptive: AdaptiveMode::On,
        ..ServeConfig::default()
    };
    let queue_depth = config.queue_depth;
    let server = Server::bind(ServeCtx::new(config, datasets)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_flag();
    let ctx = server.ctx();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    eprintln!("server on {addr}");

    // Request schedules. Bodies ride in the frame payload for relate;
    // pair is a pure GET with query parameters.
    let relate_targets: Vec<(String, Vec<u8>)> = probes
        .iter()
        .map(|wkt| {
            (
                "/v1/relate?dataset=OPE&limit=16".to_string(),
                wkt.clone().into_bytes(),
            )
        })
        .collect();
    let pair_targets: Vec<(String, Vec<u8>)> = (0..64u64)
        .map(|i| {
            let l = (i * 131) % n as u64;
            let r = (i * 137 + 1) % n as u64;
            (
                format!("/v1/pair?left=OPE&i={l}&right=OPE&j={r}"),
                Vec::new(),
            )
        })
        .collect();

    let open_reqs: u64 = std::env::var("STJ_SERVE_BENCH_OPEN_REQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40)
        .max(1);
    let rate: f64 = std::env::var("STJ_SERVE_BENCH_RATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(2000.0)
        .max(1.0);

    let mut samples = Vec::new();
    for connections in [1usize, 4, 16] {
        for (endpoint, targets) in [("relate", &relate_targets), ("pair", &pair_targets)] {
            let hits0 = ctx.cache.hits.get();
            let (requests, wall_ns, hist) =
                run_clients(&addr, connections, requests_per_conn, targets);
            let cache_hits_delta = ctx.cache.hits.get() - hits0;
            let req_per_sec = requests as f64 / (wall_ns as f64 / 1e9).max(1e-12);
            eprintln!(
                "closed {endpoint:<7} x{connections:<3}  {:>8.0} req/s  p50 {:>7.1} us  p99 {:>8.1} us  ({} cache hits)",
                req_per_sec,
                hist.p50() as f64 / 1e3,
                hist.p99() as f64 / 1e3,
                cache_hits_delta,
            );
            samples.push(RunSample {
                endpoint,
                mode: "closed",
                transport: "framed",
                connections,
                requests,
                sheds: 0,
                wall_ns,
                hist,
                cache_hits_delta,
            });
        }
    }

    // Open-loop: high connection counts on both transports. Only the
    // relate endpoint — it is the cacheable, latency-sensitive path the
    // reactor exists for.
    for connections in [64usize, 256] {
        for (transport, framed) in [("framed", true), ("http", false)] {
            let hits0 = ctx.cache.hits.get();
            let (requests, sheds, wall_ns, hist) =
                run_open_loop(&addr, framed, connections, open_reqs, rate, &relate_targets);
            let cache_hits_delta = ctx.cache.hits.get() - hits0;
            let shed_rate = sheds as f64 / requests as f64;
            eprintln!(
                "open   relate  x{connections:<3} {transport:<6} {:>7.0} req/s target  p50 {:>7.1} us  p95 {:>8.1} us  p99 {:>8.1} us  sheds {sheds} ({:.2}%)",
                rate,
                hist.p50() as f64 / 1e3,
                hist.p95() as f64 / 1e3,
                hist.p99() as f64 / 1e3,
                shed_rate * 100.0,
            );
            // The acceptance gate: at the default queue depth the
            // reactor must absorb 256 open-loop connections on relate
            // without shedding a single request.
            assert_eq!(
                sheds, 0,
                "relate open-loop shed {sheds}/{requests} requests at \
                 {connections} connections (queue_depth {queue_depth})"
            );
            samples.push(RunSample {
                endpoint: "relate",
                mode: "open",
                transport,
                connections,
                requests,
                sheds,
                wall_ns,
                hist,
                cache_hits_delta,
            });
        }
    }

    shutdown.trigger();
    server_thread.join().expect("server thread");
    eprintln!("server drained");

    let entries: Vec<Json> = samples
        .iter()
        .map(|s| {
            let req_per_sec = s.requests as f64 / (s.wall_ns as f64 / 1e9).max(1e-12);
            Json::object([
                ("endpoint", Json::str(s.endpoint)),
                ("mode", Json::str(s.mode)),
                ("transport", Json::str(s.transport)),
                ("connections", Json::from(s.connections)),
                ("requests", Json::U64(s.requests)),
                ("sheds", Json::U64(s.sheds)),
                (
                    "shed_rate",
                    Json::F64(s.sheds as f64 / (s.requests as f64).max(1.0)),
                ),
                ("wall_ns", Json::U64(s.wall_ns)),
                ("req_per_sec", Json::F64(req_per_sec)),
                ("p50_ns", Json::U64(s.hist.p50())),
                ("p95_ns", Json::U64(s.hist.p95())),
                ("p99_ns", Json::U64(s.hist.p99())),
                ("max_ns", Json::U64(s.hist.max())),
                ("mean_ns", Json::F64(s.hist.mean())),
                ("cache_hits", Json::U64(s.cache_hits_delta)),
            ])
        })
        .collect();
    let report = Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("benchmark", Json::str("serve_throughput")),
        ("dataset", Json::str("OPE")),
        ("objects", Json::from(n)),
        ("probe_pool", Json::from(probes.len())),
        ("requests_per_connection", Json::U64(requests_per_conn)),
        ("open_loop_rate", Json::F64(rate)),
        ("queue_depth", Json::U64(queue_depth as u64)),
        ("runs", Json::Arr(entries)),
    ]);
    let path = stj_bench::experiments::bench_output_path("BENCH_PR10.json");
    std::fs::write(&path, report.render()).expect("write bench json");
    eprintln!("wrote {path}");
}
