//! Runs the complete reproduction: every table and figure in sequence.

fn main() {
    stj_bench::experiments::repro_all();
}
