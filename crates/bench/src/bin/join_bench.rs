//! Executor benchmark: the streaming fused `TopologyJoin` executor vs
//! the materialize-then-process path, across thread counts, over an OBE
//! self-join.
//!
//! A counting global allocator additionally tracks **live** heap bytes
//! so each run reports its peak memory over the steady-state baseline —
//! the number that exposes the materialized path's O(candidates) pair
//! buffer against the streaming path's O(threads × batch) buffers. The
//! run aborts if the two strategies ever disagree on link or candidate
//! counts, so CI can gate on the bench exiting zero.
//!
//! Run with:
//! ```text
//! cargo run --release -p stj-bench --bin join_bench
//! ```
//!
//! Telemetry (`stj-bench/v1`) goes to `BENCH_PR4.json`, or the path in
//! `$STJ_BENCH_JSON`. `$STJ_JOIN_BENCH_SCALE` scales the dataset
//! (default 3.4 ≈ 102k objects); `$STJ_JOIN_BENCH_REPS` sets the
//! best-of-N repetition count per configuration (default 3).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use stj_core::{Dataset, DatasetArena, ExecStrategy, TopologyJoin, STREAM_BATCH_PAIRS};
use stj_geom::Rect;
use stj_obs::Json;
use stj_raster::Grid;

/// Passthrough to the system allocator that counts calls and tracks the
/// live-bytes high-water mark.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    // Feed the site-attribution table too (a relaxed load when off).
    stj_obs::alloc::note_alloc(size);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured executor run.
struct RunSample {
    strategy: ExecStrategy,
    threads: usize,
    wall_ns: u64,
    allocs: u64,
    /// Peak live heap bytes beyond what was live before the run.
    peak_extra_bytes: u64,
    candidates: u64,
    links: u64,
}

fn strategy_name(s: ExecStrategy) -> &'static str {
    match s {
        ExecStrategy::Streaming => "streaming",
        ExecStrategy::Materialized => "materialized",
    }
}

fn measure(arena: &DatasetArena, strategy: ExecStrategy, threads: usize) -> RunSample {
    let live0 = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live0, Ordering::Relaxed);
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let t = Instant::now();
    let out = TopologyJoin::new()
        .strategy(strategy)
        .threads(threads)
        .run(arena, arena);
    let wall_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - a0;
    let peak_extra_bytes = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(live0);
    RunSample {
        strategy,
        threads,
        wall_ns,
        allocs,
        peak_extra_bytes,
        candidates: out.candidates,
        links: out.links.len() as u64,
    }
}

fn main() {
    let scale: f64 = std::env::var("STJ_JOIN_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.4);
    let build_threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let polys = stj_datagen::generate(stj_datagen::DatasetId::OBE, scale);
    let mut extent = Rect::empty();
    for p in &polys {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 14);
    let t = Instant::now();
    let arena = Dataset::build_parallel("OBE", polys, &grid, build_threads).to_arena();
    let n = arena.len();
    eprintln!("built {} objects in {:.2?}", n, t.elapsed());

    // Warm up caches and the lazy parts of the allocator so the first
    // measured run is not charged for them.
    let warm = TopologyJoin::new()
        .strategy(ExecStrategy::Materialized)
        .threads(1)
        .run(&arena, &arena);
    eprintln!(
        "self-join: {} candidates, {} links",
        warm.candidates,
        warm.links.len()
    );

    let reps: usize = std::env::var("STJ_JOIN_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let thread_counts = [1usize, 2, 4, 8];
    let mut samples = Vec::new();
    for strategy in [ExecStrategy::Materialized, ExecStrategy::Streaming] {
        for &threads in &thread_counts {
            // Best-of-reps wall clock: the memory and count columns are
            // deterministic per config, only the timing is noisy.
            let mut s = measure(&arena, strategy, threads);
            for _ in 1..reps {
                let again = measure(&arena, strategy, threads);
                assert_eq!(again.links, s.links);
                s.wall_ns = s.wall_ns.min(again.wall_ns);
            }
            eprintln!(
                "{:<12} x{}  {:>8.1} ms  {:>10} peak extra bytes  {:>8} allocs  {} links",
                strategy_name(s.strategy),
                s.threads,
                s.wall_ns as f64 / 1e6,
                s.peak_extra_bytes,
                s.allocs,
                s.links,
            );
            samples.push(s);
        }
    }

    // Correctness gate: every run must agree with the warmup baseline on
    // both candidate and link counts. CI treats a non-zero exit here as
    // an executor-divergence failure.
    for s in &samples {
        assert_eq!(
            s.candidates,
            warm.candidates,
            "{} x{} candidate count diverged",
            strategy_name(s.strategy),
            s.threads
        );
        assert_eq!(
            s.links,
            warm.links.len() as u64,
            "{} x{} link count diverged",
            strategy_name(s.strategy),
            s.threads
        );
    }
    eprintln!("all runs agree: {} links", warm.links.len());

    // Flight-recorder overhead: best-of-reps traced vs untraced wall on
    // the widest streaming configuration. The untraced runs carry the
    // recorder hooks in their disabled state (a branch on an `Option`
    // per task), so untraced-vs-baseline drift is the tracing-off cost;
    // the traced delta additionally includes the per-pair stage timers
    // that tracing implies, which dominate at small scales.
    let probe_threads = *thread_counts.last().expect("thread counts");
    let time_join = |traced: bool| -> u64 {
        let t = Instant::now();
        let out = TopologyJoin::new()
            .strategy(ExecStrategy::Streaming)
            .threads(probe_threads)
            .traced(traced)
            .run(&arena, &arena);
        assert_eq!(out.links.len(), warm.links.len());
        t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    };
    let mut untraced_ns = u64::MAX;
    let mut traced_ns = u64::MAX;
    for _ in 0..reps.max(3) {
        untraced_ns = untraced_ns.min(time_join(false));
        traced_ns = traced_ns.min(time_join(true));
    }
    let overhead_pct = (traced_ns as f64 - untraced_ns as f64) / untraced_ns as f64 * 100.0;
    eprintln!(
        "trace overhead x{probe_threads}: untraced {:.1} ms, traced {:.1} ms ({overhead_pct:+.2}%)",
        untraced_ns as f64 / 1e6,
        traced_ns as f64 / 1e6,
    );

    let pair_bytes = std::mem::size_of::<(u32, u32)>() as u64;
    let entries: Vec<Json> = samples
        .iter()
        .map(|s| {
            // The analytic size of the candidate-pair staging buffers:
            // the materialized path holds every candidate at once, the
            // streaming path only `threads` batch buffers.
            let candidate_buffer_bytes = match s.strategy {
                ExecStrategy::Materialized => s.candidates * pair_bytes,
                ExecStrategy::Streaming => (s.threads * STREAM_BATCH_PAIRS) as u64 * pair_bytes,
            };
            Json::object([
                ("exec", Json::str(strategy_name(s.strategy))),
                ("threads", Json::from(s.threads)),
                ("wall_ns", Json::U64(s.wall_ns)),
                ("allocs", Json::U64(s.allocs)),
                ("peak_extra_bytes", Json::U64(s.peak_extra_bytes)),
                ("candidate_buffer_bytes", Json::U64(candidate_buffer_bytes)),
                ("candidates", Json::U64(s.candidates)),
                ("links", Json::U64(s.links)),
            ])
        })
        .collect();
    let report = Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("benchmark", Json::str("join_executor")),
        ("dataset", Json::str("OBE")),
        ("objects", Json::from(n)),
        ("candidates", Json::U64(warm.candidates)),
        ("links", Json::from(warm.links.len())),
        ("stream_batch_pairs", Json::from(STREAM_BATCH_PAIRS)),
        ("runs", Json::Arr(entries)),
        (
            "trace_overhead",
            Json::object([
                ("threads", Json::from(probe_threads)),
                ("untraced_ns", Json::U64(untraced_ns)),
                ("traced_ns", Json::U64(traced_ns)),
                ("overhead_pct", Json::F64(overhead_pct)),
            ]),
        ),
    ]);
    let path = stj_bench::experiments::bench_output_path("BENCH_PR4.json");
    std::fs::write(&path, report.render()).expect("write bench json");
    eprintln!("wrote {path}");
}
