//! Ablation: raster grid granularity vs filter effectiveness.
//!
//! The paper fixes the grid at `2^16 × 2^16` cells and notes that the
//! fine granularity is what gives even mid-size objects useful `P`
//! lists (Sec 4.3, Figure 9 discussion). This ablation quantifies the
//! trade-off on OLE-OPE: coarser grids shrink the interval lists (less
//! storage, faster merge-joins) but decide fewer pairs, pushing more
//! work into refinement.
//!
//! ```text
//! cargo run -p stj-bench --release --bin ablation_grid
//! ```

use std::time::Instant;
use stj_bench::harness::{default_scale, human_count, mb, threads};
use stj_core::{find_relation, Dataset, PipelineStats};
use stj_datagen::{generate_combo, ComboId};
use stj_geom::Rect;
use stj_index::mbr_join_parallel;
use stj_raster::Grid;

fn main() {
    let scale = default_scale();
    let (r_polys, s_polys) = generate_combo(ComboId::OleOpe, scale);
    let mut extent = Rect::empty();
    for p in r_polys.iter().chain(&s_polys) {
        extent.grow_rect(p.mbr());
    }

    println!("== Ablation: grid order vs P+C filter effectiveness (OLE-OPE, scale {scale}) ==");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "Order", "P+C (MB)", "prep time", "undet. %", "pairs/s", "pairs"
    );

    for order in [8u32, 10, 12, 14, 16] {
        let grid = Grid::new(extent, order);
        let t = Instant::now();
        let r = Dataset::build_parallel("OLE", r_polys.clone(), &grid, threads());
        let s = Dataset::build_parallel("OPE", s_polys.clone(), &grid, threads());
        let april_bytes: usize = r
            .objects
            .iter()
            .chain(&s.objects)
            .map(|o| o.april.serialized_bytes())
            .sum();
        let (r, s) = (r.to_arena(), s.to_arena());
        let prep = t.elapsed();
        let pairs = mbr_join_parallel(r.mbrs(), s.mbrs(), threads());

        let t = Instant::now();
        let mut stats = PipelineStats::default();
        for &(i, j) in &pairs {
            stats.record(&find_relation(r.object(i as usize), s.object(j as usize)));
        }
        let dt = t.elapsed();
        println!(
            "{:<6} {:>10} {:>12} {:>11.1}% {:>12.0} {:>12}",
            order,
            mb(april_bytes),
            format!("{:.2?}", prep),
            stats.undetermined_pct(),
            stats.pairs as f64 / dt.as_secs_f64().max(1e-12),
            human_count(stats.pairs)
        );
    }
    println!("(expected: finer grids monotonically reduce % undetermined at growing storage/preprocessing cost)");
}
