//! Regenerates the paper's table5. See `stj-bench` crate docs.

fn main() {
    stj_bench::experiments::table5(stj_bench::harness::default_scale());
}
