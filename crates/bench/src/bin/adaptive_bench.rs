//! Adaptive filter-ordering benchmark: `--adaptive on` vs `off` over
//! two scenario families chosen to sit at the opposite ends of the
//! APRIL stage's usefulness spectrum.
//!
//! - **tessellation** (APRIL useless): a jittered coverage whose cells
//!   share boundary polylines exactly, self-joined. Every neighbouring
//!   pair *meets* — interiors never overlap — so the intermediate
//!   filter walks two long interval lists (fine grid, big cells) and
//!   then refines anyway. The adaptive model should learn to skip the
//!   stage after its warm-up and recover its full cost.
//! - **containment** (APRIL decisive): scattered many-vertex star
//!   containers, each holding a cloud of small boxes deep inside.
//!   Interval containment decides inside/contains instantly while exact
//!   refinement against a 96-vertex ring is expensive, so the model
//!   must *keep* the stage and cost at most its counter overhead.
//!
//! Both families gate on all modes producing identical sorted links —
//! skipping APRIL only ever re-routes pairs to exact refinement.
//!
//! Run with:
//! ```text
//! cargo run --release -p stj-bench --bin adaptive_bench
//! ```
//!
//! Telemetry (`stj-bench/v1`) goes to `BENCH_PR9.json`, or the path in
//! `$STJ_BENCH_JSON`. `$STJ_ADAPTIVE_BENCH_SCALE` scales both datasets
//! (default 1.0); `$STJ_ADAPTIVE_BENCH_REPS` sets the best-of-N count
//! per configuration (default 3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use stj_core::{AdaptiveMode, Dataset, DatasetArena, TopologyJoin};
use stj_datagen::{star_polygon, tessellation, StarParams};
use stj_geom::{Point, Polygon, Rect};
use stj_obs::Json;
use stj_raster::Grid;

fn threads() -> usize {
    std::env::var("STJ_ADAPTIVE_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// The jittered-coverage self-join: exactly shared boundaries, meets
/// everywhere, long interval lists on a fine grid.
fn tessellation_family(scale: f64) -> (DatasetArena, Option<DatasetArena>, Grid) {
    let mut rng = StdRng::seed_from_u64(0x5717_0009);
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let k = ((40.0 * scale.sqrt()) as usize).max(8);
    let cover = tessellation(&mut rng, region, k, 3, 0.3);
    // Order 13 over the full region: each of the k×k cells spans ~200
    // grid cells per side, so its conservative list carries hundreds of
    // intervals — the merge-join the adaptive model should learn to
    // skip — while the 12-vertex cell rings keep refinement cheap.
    let grid = Grid::new(region, 13);
    let arena = Dataset::build_parallel("tess", cover.polygons(), &grid, threads()).to_arena();
    (arena, None, grid)
}

/// Scattered star containers joined against their deep-inside box
/// clouds: APRIL decides contains by interval containment; refinement
/// against the many-vertex outer ring is the expensive path the filter
/// avoids. A binary join (containers on the left, boxes on the right)
/// keeps every candidate pair in the decisive contains class.
fn containment_family(scale: f64) -> (DatasetArena, Option<DatasetArena>, Grid) {
    let mut rng = StdRng::seed_from_u64(0x5717_0010);
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let clusters = ((260.0 * scale) as usize).max(16);
    let per_cluster = 96usize;
    let side = (clusters as f64).sqrt().ceil() as usize;
    let pitch = 1000.0 / side as f64;
    let mut containers = Vec::with_capacity(clusters);
    let mut contents = Vec::with_capacity(clusters * per_cluster);
    for c in 0..clusters {
        let cx = (c % side) as f64 * pitch + pitch * 0.5;
        let cy = (c / side) as f64 * pitch + pitch * 0.5;
        let radius = pitch * 0.42;
        containers.push(star_polygon(
            &mut rng,
            &StarParams {
                center: Point::new(cx, cy),
                avg_radius: radius,
                irregularity: 0.3,
                spikiness: 0.25,
                num_vertices: 96,
            },
        ));
        // Boxes well inside the container's minimum radius, so both
        // their MBRs and their conservative cells sit in the star's
        // progressive interior.
        let safe = radius * (1.0 - 0.25) * 0.55;
        for _ in 0..per_cluster {
            let bx = cx + rng.gen_range(-safe..safe);
            let by = cy + rng.gen_range(-safe..safe);
            let half = pitch * 0.01;
            contents.push(Polygon::rect(Rect::from_coords(
                bx - half,
                by - half,
                bx + half,
                by + half,
            )));
        }
    }
    let grid = Grid::new(region, 13);
    let left = Dataset::build_parallel("containers", containers, &grid, threads()).to_arena();
    let right = Dataset::build_parallel("contents", contents, &grid, threads()).to_arena();
    (left, Some(right), grid)
}

struct RunSample {
    family: &'static str,
    mode: AdaptiveMode,
    wall_ns: u64,
    candidates: u64,
    links: u64,
    adaptive: Option<Json>,
}

fn measure(
    family: &'static str,
    left: &DatasetArena,
    right: &DatasetArena,
    mode: AdaptiveMode,
    reps: usize,
) -> RunSample {
    let mut wall_ns = u64::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let run = TopologyJoin::new()
            .threads(threads())
            .adaptive(mode)
            .run(left, right);
        wall_ns = wall_ns.min(t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        if let Some(prev) = &out {
            let prev: &stj_core::JoinResult = prev;
            assert_eq!(prev.links.len(), run.links.len(), "{family}: reps diverged");
        }
        out = Some(run);
    }
    let out = out.expect("at least one rep");
    RunSample {
        family,
        mode,
        wall_ns,
        candidates: out.candidates,
        links: out.links.len() as u64,
        adaptive: out.adaptive.as_ref().map(|r| r.to_json()),
    }
}

/// Sorted link triples of one run, for the cross-mode identity gate.
fn sorted_links(
    left: &DatasetArena,
    right: &DatasetArena,
    mode: AdaptiveMode,
) -> Vec<(u32, u32, String)> {
    let out = TopologyJoin::new()
        .threads(threads())
        .adaptive(mode)
        .run(left, right);
    let mut links: Vec<(u32, u32, String)> = out
        .links
        .iter()
        .map(|l| (l.r, l.s, l.relation.to_string()))
        .collect();
    links.sort();
    links
}

fn main() {
    let scale: f64 = std::env::var("STJ_ADAPTIVE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let reps: usize = std::env::var("STJ_ADAPTIVE_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let modes = [AdaptiveMode::Off, AdaptiveMode::On, AdaptiveMode::ForceSkip];
    let mut runs = Vec::new();
    let mut families = Vec::new();
    for (family, build) in [
        (
            "tessellation",
            tessellation_family as fn(f64) -> (DatasetArena, Option<DatasetArena>, Grid),
        ),
        ("containment", containment_family),
    ] {
        let t = Instant::now();
        let (left, right, grid) = build(scale);
        let right = right.as_ref().unwrap_or(&left);
        eprintln!(
            "{family}: {} x {} objects on grid order {} in {:.2?}",
            left.len(),
            right.len(),
            grid.order(),
            t.elapsed()
        );

        // Correctness gate first: every mode must produce the same
        // sorted links before any timing is trusted.
        let base_links = sorted_links(&left, right, AdaptiveMode::Off);
        for mode in [AdaptiveMode::On, AdaptiveMode::ForceSkip] {
            assert_eq!(
                sorted_links(&left, right, mode),
                base_links,
                "{family}: links diverged under --adaptive {}",
                mode.label()
            );
        }
        eprintln!("{family}: all modes agree on {} links", base_links.len());

        let mut by_mode = Vec::new();
        for mode in modes {
            let s = measure(family, &left, right, mode, reps);
            eprintln!(
                "{family:<13} {:<10} {:>8.1} ms  {} candidates  {} links",
                s.mode.label(),
                s.wall_ns as f64 / 1e6,
                s.candidates,
                s.links,
            );
            by_mode.push(s);
        }
        let off_ns = by_mode[0].wall_ns;
        let on_ns = by_mode[1].wall_ns;
        let improvement_pct = (off_ns as f64 - on_ns as f64) / off_ns as f64 * 100.0;
        eprintln!("{family}: adaptive on vs off {improvement_pct:+.1}%");
        families.push(Json::object([
            ("family", Json::str(family)),
            ("off_ns", Json::U64(off_ns)),
            ("on_ns", Json::U64(on_ns)),
            ("improvement_pct", Json::F64(improvement_pct)),
        ]));
        runs.extend(by_mode);
    }

    let entries: Vec<Json> = runs
        .iter()
        .map(|s| {
            let mut run = Json::object([
                ("family", Json::str(s.family)),
                ("adaptive", Json::str(s.mode.label())),
                ("threads", Json::from(threads())),
                ("wall_ns", Json::U64(s.wall_ns)),
                ("candidates", Json::U64(s.candidates)),
                ("links", Json::U64(s.links)),
            ]);
            if let Some(report) = &s.adaptive {
                run.push("adaptive_trace", report.clone());
            }
            run
        })
        .collect();
    let report = Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("benchmark", Json::str("adaptive_filter_ordering")),
        ("reps", Json::from(reps)),
        ("scale", Json::F64(scale)),
        ("families", Json::Arr(families)),
        ("runs", Json::Arr(entries)),
    ]);
    let path = stj_bench::experiments::bench_output_path("BENCH_PR9.json");
    std::fs::write(&path, report.render()).expect("write bench json");
    eprintln!("wrote {path}");
}
