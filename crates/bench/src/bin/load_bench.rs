//! Load-throughput microbench for the storage formats: legacy v1 record
//! decode vs columnar v2 bulk decode vs v2 zero-copy open, plus the
//! join-side effect of the arena refactor (owned-object views vs arena
//! slots over identical candidate pairs).
//!
//! A counting global allocator tracks how many heap allocations each
//! load path performs, and verifies the headline property of the arena:
//! walking every object view — MBR, APRIL spans, geometry — performs
//! **zero** per-object allocations.
//!
//! Run with:
//! ```text
//! cargo run --release -p stj-bench --bin load_bench
//! ```
//!
//! Telemetry (`stj-bench/v1`) goes to `BENCH_PR3.json`, or the path in
//! `$STJ_BENCH_JSON`. `$STJ_LOAD_BENCH_SCALE` scales the dataset
//! (default 3.4 ≈ 102k objects).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use stj_core::{find_relation, Dataset, DatasetArena};
use stj_geom::Rect;
use stj_index::mbr_join_parallel;
use stj_obs::Json;
use stj_raster::Grid;
use stj_store::{open_arena_from_bytes, read_arena, read_dataset, write_arena_v2, write_dataset};

/// Passthrough to the system allocator that counts calls and bytes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// One measured load path.
struct LoadSample {
    path: &'static str,
    wall_ns: u64,
    allocs: u64,
    zero_copy: bool,
}

fn measure<F: FnOnce() -> (DatasetArena, Grid)>(
    path: &'static str,
    f: F,
) -> (DatasetArena, LoadSample) {
    let a0 = alloc_calls();
    let t = Instant::now();
    let (arena, _grid) = f();
    let wall_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let allocs = alloc_calls() - a0;
    let zero_copy = arena.is_zero_copy();
    (
        arena,
        LoadSample {
            path,
            wall_ns,
            allocs,
            zero_copy,
        },
    )
}

fn mb_per_s(bytes: usize, wall_ns: u64) -> f64 {
    bytes as f64 / 1e6 / (wall_ns as f64 / 1e9).max(1e-12)
}

fn main() {
    let scale: f64 = std::env::var("STJ_LOAD_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.4);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // A large set of small buildings: the per-object (not per-vertex)
    // costs of the load paths dominate, which is what this bench probes.
    let polys = stj_datagen::generate(stj_datagen::DatasetId::OBE, scale);
    let mut extent = Rect::empty();
    for p in &polys {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 14);
    let t = Instant::now();
    let ds = Dataset::build_parallel("OBE", polys, &grid, threads);
    let n = ds.len();
    eprintln!("built {} objects in {:.2?}", n, t.elapsed());

    // Serialize both formats in memory: no filesystem noise.
    let mut v1_bytes = Vec::new();
    write_dataset(&mut v1_bytes, &ds, &grid).expect("v1 write");
    let arena = ds.to_arena();
    let mut v2_bytes = Vec::new();
    write_arena_v2(&mut v2_bytes, &arena, &grid).expect("v2 write");
    eprintln!(
        "serialized: v1 {} bytes, v2 {} bytes",
        v1_bytes.len(),
        v2_bytes.len()
    );

    // The three load paths, each ending in a query-ready DatasetArena.
    let (_a1, v1) = measure("v1_record_decode", || {
        let (ds, grid) = read_dataset(&mut v1_bytes.as_slice()).expect("v1 read");
        (ds.to_arena(), grid)
    });
    let (_a2, v2_bulk) = measure("v2_bulk_decode", || {
        read_arena(&mut v2_bytes.as_slice()).expect("v2 read")
    });
    let (zc, v2_zc) = measure("v2_zero_copy_open", || {
        open_arena_from_bytes(&v2_bytes).expect("v2 open")
    });
    for s in [&v1, &v2_bulk, &v2_zc] {
        eprintln!(
            "{:<18} {:>8.1} ms  {:>8.0} MB/s  {:>9} allocs  zero_copy={}",
            s.path,
            s.wall_ns as f64 / 1e6,
            mb_per_s(
                if s.path == "v1_record_decode" {
                    v1_bytes.len()
                } else {
                    v2_bytes.len()
                },
                s.wall_ns
            ),
            s.allocs,
            s.zero_copy
        );
    }

    // Headline arena property: a full scan over object views — MBR,
    // APRIL interval spans, vertex count — allocates nothing.
    let a0 = alloc_calls();
    let mut checksum = 0u64;
    for i in 0..zc.len() {
        let o = zc.object(i);
        checksum = checksum
            .wrapping_add(o.mbr.min.x.to_bits())
            .wrapping_add(o.april.p.len() as u64)
            .wrapping_add(o.april.c.len() as u64)
            .wrapping_add(o.num_vertices() as u64);
    }
    let scan_allocs = alloc_calls() - a0;
    assert!(checksum != 0);
    assert_eq!(
        scan_allocs, 0,
        "object-view scan over {n} objects allocated {scan_allocs} times"
    );
    eprintln!("view scan over {n} objects: 0 allocations");

    // Join wall time over identical candidate pairs: owned objects with
    // `.view()` (the pre-arena shape) vs arena slots.
    let pairs = mbr_join_parallel(arena.mbrs(), arena.mbrs(), threads);
    let t = Instant::now();
    let mut owned_links = 0u64;
    for &(i, j) in &pairs {
        let out = find_relation(ds.objects[i as usize].view(), ds.objects[j as usize].view());
        owned_links += u64::from(out.relation != stj_de9im::TopoRelation::Disjoint);
    }
    let owned_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let t = Instant::now();
    let a0 = alloc_calls();
    let mut arena_links = 0u64;
    for &(i, j) in &pairs {
        let out = find_relation(zc.object(i as usize), zc.object(j as usize));
        arena_links += u64::from(out.relation != stj_de9im::TopoRelation::Disjoint);
    }
    let filter_allocs = alloc_calls() - a0;
    let arena_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    assert_eq!(owned_links, arena_links, "join results diverged");
    eprintln!(
        "join over {} candidates: owned {:.1} ms, arena {:.1} ms ({} links, {} allocs on the arena pass)",
        pairs.len(),
        owned_ns as f64 / 1e6,
        arena_ns as f64 / 1e6,
        arena_links,
        filter_allocs
    );

    let entries: Vec<Json> = [&v1, &v2_bulk, &v2_zc]
        .iter()
        .map(|s| {
            let bytes = if s.path == "v1_record_decode" {
                v1_bytes.len()
            } else {
                v2_bytes.len()
            };
            Json::object([
                ("path", Json::str(s.path)),
                ("wall_ns", Json::U64(s.wall_ns)),
                ("mb_per_s", Json::F64(mb_per_s(bytes, s.wall_ns))),
                ("allocs", Json::U64(s.allocs)),
                ("zero_copy", Json::Bool(s.zero_copy)),
            ])
        })
        .collect();
    let report = Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("benchmark", Json::str("load_throughput")),
        ("dataset", Json::str("OBE")),
        ("objects", Json::from(n)),
        ("vertices", Json::U64(arena.total_vertices() as u64)),
        ("v1_bytes", Json::from(v1_bytes.len())),
        ("v2_bytes", Json::from(v2_bytes.len())),
        ("loads", Json::Arr(entries)),
        (
            "view_scan",
            Json::object([
                ("objects", Json::from(n)),
                ("allocs", Json::U64(scan_allocs)),
            ]),
        ),
        (
            "join",
            Json::object([
                ("candidates", Json::from(pairs.len())),
                ("links", Json::U64(arena_links)),
                ("owned_wall_ns", Json::U64(owned_ns)),
                ("arena_wall_ns", Json::U64(arena_ns)),
                ("arena_pass_allocs", Json::U64(filter_allocs)),
            ]),
        ),
    ]);
    let path = stj_bench::experiments::bench_output_path("BENCH_PR3.json");
    std::fs::write(&path, report.render()).expect("write bench json");
    eprintln!("wrote {path}");
}
