//! Regenerates the paper's table2. See `stj-bench` crate docs.

fn main() {
    stj_bench::experiments::table2(stj_bench::harness::default_scale());
}
