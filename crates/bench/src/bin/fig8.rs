//! Regenerates the paper's fig8. See `stj-bench` crate docs.

fn main() {
    stj_bench::experiments::fig8(stj_bench::harness::default_scale());
}
