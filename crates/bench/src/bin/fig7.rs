//! Regenerates the paper's fig7. See `stj-bench` crate docs.

fn main() {
    stj_bench::experiments::fig7(stj_bench::harness::default_scale());
}
