//! Regenerates the paper's table3. See `stj-bench` crate docs.

fn main() {
    stj_bench::experiments::table3(stj_bench::harness::default_scale());
}
