//! Out-of-core join bench: OBE self-join through the external driver at
//! 1/4/16 Hilbert shards vs the single-arena join, measuring wall time
//! and peak resident set (`VmHWM`).
//!
//! Every case runs in its own subprocess (the binary re-execs itself
//! with `STJ_EXTERN_CASE` set) so each `VmHWM` reading is the high-water
//! mark of exactly one join, not of whichever case ran hottest first.
//! The parent generates the dataset once, writes the single v2 file and
//! the three shard manifests to a temp directory, fans out the cases,
//! and verifies that all four produced identical links (count plus an
//! FNV-1a checksum over the sorted link list) before emitting telemetry.
//!
//! Run with:
//! ```text
//! cargo run --release -p stj-bench --bin extern_bench
//! ```
//!
//! Telemetry (`stj-bench/v1`) goes to `BENCH_PR8.json`, or the path in
//! `$STJ_BENCH_JSON`. `$STJ_EXTERN_BENCH_SCALE` scales the dataset
//! (default 10.0 ≈ 300k objects — large enough that mapped file pages
//! dominate process overhead). At full scale the parent additionally
//! asserts the paper-motivating property: the 16-shard join's peak RSS
//! stays under half the single-arena join's.

use std::process::Command;
use std::time::Instant;
use stj_core::{Dataset, Link, TopologyJoin};
use stj_geom::Rect;
use stj_obs::Json;
use stj_raster::Grid;
use stj_store::{external_join_files, open_arena, write_arena_v2, write_sharded, ShardedDataset};

const CASES: [&str; 4] = ["single", "sharded1", "sharded4", "sharded16"];

/// Peak resident set of this process in bytes (`VmHWM`), 0 where
/// `/proc` is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB").map(str::trim))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

fn fnv1a(data: &[u8], hash: u64) -> u64 {
    data.iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100000001b3))
}

/// Order-independent-input link digest: sorted by `(r, s)`, then hashed
/// with relation included, so two joins match iff their link sets do.
fn link_checksum(links: &[Link]) -> u64 {
    let mut sorted: Vec<_> = links.iter().map(|l| (l.r, l.s, l.relation)).collect();
    sorted.sort_unstable_by_key(|&(r, s, _)| (r, s));
    let mut h = 0xcbf29ce484222325u64;
    for (r, s, rel) in sorted {
        h = fnv1a(&r.to_le_bytes(), h);
        h = fnv1a(&s.to_le_bytes(), h);
        h = fnv1a(rel.to_string().as_bytes(), h);
    }
    h
}

/// Child mode: run one case, print `wall_ns peak_rss links candidates
/// checksum` on stdout, exit.
fn run_case(dir: &std::path::Path, case: &str) {
    let join = TopologyJoin::new();
    let t = Instant::now();
    let out = if case == "single" {
        let (arena, _grid) = open_arena(&dir.join("obe.stjd")).expect("open single");
        join.run(&arena, &arena)
    } else {
        let sd =
            ShardedDataset::open(&dir.join(format!("obe-{case}.stjm"))).expect("open manifest");
        external_join_files(&join, &sd, &sd).expect("external join")
    };
    let wall_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    println!(
        "{wall_ns} {} {} {} {:#x}",
        peak_rss_bytes(),
        out.links.len(),
        out.candidates,
        link_checksum(&out.links)
    );
}

struct CaseResult {
    case: &'static str,
    wall_ns: u64,
    peak_rss: u64,
    links: u64,
    candidates: u64,
    checksum: String,
}

fn main() {
    if let (Ok(dir), Ok(case)) = (
        std::env::var("STJ_EXTERN_DIR"),
        std::env::var("STJ_EXTERN_CASE"),
    ) {
        run_case(std::path::Path::new(&dir), &case);
        return;
    }

    let scale: f64 = std::env::var("STJ_EXTERN_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let polys = stj_datagen::generate(stj_datagen::DatasetId::OBE, scale);
    let mut extent = Rect::empty();
    for p in &polys {
        extent.grow_rect(p.mbr());
    }
    let grid = Grid::new(extent, 12);
    let t = Instant::now();
    let ds = Dataset::build_parallel("OBE", polys, &grid, threads);
    let n = ds.len();
    let arena = ds.to_arena();
    eprintln!("built {} objects in {:.2?}", n, t.elapsed());

    let dir = std::env::temp_dir().join(format!("stj-extern-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let single_path = dir.join("obe.stjd");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&single_path).expect("create v2"));
    write_arena_v2(&mut w, &arena, &grid).expect("write v2");
    std::io::Write::flush(&mut w).expect("flush v2");
    let file_bytes = std::fs::metadata(&single_path).expect("stat v2").len();
    for shards in [1usize, 4, 16] {
        write_sharded(
            &dir.join(format!("obe-sharded{shards}.stjm")),
            &arena,
            &grid,
            shards,
        )
        .expect("write shards");
    }
    eprintln!(
        "wrote {file_bytes}-byte v2 file + 1/4/16-shard manifests to {}",
        dir.display()
    );

    let exe = std::env::current_exe().expect("current exe");
    let mut results = Vec::new();
    for case in CASES {
        let out = Command::new(&exe)
            .env("STJ_EXTERN_DIR", &dir)
            .env("STJ_EXTERN_CASE", case)
            .output()
            .expect("spawn case");
        assert!(
            out.status.success(),
            "case {case} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("case output utf8");
        let fields: Vec<&str> = stdout.split_whitespace().collect();
        let [wall_ns, peak_rss, links, candidates, checksum] = fields.as_slice() else {
            panic!("case {case} printed {stdout:?}");
        };
        let r = CaseResult {
            case,
            wall_ns: wall_ns.parse().unwrap(),
            peak_rss: peak_rss.parse().unwrap(),
            links: links.parse().unwrap(),
            candidates: candidates.parse().unwrap(),
            checksum: checksum.to_string(),
        };
        eprintln!(
            "{:<10} {:>8.1} ms  peak RSS {:>6.1} MB  {} links  {} candidates  {}",
            r.case,
            r.wall_ns as f64 / 1e6,
            r.peak_rss as f64 / 1e6,
            r.links,
            r.candidates,
            r.checksum
        );
        results.push(r);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let single = &results[0];
    for r in &results[1..] {
        assert_eq!(r.links, single.links, "{}: link count diverged", r.case);
        assert_eq!(
            r.candidates, single.candidates,
            "{}: candidates diverged",
            r.case
        );
        assert_eq!(r.checksum, single.checksum, "{}: link set diverged", r.case);
    }
    eprintln!("all cases produced identical links");

    // The headline: with 16 shards at most two are resident at a time,
    // so peak RSS must fall well below the everything-mapped-and-touched
    // single-arena run. Only meaningful when file pages dominate process
    // overhead, so skip at reduced (smoke) scales and where /proc is
    // unavailable.
    let sharded16 = results.iter().find(|r| r.case == "sharded16").unwrap();
    if scale >= 8.0 && single.peak_rss > 0 {
        assert!(
            sharded16.peak_rss * 2 < single.peak_rss,
            "16-shard peak RSS {} not under half the single-arena peak {}",
            sharded16.peak_rss,
            single.peak_rss
        );
        eprintln!(
            "peak RSS: sharded16 {:.1} MB vs single {:.1} MB ({:.0}%)",
            sharded16.peak_rss as f64 / 1e6,
            single.peak_rss as f64 / 1e6,
            sharded16.peak_rss as f64 / single.peak_rss as f64 * 100.0
        );
    }

    let runs: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::object([
                ("case", Json::str(r.case)),
                ("wall_ns", Json::U64(r.wall_ns)),
                ("peak_rss", Json::U64(r.peak_rss)),
                ("links", Json::U64(r.links)),
                ("candidates", Json::U64(r.candidates)),
            ])
        })
        .collect();
    let report = Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("benchmark", Json::str("extern_join")),
        ("dataset", Json::str("OBE")),
        ("objects", Json::from(n)),
        ("file_bytes", Json::U64(file_bytes)),
        ("runs", Json::Arr(runs)),
    ]);
    let path = stj_bench::experiments::bench_output_path("BENCH_PR8.json");
    std::fs::write(&path, report.render()).expect("write bench json");
    eprintln!("wrote {path}");
}
