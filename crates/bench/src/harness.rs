//! Shared benchmark harness: scenario setup, method registry and timing.

use std::time::{Duration, Instant};
use stj_core::{
    find_relation, find_relation_april, find_relation_op2, find_relation_profiled,
    find_relation_st2, Dataset, DatasetArena, FindOutcome, ObjectRef, PipelineStats,
};
use stj_datagen::{generate_combo, ComboId};
use stj_geom::Rect;
use stj_index::mbr_join_parallel;
use stj_obs::{JoinProfile, Json, Recorder};
use stj_raster::Grid;

/// Grid order used by all experiments (the paper's `2^16 × 2^16`).
pub const GRID_ORDER: u32 = 16;

/// Default generation scale; override with the `STJ_SCALE` environment
/// variable. Sized so the full `repro_all` run finishes in minutes on a
/// single core (the paper's datasets are 100–1000× larger; DESIGN.md §7).
pub fn default_scale() -> f64 {
    std::env::var("STJ_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Worker threads for preprocessing (dataset build + MBR join).
pub fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A prepared join scenario: both datasets preprocessed on a shared grid
/// plus the MBR-join candidate pairs.
pub struct ComboSetup {
    /// Combination id.
    pub combo: ComboId,
    /// Left dataset (preprocessed, columnar).
    pub r: DatasetArena,
    /// Right dataset (preprocessed, columnar).
    pub s: DatasetArena,
    /// Candidate pairs from the MBR intersection join.
    pub pairs: Vec<(u32, u32)>,
    /// Wall time spent preprocessing (APRIL build), off the measured path.
    pub preprocess_time: Duration,
}

impl ComboSetup {
    /// Generates, preprocesses and MBR-joins one combination.
    pub fn build(combo: ComboId, scale: f64) -> ComboSetup {
        let (r_polys, s_polys) = generate_combo(combo, scale);
        let mut extent = Rect::empty();
        for p in r_polys.iter().chain(&s_polys) {
            extent.grow_rect(p.mbr());
        }
        let grid = Grid::new(extent, GRID_ORDER);
        let (rn, sn) = combo.datasets();
        let t = Instant::now();
        let r = Dataset::build_parallel_with_budget(
            rn.name(),
            r_polys,
            &grid,
            threads(),
            rn.interval_budget(),
        );
        let s = Dataset::build_parallel_with_budget(
            sn.name(),
            s_polys,
            &grid,
            threads(),
            sn.interval_budget(),
        );
        let (r, s) = (r.to_arena(), s.to_arena());
        let preprocess_time = t.elapsed();
        let pairs = mbr_join_parallel(r.mbrs(), s.mbrs(), threads());
        ComboSetup {
            combo,
            r,
            s,
            pairs,
            preprocess_time,
        }
    }

    /// The pair of object views for candidate `(i, j)`.
    #[inline]
    pub fn pair(&self, i: u32, j: u32) -> (ObjectRef<'_>, ObjectRef<'_>) {
        (self.r.object(i as usize), self.s.object(j as usize))
    }
}

/// A find-relation method under comparison.
#[derive(Clone, Copy)]
pub struct Method {
    /// Display name as used in the paper's figures.
    pub name: &'static str,
    /// The per-pair entry point.
    pub run: fn(ObjectRef<'_>, ObjectRef<'_>) -> FindOutcome,
}

/// The four compared methods, in the paper's presentation order.
pub const METHODS: [Method; 4] = [
    Method {
        name: "ST2",
        run: find_relation_st2,
    },
    Method {
        name: "OP2",
        run: find_relation_op2,
    },
    Method {
        name: "APRIL",
        run: find_relation_april,
    },
    Method {
        name: "P+C",
        run: find_relation,
    },
];

/// Result of running one method over one candidate stream.
#[derive(Clone, Copy, Debug)]
pub struct MethodResult {
    /// Pairs processed per second.
    pub throughput: f64,
    /// The paper's "% of undetermined pairs".
    pub undetermined_pct: f64,
    /// Total wall time.
    pub total_time: Duration,
    /// Aggregate outcome statistics.
    pub stats: PipelineStats,
}

/// Runs `method` over every candidate pair of `setup` and measures it.
pub fn run_method(setup: &ComboSetup, method: &Method) -> MethodResult {
    let mut stats = PipelineStats::default();
    let t = Instant::now();
    for &(i, j) in &setup.pairs {
        let (r, s) = setup.pair(i, j);
        stats.record(&(method.run)(r, s));
    }
    let total_time = t.elapsed();
    MethodResult {
        throughput: stats.pairs as f64 / total_time.as_secs_f64().max(1e-12),
        undetermined_pct: stats.undetermined_pct(),
        total_time,
        stats,
    }
}

/// Runs a second, instrumented P+C pass over `setup`'s candidate stream
/// and returns the per-stage/per-class profile.
///
/// Deliberately separate from [`run_method`]: throughput numbers are
/// always measured with profiling statically disabled, and the profile
/// comes from this extra pass whose wall time is never reported.
pub fn profile_pc(setup: &ComboSetup) -> JoinProfile {
    let mut rec = Recorder::new();
    for &(i, j) in &setup.pairs {
        let (r, s) = setup.pair(i, j);
        let _ = find_relation_profiled(r, s, &mut rec);
    }
    rec.into_profile()
}

impl MethodResult {
    /// One method's entry in a `stj-bench/v1` document.
    pub fn to_json(&self, name: &str) -> Json {
        Json::object([
            ("name", Json::str(name)),
            ("throughput_pairs_per_sec", Json::F64(self.throughput)),
            ("undetermined_pct", Json::F64(self.undetermined_pct)),
            (
                "total_ns",
                Json::U64(self.total_time.as_nanos().min(u128::from(u64::MAX)) as u64),
            ),
            (
                "stats",
                Json::object([
                    ("pairs", Json::U64(self.stats.pairs)),
                    ("by_mbr", Json::U64(self.stats.by_mbr)),
                    ("by_intermediate", Json::U64(self.stats.by_intermediate)),
                    ("refined", Json::U64(self.stats.refined)),
                ]),
            ),
        ])
    }
}

/// Complexity ranges and their grouped pair lists, as returned by
/// [`complexity_levels`].
pub type ComplexityGroups = (Vec<(usize, usize)>, Vec<Vec<(u32, u32)>>);

/// Splits candidate pairs into `levels` equi-depth groups by pair
/// complexity (sum of vertex counts), mirroring the paper's Table 4.
/// Returns `(complexity ranges, grouped pair lists)`.
pub fn complexity_levels(setup: &ComboSetup, levels: usize) -> ComplexityGroups {
    let mut keyed: Vec<(usize, (u32, u32))> = setup
        .pairs
        .iter()
        .map(|&(i, j)| {
            let (r, s) = setup.pair(i, j);
            (r.num_vertices() + s.num_vertices(), (i, j))
        })
        .collect();
    keyed.sort_unstable_by_key(|&(c, _)| c);
    let n = keyed.len();
    let mut ranges = Vec::with_capacity(levels);
    let mut groups = Vec::with_capacity(levels);
    for l in 0..levels {
        let lo = l * n / levels;
        let hi = ((l + 1) * n / levels).min(n);
        if lo >= hi {
            ranges.push((0, 0));
            groups.push(Vec::new());
            continue;
        }
        ranges.push((keyed[lo].0, keyed[hi - 1].0));
        groups.push(keyed[lo..hi].iter().map(|&(_, p)| p).collect());
    }
    (ranges, groups)
}

/// Formats a byte count as MB with one decimal, as in Table 2.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1_048_576.0)
}

/// Formats a large count compactly (`63.3K`, `5.18M`), as in Table 3.
pub fn human_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_setup_is_consistent() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        assert!(!setup.pairs.is_empty());
        for &(i, j) in &setup.pairs {
            assert!((i as usize) < setup.r.len());
            assert!((j as usize) < setup.s.len());
            let (r, s) = setup.pair(i, j);
            assert!(r.mbr.intersects(s.mbr));
        }
    }

    #[test]
    fn methods_agree_and_pc_refines_least() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        let results: Vec<MethodResult> = METHODS.iter().map(|m| run_method(&setup, m)).collect();
        for r in &results {
            assert_eq!(r.stats.pairs, setup.pairs.len() as u64);
        }
        let by_name = |n: &str| results[METHODS.iter().position(|m| m.name == n).unwrap()];
        assert!(by_name("P+C").stats.refined <= by_name("APRIL").stats.refined);
        assert!(by_name("APRIL").stats.refined <= by_name("ST2").stats.refined);
    }

    #[test]
    fn complexity_levels_are_equi_depth_and_ordered() {
        let setup = ComboSetup::build(ComboId::OleOpe, 0.01);
        let (ranges, groups) = complexity_levels(&setup, 5);
        assert_eq!(groups.len(), 5);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, setup.pairs.len());
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0 || w[1] == (0, 0));
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1_048_576), "1.0");
        assert_eq!(human_count(63_300), "63.3K");
        assert_eq!(human_count(5_180_000), "5.18M");
        assert_eq!(human_count(42), "42");
    }
}
