//! One function per paper table/figure, printing the regenerated rows.

use crate::harness::{
    complexity_levels, default_scale, human_count, mb, profile_pc, run_method, threads, ComboSetup,
    Method, MethodResult, GRID_ORDER, METHODS,
};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use stj_core::{
    find_relation, intermediate_filter, mbr_class_labels, refine, relate_p, Dataset, IfOutcome,
};
use stj_datagen::{fig9_lake_in_park, generate, ComboId, DatasetId, ALL_COMBOS};
use stj_de9im::TopoRelation;
use stj_geom::Rect;
use stj_index::{mbr_join_parallel, MbrRelation};
use stj_obs::{JoinProfile, Json};
use stj_raster::Grid;

/// Table 2: dataset description — object counts and storage footprints
/// of polygons, MBRs and `P`+`C` interval lists.
pub fn table2(scale: f64) {
    println!("== Table 2: datasets (synthetic stand-ins at scale {scale}; paper counts in parentheses) ==");
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>10} {:>10}",
        "Dataset", "#polygons", "(paper)", "Size (MB)", "MBRs (MB)", "P+C (MB)"
    );
    let ids = [
        DatasetId::TL,
        DatasetId::TW,
        DatasetId::TC,
        DatasetId::TZ,
        DatasetId::OBE,
        DatasetId::OLE,
        DatasetId::OPE,
        DatasetId::OBN,
        DatasetId::OLN,
        DatasetId::OPN,
    ];
    for id in ids {
        let polys = generate(id, scale);
        let mut extent = Rect::empty();
        for p in &polys {
            extent.grow_rect(p.mbr());
        }
        let grid = Grid::new(extent, GRID_ORDER);
        let ds = Dataset::build_parallel_with_budget(
            id.name(),
            polys,
            &grid,
            threads(),
            id.interval_budget(),
        );
        let (poly_b, mbr_b, april_b) = ds.storage_bytes();
        println!(
            "{:<8} {:>10} {:>14} {:>12} {:>10} {:>10}",
            id.name(),
            ds.len(),
            format!("({})", human_count(id.paper_count())),
            mb(poly_b),
            mb(mbr_b),
            mb(april_b)
        );
    }
}

/// Table 3: candidate pairs (MBR-filter survivors) per combination.
pub fn table3(scale: f64) {
    println!("== Table 3: candidate pairs per combination (scale {scale}) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>16}",
        "Datasets", "|R|", "|S|", "Candidate pairs"
    );
    for combo in ALL_COMBOS {
        let (r_polys, s_polys) = stj_datagen::generate_combo(combo, scale);
        let r_mbrs: Vec<Rect> = r_polys.iter().map(|p| *p.mbr()).collect();
        let s_mbrs: Vec<Rect> = s_polys.iter().map(|p| *p.mbr()).collect();
        let pairs = mbr_join_parallel(&r_mbrs, &s_mbrs, threads());
        println!(
            "{:<10} {:>10} {:>10} {:>16}",
            combo.name(),
            r_polys.len(),
            s_polys.len(),
            human_count(pairs.len() as u64)
        );
    }
}

/// One combination's full Figure-7 measurement: the per-method results
/// (parallel to [`METHODS`]) plus, optionally, a profiled P+C pass run
/// after the timed sweeps so throughput is never measured instrumented.
pub struct ComboReport {
    /// Which combination was measured.
    pub combo: ComboId,
    /// Candidate pairs in the stream.
    pub pairs: usize,
    /// One [`MethodResult`] per [`METHODS`] entry, same order.
    pub results: Vec<MethodResult>,
    /// Per-stage/per-class P+C profile (only when requested).
    pub pc_profile: Option<JoinProfile>,
}

/// Measures every combination for Figure 7 and returns the raw results.
/// With `profile` set, each combo also gets an instrumented P+C pass
/// (used by [`repro_all`] to emit `BENCH_PR1.json`).
pub fn fig7_collect(scale: f64, profile: bool) -> Vec<ComboReport> {
    ALL_COMBOS
        .into_iter()
        .map(|combo| {
            let setup = ComboSetup::build(combo, scale);
            let results = METHODS.iter().map(|m| run_method(&setup, m)).collect();
            let pc_profile = profile.then(|| profile_pc(&setup));
            ComboReport {
                combo,
                pairs: setup.pairs.len(),
                results,
                pc_profile,
            }
        })
        .collect()
}

/// Prints the Figure 7 table from collected reports.
pub fn fig7_print(reports: &[ComboReport]) {
    println!("== Figure 7(a): find relation throughput (pairs/sec) + 7(b): % undetermined ==");
    println!(
        "{:<10} {:>8} | {:>9} {:>9} {:>9} {:>9} | {:>6} {:>6} {:>6} {:>6}",
        "Combo", "pairs", "ST2", "OP2", "APRIL", "P+C", "ST2%", "OP2%", "APR%", "P+C%"
    );
    for rep in reports {
        let r = &rep.results;
        println!(
            "{:<10} {:>8} | {:>9.0} {:>9.0} {:>9.0} {:>9.0} | {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            rep.combo.name(),
            rep.pairs,
            r[0].throughput,
            r[1].throughput,
            r[2].throughput,
            r[3].throughput,
            r[0].undetermined_pct,
            r[1].undetermined_pct,
            r[2].undetermined_pct,
            r[3].undetermined_pct,
        );
    }
    println!("(paper shape: P+C ~= 10x ST2/OP2 throughput, a few x APRIL; undetermined ~100% -> ~50% -> ~25%)");
}

/// Figure 7: (a) find-relation throughput of ST2/OP2/APRIL/P+C per
/// combination; (b) % of undetermined (refined) pairs per method.
pub fn fig7(scale: f64) {
    fig7_print(&fig7_collect(scale, false));
}

/// Builds the machine-readable benchmark telemetry (`stj-bench/v1`):
/// one entry per combination with per-method throughput and outcome
/// stats, plus the profiled P+C pass (per-stage latency histograms and
/// per-MBR-class breakdown) where one was collected.
pub fn bench_report(reports: &[ComboReport], scale: f64) -> Json {
    let labels = mbr_class_labels();
    let mut combos = Vec::with_capacity(reports.len());
    for rep in reports {
        let methods = METHODS
            .iter()
            .zip(&rep.results)
            .map(|(m, r)| r.to_json(m.name))
            .collect();
        let mut combo = Json::object([
            ("combo", Json::str(rep.combo.name())),
            ("pairs", Json::U64(rep.pairs as u64)),
            ("methods", Json::Arr(methods)),
        ]);
        if let Some(profile) = &rep.pc_profile {
            combo.push("pc_profile", profile.to_json(&labels));
        }
        combos.push(combo);
    }
    Json::object([
        ("schema", Json::str("stj-bench/v1")),
        ("scale", Json::F64(scale)),
        ("grid_order", Json::U64(u64::from(GRID_ORDER))),
        ("threads", Json::U64(threads() as u64)),
        ("combos", Json::Arr(combos)),
    ])
}

/// Where a bench binary writes its telemetry. All harness binaries
/// resolve their output through this one rule so `$STJ_BENCH_JSON`
/// works uniformly:
///
/// - unset → `default_name` in the working directory;
/// - set to a directory (existing, or any value ending in `/`) →
///   `dir/default_name`, letting one variable redirect *every* bench
///   artifact without filename collisions;
/// - set to anything else → used verbatim as the output file.
pub fn bench_output_path(default_name: &str) -> String {
    resolve_bench_output(
        std::env::var("STJ_BENCH_JSON").ok().as_deref(),
        default_name,
    )
}

/// The pure resolution rule behind [`bench_output_path`].
pub fn resolve_bench_output(env: Option<&str>, default_name: &str) -> String {
    match env {
        None => default_name.to_string(),
        Some(v) if v.ends_with('/') || std::path::Path::new(v).is_dir() => std::path::Path::new(v)
            .join(default_name)
            .display()
            .to_string(),
        Some(v) => v.to_string(),
    }
}

/// Where [`repro_all`] writes its telemetry: `$STJ_BENCH_JSON` (see
/// [`bench_output_path`]), or `BENCH_PR1.json` by default.
pub fn bench_json_path() -> String {
    bench_output_path("BENCH_PR1.json")
}

/// Table 4 + Figure 8: OLE-OPE pairs grouped into 10 equi-depth
/// complexity levels; per level, P+C filter effectiveness (8a) and the
/// cost split OP2-REF vs P+C-IF vs P+C-REF (8b). Also reports the
/// data-access saving (Sec 4.3).
pub fn fig8(scale: f64) {
    fig8_with(&ComboSetup::build(ComboId::OleOpe, scale));
}

/// [`fig8`] over a prebuilt setup (lets `repro_all` reuse OLE-OPE).
pub fn fig8_with(setup: &ComboSetup) {
    let levels = 10;
    let (ranges, groups) = complexity_levels(setup, levels);

    println!("== Table 4: OLE-OPE pairs by complexity level (sum of vertices) ==");
    println!(
        "{:<6} {:>18} {:>12}",
        "Level", "Sum of vertices", "Pair count"
    );
    for (l, (range, group)) in ranges.iter().zip(&groups).enumerate() {
        println!(
            "{:<6} {:>18} {:>12}",
            l + 1,
            format!("[{},{}]", range.0, range.1),
            group.len()
        );
    }

    println!("\n== Figure 8(a): P+C % undetermined, 8(b): time per level (OP2-REF / P+C-IF / P+C-REF) ==");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Level", "undet. %", "OP2-REF", "P+C-IF", "P+C-REF", "P+C total"
    );
    let op2 = &METHODS[1];
    let mut pc_refined_objects: HashSet<(bool, u32)> = HashSet::new();
    let mut all_objects: HashSet<(bool, u32)> = HashSet::new();
    for (l, group) in groups.iter().enumerate() {
        // OP2: effectively refinement for (almost) every pair.
        let t = Instant::now();
        for &(i, j) in group {
            let (r, s) = setup.pair(i, j);
            let _ = (op2.run)(r, s);
        }
        let op2_time = t.elapsed();

        // P+C split: intermediate-filter pass, then refinement pass.
        let t = Instant::now();
        let mut to_refine: Vec<(u32, u32, &[TopoRelation])> = Vec::new();
        for &(i, j) in group {
            let (r, s) = setup.pair(i, j);
            let mbr_rel = MbrRelation::classify(r.mbr, s.mbr);
            match intermediate_filter(mbr_rel, r, s) {
                IfOutcome::Definite(_) => {}
                IfOutcome::Refine(c) => to_refine.push((i, j, c)),
            }
        }
        let if_time = t.elapsed();
        let t = Instant::now();
        for &(i, j, c) in &to_refine {
            let (r, s) = setup.pair(i, j);
            let _ = refine(r, s, c);
        }
        let ref_time = t.elapsed();

        for &(i, j) in group {
            all_objects.insert((true, i));
            all_objects.insert((false, j));
        }
        for &(i, j, _) in &to_refine {
            pc_refined_objects.insert((true, i));
            pc_refined_objects.insert((false, j));
        }

        let undet = to_refine.len() as f64 / group.len().max(1) as f64 * 100.0;
        println!(
            "{:<6} {:>11.1}% {:>12} {:>12} {:>12} {:>12}",
            l + 1,
            undet,
            fmt_dur(op2_time),
            fmt_dur(if_time),
            fmt_dur(ref_time),
            fmt_dur(if_time + ref_time),
        );
    }
    println!(
        "\ndata access: P+C loads {:.1}% of the unique objects OP2 loads (paper: 48.5%)",
        pc_refined_objects.len() as f64 / all_objects.len().max(1) as f64 * 100.0
    );
    println!("(paper shape: undetermined % falls with complexity; OP2-REF grows superlinearly; P+C total stays nearly flat)");
}

/// Table 5: find-relation vs `relate_p` throughput on OLE-OPE for the
/// equals / meets / inside predicates.
pub fn table5(scale: f64) {
    table5_with(&ComboSetup::build(ComboId::OleOpe, scale));
}

/// [`table5`] over a prebuilt setup (lets `repro_all` reuse OLE-OPE).
pub fn table5_with(setup: &ComboSetup) {
    println!("== Table 5: throughput (pairs/sec), find relation vs relate_p (OLE-OPE) ==");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "Method", "Equals", "Meets", "Inside"
    );

    let fr = run_method(
        setup,
        &Method {
            name: "P+C",
            run: find_relation,
        },
    );
    println!(
        "{:<14} {:>12.1} {:>12.1} {:>12.1}",
        "find relation", fr.throughput, fr.throughput, fr.throughput
    );

    let mut row = vec![];
    for p in [
        TopoRelation::Equals,
        TopoRelation::Meets,
        TopoRelation::Inside,
    ] {
        let t = Instant::now();
        let mut holds = 0u64;
        for &(i, j) in &setup.pairs {
            let (r, s) = setup.pair(i, j);
            if relate_p(r, s, p).holds {
                holds += 1;
            }
        }
        let dt = t.elapsed();
        row.push(setup.pairs.len() as f64 / dt.as_secs_f64().max(1e-12));
        let _ = holds;
    }
    println!(
        "{:<14} {:>12.1} {:>12.1} {:>12.1}",
        "relate_p", row[0], row[1], row[2]
    );
    println!(
        "(paper shape: relate_p >= find relation for all predicates; meets is dramatically faster)"
    );
}

/// Figure 9: the high-complexity lake-inside-park case study.
pub fn fig9() {
    let (lake_poly, park_poly) = fig9_lake_in_park(42);
    let grid = Grid::new(Rect::from_coords(0.0, 0.0, 1000.0, 1000.0), GRID_ORDER);
    let lake = stj_core::SpatialObject::build(lake_poly, &grid);
    let park = stj_core::SpatialObject::build(park_poly, &grid);

    println!("== Figure 9: level-10 complexity pair (lake inside park) ==");
    println!("{:<14} {:>10} {:>10}", "", "Lake", "Park");
    println!(
        "{:<14} {:>10} {:>10}",
        "Vertices",
        lake.num_vertices(),
        park.num_vertices()
    );
    println!(
        "{:<14} {:>10.4} {:>10.4}",
        "MBR area",
        lake.mbr.area() / grid.extent().area(),
        park.mbr.area() / grid.extent().area()
    );
    println!(
        "{:<14} {:>10} {:>10}",
        "C-intervals",
        lake.april.c.len(),
        park.april.c.len()
    );
    println!(
        "{:<14} {:>10} {:>10}",
        "P-intervals",
        lake.april.p.len(),
        park.april.p.len()
    );

    let reps = 20u32;
    let mut times = Vec::new();
    for m in METHODS {
        let t = Instant::now();
        let mut out = None;
        for _ in 0..reps {
            out = Some((m.run)(lake.view(), park.view()));
        }
        let dt = t.elapsed() / reps;
        times.push((m.name, out.unwrap().relation, dt));
    }
    println!("\n{:<8} {:<12} {:>12}", "Method", "Relation", "time/pair");
    for (name, rel, dt) in &times {
        println!("{:<8} {:<12} {:>12}", name, rel.to_string(), fmt_dur(*dt));
    }
    let pc = times.iter().find(|t| t.0 == "P+C").unwrap().2;
    let st2 = times.iter().find(|t| t.0 == "ST2").unwrap().2;
    println!(
        "\nP+C speedup on this pair: {:.0}x (paper: 50x)",
        st2.as_secs_f64() / pc.as_secs_f64()
    );
}

/// Runs every experiment in sequence (the `repro_all` binary) and
/// writes the `stj-bench/v1` telemetry to [`bench_json_path`].
pub fn repro_all() {
    let scale = default_scale();
    println!("# Scalable Spatial Topology Joins — full reproduction run");
    println!(
        "# scale={scale} grid_order={GRID_ORDER} threads={}  (set STJ_SCALE to change)\n",
        threads()
    );
    let t = Instant::now();
    table2(scale);
    println!();
    table3(scale);
    println!();
    let reports = fig7_collect(scale, true);
    fig7_print(&reports);
    println!();
    // OLE-OPE is reused by the complexity and relate_p experiments.
    let ole_ope = ComboSetup::build(ComboId::OleOpe, scale);
    fig8_with(&ole_ope);
    println!();
    table5_with(&ole_ope);
    println!();
    fig9();

    let path = bench_json_path();
    match std::fs::write(&path, bench_report(&reports, scale).render()) {
        Ok(()) => println!("\nwrote bench telemetry: {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
    println!("total reproduction time: {:.1?}", t.elapsed());
}

/// Compact duration formatting for table cells.
fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}
