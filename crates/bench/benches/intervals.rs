//! Microbenchmarks of the four interval-list relations (Sec 3.2): each
//! must stay a linear merge-join across list sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stj_raster::IntervalList;

/// A synthetic list of `n` intervals with the given run/gap cadence.
fn list(n: usize, start: u64, run: u64, gap: u64) -> IntervalList {
    let mut ranges = Vec::with_capacity(n);
    let mut pos = start;
    for _ in 0..n {
        ranges.push((pos, pos + run));
        pos += run + gap;
    }
    IntervalList::from_ranges(ranges)
}

fn bench_relations(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_relations");
    for &n in &[16usize, 256, 4096] {
        // Interleaved lists: overlap scans deep before finding a hit.
        let a = list(n, 0, 4, 4);
        let b = list(n, 2, 4, 4); // overlaps a
        let disjoint = list(n, 1_000_000, 4, 4);
        let inner = list(n / 2, 0, 2, 6); // inside a's runs
        g.bench_with_input(BenchmarkId::new("overlap_hit", n), &n, |bench, _| {
            bench.iter(|| black_box(a.overlaps(black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("overlap_miss", n), &n, |bench, _| {
            bench.iter(|| black_box(a.overlaps(black_box(&disjoint))))
        });
        g.bench_with_input(BenchmarkId::new("inside_true", n), &n, |bench, _| {
            bench.iter(|| black_box(inner.inside(black_box(&a))))
        });
        g.bench_with_input(BenchmarkId::new("inside_false", n), &n, |bench, _| {
            bench.iter(|| black_box(b.inside(black_box(&a))))
        });
        g.bench_with_input(BenchmarkId::new("match_eq", n), &n, |bench, _| {
            let a2 = a.clone();
            bench.iter(|| black_box(a.matches(black_box(&a2))))
        });
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_construction");
    for &n in &[256usize, 4096] {
        let ranges: Vec<(u64, u64)> = (0..n as u64)
            .map(|i| (i * 7 % 10_000, i * 7 % 10_000 + 3))
            .collect();
        g.bench_with_input(BenchmarkId::new("from_ranges", n), &n, |bench, _| {
            bench.iter(|| black_box(IntervalList::from_ranges(black_box(ranges.clone()))))
        });
    }
    g.finish();
}

fn fast_config() -> Criterion {
    // Bounded run time: the suite has ~55 benchmark points and must stay
    // usable on a single-core box.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_relations, bench_construction
}
criterion_main!(benches);
