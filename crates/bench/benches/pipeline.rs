//! Microbenchmarks of the find-relation pipeline per method and per
//! determination path — the per-pair costs behind Figure 7.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stj_core::{
    find_relation, find_relation_april, find_relation_op2, find_relation_st2, ObjectRef,
    SpatialObject,
};
use stj_datagen::{pair_with_relation, star_polygon, StarParams};
use stj_de9im::TopoRelation;
use stj_geom::{Point, Rect};
use stj_raster::Grid;

fn grid() -> Grid {
    Grid::new(Rect::from_coords(-300.0, -300.0, 1300.0, 1300.0), 14)
}

fn obj_pair(rel: TopoRelation, complexity: usize, seed: u64) -> (SpatialObject, SpatialObject) {
    let g = grid();
    let (a, b) = pair_with_relation(rel, complexity, seed);
    (SpatialObject::build(a, &g), SpatialObject::build(b, &g))
}

fn bench_methods_per_relation(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_methods");
    g.sample_size(30);
    for rel in [
        TopoRelation::Disjoint,
        TopoRelation::Inside,
        TopoRelation::Meets,
        TopoRelation::Intersects,
    ] {
        let (r, s) = obj_pair(rel, 512, 31);
        for (name, f) in [
            ("PC", find_relation as fn(ObjectRef<'_>, ObjectRef<'_>) -> _),
            ("ST2", find_relation_st2),
            ("OP2", find_relation_op2),
            ("APRIL", find_relation_april),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("{rel:?}")),
                &rel,
                |bench, _| bench.iter(|| black_box(f(black_box(r.view()), black_box(s.view())))),
            );
        }
    }
    g.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    // APRIL construction cost per object size — the (unmeasured in the
    // paper, but practically relevant) preprocessing step.
    let mut g = c.benchmark_group("april_build");
    g.sample_size(15);
    for &n in &[32usize, 256, 2048] {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(n as u64);
        let poly = star_polygon(
            &mut rng,
            &StarParams {
                center: Point::new(500.0, 500.0),
                avg_radius: 8.0,
                irregularity: 0.5,
                spikiness: 0.3,
                num_vertices: n,
            },
        );
        let gr = grid();
        g.bench_with_input(BenchmarkId::new("vertices", n), &n, |bench, _| {
            bench.iter(|| black_box(stj_raster::AprilApprox::build(black_box(&poly), &gr)))
        });
    }
    g.finish();
}

fn fast_config() -> Criterion {
    // Bounded run time: the suite has ~55 benchmark points and must stay
    // usable on a single-core box.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_methods_per_relation, bench_preprocessing
}
criterion_main!(benches);
