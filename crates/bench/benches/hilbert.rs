//! Microbenchmarks of Hilbert curve encoding/decoding — the cell-id
//! backbone of every raster approximation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stj_raster::hilbert::{block_range, d_to_xy, xy_to_d};

fn bench_hilbert(c: &mut Criterion) {
    let mut g = c.benchmark_group("hilbert");
    for &order in &[8u32, 16] {
        let side = 1u32 << order;
        let coords: Vec<(u32, u32)> = (0..1024u32)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                (h % side, (h >> 16) % side)
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("xy_to_d_1k", order), &order, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(x, y) in &coords {
                    acc = acc.wrapping_add(xy_to_d(black_box(order), x, y));
                }
                black_box(acc)
            })
        });
        let ids: Vec<u64> = coords.iter().map(|&(x, y)| xy_to_d(order, x, y)).collect();
        g.bench_with_input(BenchmarkId::new("d_to_xy_1k", order), &order, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for &d in &ids {
                    let (x, y) = d_to_xy(black_box(order), d);
                    acc = acc.wrapping_add(x ^ y);
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("block_range", |b| {
        b.iter(|| black_box(block_range(black_box(16), 1024, 2048, 8)))
    });
    g.finish();
}

fn fast_config() -> Criterion {
    // Bounded run time: the suite has ~55 benchmark points and must stay
    // usable on a single-core box.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_hilbert
}
criterion_main!(benches);
