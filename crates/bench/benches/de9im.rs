//! Microbenchmarks of the DE-9IM refinement oracle across pair
//! complexities — the cost the intermediate filters avoid. The paper's
//! Sec 4.3 builds on this cost growing superlinearly with the summed
//! vertex count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stj_datagen::pair_with_relation;
use stj_de9im::{relate, TopoRelation};

fn bench_relate_by_complexity(c: &mut Criterion) {
    let mut g = c.benchmark_group("de9im_relate");
    g.sample_size(20);
    for &complexity in &[32usize, 128, 512, 2048] {
        // One overlapping and one containment pair per complexity: the
        // two dominant refinement workloads.
        let (a1, b1) = pair_with_relation(TopoRelation::Intersects, complexity, 11);
        g.bench_with_input(
            BenchmarkId::new("intersects", complexity),
            &complexity,
            |bench, _| bench.iter(|| black_box(relate(black_box(&a1), black_box(&b1)))),
        );
        let (a2, b2) = pair_with_relation(TopoRelation::Inside, complexity, 12);
        g.bench_with_input(
            BenchmarkId::new("inside", complexity),
            &complexity,
            |bench, _| bench.iter(|| black_box(relate(black_box(&a2), black_box(&b2)))),
        );
        let (a3, b3) = pair_with_relation(TopoRelation::Meets, complexity, 13);
        g.bench_with_input(
            BenchmarkId::new("meets", complexity),
            &complexity,
            |bench, _| bench.iter(|| black_box(relate(black_box(&a3), black_box(&b3)))),
        );
    }
    g.finish();
}

fn bench_prepared_reuse(c: &mut Criterion) {
    use stj_de9im::{relate_prepared, Prepared};
    let (a, b) = pair_with_relation(TopoRelation::Intersects, 1024, 21);
    let pa = Prepared::new(&a);
    let pb = Prepared::new(&b);
    let mut g = c.benchmark_group("de9im_prepared");
    g.bench_function("relate_prepared_1024", |bench| {
        bench.iter(|| black_box(relate_prepared(black_box(&pa), black_box(&pb))))
    });
    g.bench_function("prepare_1024", |bench| {
        bench.iter(|| black_box(Prepared::new(black_box(&a))))
    });
    g.finish();
}

fn fast_config() -> Criterion {
    // Bounded run time: the suite has ~55 benchmark points and must stay
    // usable on a single-core box.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_relate_by_complexity, bench_prepared_reuse
}
criterion_main!(benches);
