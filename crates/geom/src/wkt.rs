//! Minimal WKT (Well-Known Text) reader/writer for polygons.
//!
//! Supports exactly the subset the workspace needs for interchange and
//! examples: `POLYGON` and `MULTIPOLYGON`. The format mirrors what PostGIS
//! / GEOS / boost emit for these types.

use crate::multipolygon::MultiPolygon;
use crate::point::Point;
use crate::polygon::{GeomError, Polygon, Ring};
use std::fmt::Write as _;

/// Errors raised while parsing WKT.
#[derive(Clone, Debug, PartialEq)]
pub enum WktError {
    /// Unexpected token or malformed structure; payload describes what was
    /// expected and the byte offset.
    Syntax(String),
    /// Ring/polygon constraints violated (e.g. too few vertices).
    Geometry(GeomError),
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WktError::Syntax(s) => write!(f, "WKT syntax error: {s}"),
            WktError::Geometry(e) => write!(f, "WKT geometry error: {e}"),
        }
    }
}

impl std::error::Error for WktError {}

impl From<GeomError> for WktError {
    fn from(e: GeomError) -> Self {
        WktError::Geometry(e)
    }
}

/// Formats a polygon as WKT.
pub fn polygon_to_wkt(p: &Polygon) -> String {
    let mut s = String::from("POLYGON ");
    write_polygon_body(&mut s, p);
    s
}

/// Formats a multi-polygon as WKT.
pub fn multipolygon_to_wkt(mp: &MultiPolygon) -> String {
    let mut s = String::from("MULTIPOLYGON (");
    for (i, m) in mp.members().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write_polygon_body(&mut s, m);
    }
    s.push(')');
    s
}

fn write_polygon_body(s: &mut String, p: &Polygon) {
    s.push('(');
    write_ring(s, p.outer());
    for h in p.holes() {
        s.push_str(", ");
        write_ring(s, h);
    }
    s.push(')');
}

fn write_ring(s: &mut String, r: &Ring) {
    s.push('(');
    for (i, v) in r.vertices().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} {}", v.x, v.y);
    }
    // WKT rings are closed: repeat the first vertex.
    let first = r.vertices()[0];
    let _ = write!(s, ", {} {}", first.x, first.y);
    s.push(')');
}

/// Parses a `POLYGON (...)` WKT string.
pub fn polygon_from_wkt(input: &str) -> Result<Polygon, WktError> {
    let mut p = Parser::new(input);
    p.expect_keyword("POLYGON")?;
    let poly = p.parse_polygon_body()?;
    p.expect_end()?;
    Ok(poly)
}

/// Parses a `MULTIPOLYGON (...)` WKT string.
pub fn multipolygon_from_wkt(input: &str) -> Result<MultiPolygon, WktError> {
    let mut p = Parser::new(input);
    p.expect_keyword("MULTIPOLYGON")?;
    p.expect_char('(')?;
    let mut members = Vec::new();
    loop {
        members.push(p.parse_polygon_body()?);
        if !p.try_char(',') {
            break;
        }
    }
    p.expect_char(')')?;
    p.expect_end()?;
    if members.is_empty() {
        return Err(WktError::Syntax("empty MULTIPOLYGON".into()));
    }
    Ok(MultiPolygon::new(members))
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> WktError {
        WktError::Syntax(format!("expected {what} at byte {}", self.pos))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), WktError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(kw))
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), WktError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(&c.to_string()))
        }
    }

    fn try_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect_end(&mut self) -> Result<(), WktError> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(self.err("end of input"))
        }
    }

    fn parse_number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .take_while(|(_, c)| matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .ok_or_else(|| self.err("number"))?;
        let tok = &rest[..end];
        let v: f64 = tok.parse().map_err(|_| self.err("number"))?;
        self.pos += end;
        Ok(v)
    }

    fn parse_ring(&mut self) -> Result<Ring, WktError> {
        self.expect_char('(')?;
        let mut pts = Vec::new();
        loop {
            let x = self.parse_number()?;
            let y = self.parse_number()?;
            pts.push(Point::new(x, y));
            if !self.try_char(',') {
                break;
            }
        }
        self.expect_char(')')?;
        Ok(Ring::new(pts)?)
    }

    fn parse_polygon_body(&mut self) -> Result<Polygon, WktError> {
        self.expect_char('(')?;
        let outer = self.parse_ring()?;
        let mut holes = Vec::new();
        while self.try_char(',') {
            holes.push(self.parse_ring()?);
        }
        self.expect_char(')')?;
        Ok(Polygon::new(outer, holes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn roundtrip_simple_polygon() {
        let p = Polygon::rect(Rect::from_coords(0.0, 0.0, 2.0, 3.0));
        let wkt = polygon_to_wkt(&p);
        let q = polygon_from_wkt(&wkt).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_hole() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]],
        )
        .unwrap();
        let q = polygon_from_wkt(&polygon_to_wkt(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parse_standard_forms() {
        let p = polygon_from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        assert_eq!(p.area(), 16.0);
        // Case-insensitive keyword, arbitrary whitespace, scientific
        // notation and negatives.
        let p2 = polygon_from_wkt("polygon((0 0,1e1 0,10 -1.5e1,0 -15,0 0))").unwrap();
        assert_eq!(p2.num_vertices(), 4);
    }

    #[test]
    fn roundtrip_multipolygon() {
        let mp = MultiPolygon::new(vec![
            Polygon::rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            Polygon::rect(Rect::from_coords(5.0, 5.0, 6.0, 7.0)),
        ]);
        let q = multipolygon_from_wkt(&multipolygon_to_wkt(&mp)).unwrap();
        assert_eq!(mp, q);
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(
            polygon_from_wkt("POINT (0 0)"),
            Err(WktError::Syntax(_))
        ));
        assert!(matches!(
            polygon_from_wkt("POLYGON ((0 0, 1 1))"),
            Err(WktError::Geometry(GeomError::TooFewVertices))
        ));
        assert!(polygon_from_wkt("POLYGON ((0 0, 1 0, 1 1, 0 0)) trailing").is_err());
        assert!(polygon_from_wkt("POLYGON ((0 0, 1 x, 1 1, 0 0))").is_err());
    }
}
