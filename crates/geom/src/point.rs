//! 2-D points with `f64` coordinates.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the Euclidean plane.
///
/// Coordinates are finite `f64` values. All higher-level types in this
/// crate (segments, rings, polygons) are built from `Point`s, and the
/// robust predicates in [`crate::predicates`] give exact answers for any
/// finite coordinates, so no particular coordinate scale is required.
///
/// `#[repr(C)]` pins the layout to two consecutive `f64`s so columnar
/// stores can reinterpret point columns from raw little-endian words.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] when only comparisons are needed,
    /// as it avoids the square root.
    #[inline]
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Lexicographic comparison (x first, then y).
    ///
    /// Total order for finite coordinates; used by sweep algorithms to
    /// order event points deterministically.
    #[inline]
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .expect("non-finite coordinate")
            .then(self.y.partial_cmp(&other.y).expect("non-finite coordinate"))
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(-2.0, 4.0);
        let b = Point::new(6.0, -8.0);
        assert_eq!(a.midpoint(b), Point::new(2.0, -2.0));
    }

    #[test]
    fn lexicographic_order() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 6.0);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(b.lex_cmp(&a), Ordering::Greater);
        assert_eq!(a.lex_cmp(&c), Ordering::Less);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a + b, Point::new(11.0, 22.0));
        assert_eq!(b - a, Point::new(9.0, 18.0));
        assert_eq!(a * 3.0, Point::new(3.0, 6.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
