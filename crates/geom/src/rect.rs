//! Axis-aligned rectangles (minimum bounding rectangles).

use crate::point::Point;

/// An axis-aligned rectangle, used throughout the pipeline as a minimum
/// bounding rectangle (MBR).
///
/// A `Rect` is *closed*: its boundary belongs to it. Degenerate rectangles
/// (zero width and/or height) are permitted — a point MBR is a valid MBR.
///
/// `#[repr(C)]` pins the layout to `min` then `max` (four consecutive
/// `f64`s) so columnar stores can reinterpret MBR columns from raw
/// little-endian words.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalizing the order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from `(xmin, ymin, xmax, ymax)`.
    ///
    /// # Panics
    /// Panics in debug builds if `xmin > xmax` or `ymin > ymax`.
    #[inline]
    pub fn from_coords(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        debug_assert!(xmin <= xmax && ymin <= ymax, "inverted rect");
        Rect {
            min: Point::new(xmin, ymin),
            max: Point::new(xmax, ymax),
        }
    }

    /// The empty-accumulator rectangle: growing it with any point yields
    /// that point's MBR.
    #[inline]
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Whether this rectangle is the empty accumulator (contains nothing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest rectangle covering a non-empty point set.
    pub fn of_points<I: IntoIterator<Item = Point>>(pts: I) -> Self {
        let mut r = Rect::empty();
        for p in pts {
            r.grow_point(p);
        }
        r
    }

    /// Expands the rectangle to cover `p`.
    #[inline]
    pub fn grow_point(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Expands the rectangle to cover `other`.
    #[inline]
    pub fn grow_rect(&mut self, other: &Rect) {
        self.min.x = self.min.x.min(other.min.x);
        self.min.y = self.min.y.min(other.min.y);
        self.max.x = self.max.x.max(other.max.x);
        self.max.y = self.max.y.max(other.max.y);
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area. Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Closed intersection test: shared boundary points count as
    /// intersecting (two MBRs that merely touch *do* intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Whether `self` contains `other` entirely (closed containment:
    /// equality counts).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Whether `self` contains point `p` (closed: boundary counts).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Whether `p` is in the interior of `self` (boundary excluded).
    #[inline]
    pub fn contains_point_strict(&self, p: Point) -> bool {
        self.min.x < p.x && p.x < self.max.x && self.min.y < p.y && p.y < self.max.y
    }

    /// Intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::from_coords(
            self.min.x.max(other.min.x),
            self.min.y.max(other.min.y),
            self.max.x.min(other.max.x),
            self.max.y.min(other.max.y),
        ))
    }

    /// Serialized size in bytes of an MBR record (4 × f64), used by the
    /// Table 2 storage accounting.
    pub const SERIALIZED_BYTES: usize = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn construction_normalizes() {
        let a = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 7.0));
        assert_eq!(a, r(2.0, 1.0, 5.0, 7.0));
    }

    #[test]
    fn empty_and_grow() {
        let mut e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        e.grow_point(Point::new(1.0, 2.0));
        assert!(!e.is_empty());
        assert_eq!(e, r(1.0, 2.0, 1.0, 2.0));
        e.grow_point(Point::new(-1.0, 5.0));
        assert_eq!(e, r(-1.0, 2.0, 1.0, 5.0));
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, -2.0),
            Point::new(1.0, 9.0),
        ];
        let b = Rect::of_points(pts);
        assert_eq!(b, r(0.0, -2.0, 3.0, 9.0));
        for p in pts {
            assert!(b.contains_point(p));
        }
    }

    #[test]
    fn intersection_tests() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert!(a.intersects(&r(5.0, 5.0, 15.0, 15.0)));
        assert!(a.intersects(&r(10.0, 0.0, 20.0, 10.0))); // touching edge
        assert!(a.intersects(&r(10.0, 10.0, 20.0, 20.0))); // touching corner
        assert!(!a.intersects(&r(10.1, 0.0, 20.0, 10.0)));
        assert!(!a.intersects(&r(0.0, -5.0, 10.0, -0.1)));
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert!(a.contains_rect(&r(1.0, 1.0, 9.0, 9.0)));
        assert!(a.contains_rect(&a)); // closed: equality counts
        assert!(!a.contains_rect(&r(1.0, 1.0, 11.0, 9.0)));
        assert!(a.contains_point(Point::new(0.0, 5.0)));
        assert!(!a.contains_point_strict(Point::new(0.0, 5.0)));
        assert!(a.contains_point_strict(Point::new(5.0, 5.0)));
    }

    #[test]
    fn intersection_rect() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(5.0, -5.0, 15.0, 5.0);
        assert_eq!(a.intersection(&b), Some(r(5.0, 0.0, 10.0, 5.0)));
        assert_eq!(a.intersection(&r(20.0, 20.0, 30.0, 30.0)), None);
        // Touching rectangles intersect in a degenerate rect.
        let t = a.intersection(&r(10.0, 0.0, 20.0, 10.0)).unwrap();
        assert_eq!(t.area(), 0.0);
        assert_eq!(t.width(), 0.0);
    }

    #[test]
    fn geometry_accessors() {
        let a = r(1.0, 2.0, 5.0, 10.0);
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.height(), 8.0);
        assert_eq!(a.area(), 32.0);
        assert_eq!(a.center(), Point::new(3.0, 6.0));
    }
}
