//! Multi-polygons and the [`Areal`] abstraction shared by the DE-9IM
//! engine.

use crate::interior_point::{try_interior_point_with, InteriorScratch};
use crate::point::Point;
use crate::polygon::{Location, Polygon};
use crate::rect::Rect;
use crate::segment::Segment;

/// Behaviour required of an areal geometry by the topology algorithms:
/// boundary edge enumeration, exact point location, and one representative
/// interior point per connected interior component.
///
/// Implemented by [`Polygon`] (one component) and [`MultiPolygon`] (one
/// per member). The DE-9IM completeness argument (see `stj-de9im`) needs
/// exactly these three capabilities.
pub trait Areal {
    /// The geometry's MBR.
    fn mbr(&self) -> Rect;
    /// All boundary edges (every ring of every component).
    fn collect_edges(&self, out: &mut Vec<Segment>);
    /// Exact location of `p` (interior / boundary / exterior).
    fn locate(&self, p: Point) -> Location;
    /// Appends one strictly-interior point per connected interior
    /// component to `out`, computing through the caller's scratch
    /// buffers. The hot-path entry used by the relate scratch arena.
    fn collect_interior_points(&self, scratch: &mut InteriorScratch, out: &mut Vec<Point>);
    /// One strictly-interior point per connected interior component.
    /// Allocating convenience over [`collect_interior_points`](Self::collect_interior_points).
    fn interior_points(&self) -> Vec<Point> {
        let mut out = Vec::new();
        self.collect_interior_points(&mut InteriorScratch::default(), &mut out);
        out
    }
    /// Total vertex count (the paper's complexity measure).
    fn num_vertices(&self) -> usize;
}

impl Areal for Polygon {
    fn mbr(&self) -> Rect {
        *Polygon::mbr(self)
    }

    fn collect_edges(&self, out: &mut Vec<Segment>) {
        out.extend(self.edges());
    }

    fn locate(&self, p: Point) -> Location {
        Polygon::locate(self, p)
    }

    fn collect_interior_points(&self, scratch: &mut InteriorScratch, out: &mut Vec<Point>) {
        out.push(
            try_interior_point_with(self, scratch)
                .expect("interior_point: polygon has no detectable interior"),
        );
    }

    fn num_vertices(&self) -> usize {
        Polygon::num_vertices(self)
    }
}

/// A collection of disjoint polygons treated as one areal geometry.
///
/// Validity assumption (OGC): members' interiors are pairwise disjoint;
/// boundaries may touch at finitely many points.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiPolygon {
    members: Vec<Polygon>,
    mbr: Rect,
}

impl MultiPolygon {
    /// Builds a multi-polygon from its members.
    ///
    /// # Panics
    /// Panics if `members` is empty (an empty geometry has no MBR and no
    /// meaningful topology).
    pub fn new(members: Vec<Polygon>) -> Self {
        assert!(!members.is_empty(), "MultiPolygon requires >= 1 member");
        let mut mbr = Rect::empty();
        for m in &members {
            mbr.grow_rect(m.mbr());
        }
        MultiPolygon { members, mbr }
    }

    /// The member polygons.
    #[inline]
    pub fn members(&self) -> &[Polygon] {
        &self.members
    }

    /// The multi-polygon's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// Total enclosed area.
    pub fn area(&self) -> f64 {
        self.members.iter().map(Polygon::area).sum()
    }
}

impl Areal for MultiPolygon {
    fn mbr(&self) -> Rect {
        self.mbr
    }

    fn collect_edges(&self, out: &mut Vec<Segment>) {
        for m in &self.members {
            out.extend(m.edges());
        }
    }

    fn locate(&self, p: Point) -> Location {
        // Members have disjoint interiors: the first non-outside answer
        // wins, except that a boundary hit must not be overridden.
        let mut loc = Location::Outside;
        for m in &self.members {
            match m.locate(p) {
                Location::Inside => return Location::Inside,
                Location::Boundary => loc = Location::Boundary,
                Location::Outside => {}
            }
        }
        loc
    }

    fn collect_interior_points(&self, scratch: &mut InteriorScratch, out: &mut Vec<Point>) {
        for m in &self.members {
            m.collect_interior_points(scratch, out);
        }
    }

    fn num_vertices(&self) -> usize {
        self.members.iter().map(Polygon::num_vertices).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rect(Rect::from_coords(x0, y0, x1, y1))
    }

    #[test]
    fn mbr_and_area() {
        let mp = MultiPolygon::new(vec![sq(0.0, 0.0, 1.0, 1.0), sq(5.0, 5.0, 7.0, 7.0)]);
        assert_eq!(*mp.mbr(), Rect::from_coords(0.0, 0.0, 7.0, 7.0));
        assert_eq!(mp.area(), 1.0 + 4.0);
        assert_eq!(Areal::num_vertices(&mp), 8);
    }

    #[test]
    fn locate_across_members() {
        let mp = MultiPolygon::new(vec![sq(0.0, 0.0, 1.0, 1.0), sq(5.0, 5.0, 7.0, 7.0)]);
        assert_eq!(Areal::locate(&mp, Point::new(0.5, 0.5)), Location::Inside);
        assert_eq!(Areal::locate(&mp, Point::new(6.0, 6.0)), Location::Inside);
        assert_eq!(Areal::locate(&mp, Point::new(3.0, 3.0)), Location::Outside);
        assert_eq!(Areal::locate(&mp, Point::new(1.0, 0.5)), Location::Boundary);
    }

    #[test]
    fn interior_points_one_per_member() {
        let mp = MultiPolygon::new(vec![sq(0.0, 0.0, 1.0, 1.0), sq(5.0, 5.0, 7.0, 7.0)]);
        let pts = Areal::interior_points(&mp);
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert_eq!(Areal::locate(&mp, p), Location::Inside);
        }
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = MultiPolygon::new(vec![]);
    }

    #[test]
    fn polygon_implements_areal() {
        let p = sq(0.0, 0.0, 4.0, 4.0);
        let mut edges = Vec::new();
        Areal::collect_edges(&p, &mut edges);
        assert_eq!(edges.len(), 4);
        assert_eq!(Areal::interior_points(&p).len(), 1);
        assert_eq!(Areal::mbr(&p), Rect::from_coords(0.0, 0.0, 4.0, 4.0));
    }
}
