//! Line segments.

use crate::point::Point;
use crate::rect::Rect;

/// A closed line segment between two endpoints.
///
/// Degenerate segments (`a == b`) are representable but polygon rings never
/// produce them (construction collapses repeated vertices).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    /// Creates a segment between `a` and `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The segment's minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::new(self.a, self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Squared length.
    #[inline]
    pub fn len2(&self) -> f64 {
        self.a.dist2(self.b)
    }

    /// Whether the segment is degenerate (both endpoints equal).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// The segment with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        Point::new(
            self.a.x + (self.b.x - self.a.x) * t,
            self.a.y + (self.b.y - self.a.y) * t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_covers_endpoints() {
        let s = Segment::new(Point::new(3.0, -1.0), Point::new(0.0, 4.0));
        let m = s.mbr();
        assert!(m.contains_point(s.a));
        assert!(m.contains_point(s.b));
        assert_eq!(m, Rect::from_coords(0.0, -1.0, 3.0, 4.0));
    }

    #[test]
    fn parametric_evaluation() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 20.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
        assert_eq!(s.at(0.5), Point::new(5.0, 10.0));
        assert_eq!(s.midpoint(), s.at(0.5));
    }

    #[test]
    fn degeneracy_and_reverse() {
        let p = Point::new(1.0, 1.0);
        assert!(Segment::new(p, p).is_degenerate());
        let s = Segment::new(Point::new(0.0, 0.0), p);
        assert!(!s.is_degenerate());
        assert_eq!(s.reversed().a, p);
        assert_eq!(s.len2(), 2.0);
    }
}
