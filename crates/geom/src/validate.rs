//! OGC-style polygon validity checking.
//!
//! The topology algorithms assume valid inputs (simple rings, holes
//! inside the shell, touching allowed but not crossing). This module
//! makes that contract checkable: data generators assert it in tests,
//! and library users can validate untrusted inputs up front instead of
//! getting undefined relations downstream.

use crate::interior_point::interior_point;
use crate::point::Point;
use crate::polygon::{Location, Polygon, Ring};
use crate::seg_intersect::{intersect_segments, SegSegIntersection};
use crate::segment::Segment;
use crate::sweep::boundary_pairs;

/// A specific validity violation.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidityError {
    /// Two non-adjacent edges of one ring intersect (self-intersection),
    /// or adjacent edges overlap collinearly. Payload: the edge indexes
    /// within the flattened ring edge list.
    SelfIntersection(usize, usize),
    /// A ring encloses zero area (all vertices collinear).
    ZeroArea,
    /// A hole (index in payload) is not contained in the shell.
    HoleOutsideShell(usize),
    /// A hole (first index) properly crosses the shell or another hole
    /// (second index; `usize::MAX` denotes the shell).
    RingsCross(usize, usize),
    /// A hole's interior contains another hole's interior point
    /// (nested holes).
    NestedHoles(usize, usize),
}

impl std::fmt::Display for ValidityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityError::SelfIntersection(i, j) => {
                write!(f, "ring self-intersection between edges {i} and {j}")
            }
            ValidityError::ZeroArea => write!(f, "ring has zero area"),
            ValidityError::HoleOutsideShell(h) => write!(f, "hole {h} outside shell"),
            ValidityError::RingsCross(a, b) => write!(f, "rings {a} and {b} cross"),
            ValidityError::NestedHoles(a, b) => write!(f, "hole {a} nests inside hole {b}"),
        }
    }
}

impl std::error::Error for ValidityError {}

/// Checks that a ring is simple (no self-intersections beyond shared
/// endpoints of adjacent edges) and encloses area.
pub fn validate_ring(ring: &Ring) -> Result<(), ValidityError> {
    // Self-intersection is checked before area: a bowtie has zero
    // *signed* area but the actionable defect is the crossing.
    let edges: Vec<Segment> = ring.edges().collect();
    let n = edges.len();
    // O(n^2) with MBR pruning; rings in this workspace are at most a few
    // thousand edges and validation is off the join path.
    for i in 0..n {
        for j in (i + 1)..n {
            let adjacent = j == i + 1 || (i == 0 && j == n - 1);
            match intersect_segments(edges[i], edges[j]) {
                SegSegIntersection::None => {}
                SegSegIntersection::Touch(p) => {
                    if adjacent {
                        // Adjacent edges must touch exactly at the shared
                        // vertex.
                        let shared = if j == i + 1 { edges[i].b } else { edges[i].a };
                        if p != shared {
                            return Err(ValidityError::SelfIntersection(i, j));
                        }
                    } else {
                        return Err(ValidityError::SelfIntersection(i, j));
                    }
                }
                SegSegIntersection::Proper(_) | SegSegIntersection::CollinearOverlap(..) => {
                    return Err(ValidityError::SelfIntersection(i, j));
                }
            }
        }
    }
    if ring.signed_area2() == 0.0 {
        return Err(ValidityError::ZeroArea);
    }
    Ok(())
}

/// Checks full polygon validity: simple rings, holes inside the shell,
/// no ring crossings, no nested holes. Boundary touching at points is
/// allowed (OGC).
pub fn validate_polygon(poly: &Polygon) -> Result<(), ValidityError> {
    validate_ring(poly.outer())?;
    for h in poly.holes() {
        validate_ring(h)?;
    }

    let shell_edges: Vec<Segment> = poly.outer().edges().collect();
    for (hi, hole) in poly.holes().iter().enumerate() {
        let hole_edges: Vec<Segment> = hole.edges().collect();
        // Holes may touch the shell at points but not cross it or share
        // edge portions.
        for hit in boundary_pairs(&hole_edges, &shell_edges, true) {
            match hit.kind {
                SegSegIntersection::Proper(_) | SegSegIntersection::CollinearOverlap(..) => {
                    return Err(ValidityError::RingsCross(hi, usize::MAX));
                }
                _ => {}
            }
        }
        // A representative hole vertex must be inside (or on) the shell.
        let inside_count = hole
            .vertices()
            .iter()
            .filter(|v| poly.outer().locate(**v) != Location::Outside)
            .count();
        if inside_count != hole.len() {
            return Err(ValidityError::HoleOutsideShell(hi));
        }
    }

    // Hole-hole: no crossings, no nesting.
    for i in 0..poly.holes().len() {
        for j in (i + 1)..poly.holes().len() {
            let ei: Vec<Segment> = poly.holes()[i].edges().collect();
            let ej: Vec<Segment> = poly.holes()[j].edges().collect();
            for hit in boundary_pairs(&ei, &ej, true) {
                match hit.kind {
                    SegSegIntersection::Proper(_) | SegSegIntersection::CollinearOverlap(..) => {
                        return Err(ValidityError::RingsCross(i, j));
                    }
                    _ => {}
                }
            }
            let pi = ring_interior_point(&poly.holes()[i]);
            let pj = ring_interior_point(&poly.holes()[j]);
            if poly.holes()[j].locate(pi) == Location::Inside {
                return Err(ValidityError::NestedHoles(i, j));
            }
            if poly.holes()[i].locate(pj) == Location::Inside {
                return Err(ValidityError::NestedHoles(j, i));
            }
        }
    }
    Ok(())
}

/// Interior point of a bare ring (reusing the polygon construction).
fn ring_interior_point(ring: &Ring) -> Point {
    interior_point(&Polygon::new(ring.clone(), Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn ring(pts: &[(f64, f64)]) -> Ring {
        Ring::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn valid_shapes_pass() {
        let square = Polygon::rect(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        assert_eq!(validate_polygon(&square), Ok(()));

        let with_hole = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]],
        )
        .unwrap();
        assert_eq!(validate_polygon(&with_hole), Ok(()));

        // Concave but simple.
        let concave = ring(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (5.0, 3.0),
            (0.0, 10.0),
        ]);
        assert_eq!(validate_ring(&concave), Ok(()));
    }

    #[test]
    fn bowtie_rejected() {
        let bowtie = ring(&[(0.0, 0.0), (10.0, 10.0), (10.0, 0.0), (0.0, 10.0)]);
        assert!(matches!(
            validate_ring(&bowtie),
            Err(ValidityError::SelfIntersection(..))
        ));
    }

    #[test]
    fn collinear_ring_rejected() {
        // A flat ring is reported as a self-overlap (its closing edge
        // runs back over the others) — and would be zero-area besides.
        let flat = ring(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        assert!(matches!(
            validate_ring(&flat),
            Err(ValidityError::SelfIntersection(..) | ValidityError::ZeroArea)
        ));
    }

    #[test]
    fn spike_revisiting_vertex_rejected() {
        // Ring touching itself at a vertex (pinch).
        let pinched = ring(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (5.0, 5.0),
            (10.0, 10.0),
            (0.0, 10.0),
            (5.0, 5.0),
        ]);
        assert!(matches!(
            validate_ring(&pinched),
            Err(ValidityError::SelfIntersection(..))
        ));
    }

    #[test]
    fn hole_outside_shell_rejected() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(20.0, 20.0), (22.0, 20.0), (22.0, 22.0), (20.0, 22.0)]],
        )
        .unwrap();
        assert!(matches!(
            validate_polygon(&p),
            Err(ValidityError::HoleOutsideShell(0))
        ));
    }

    #[test]
    fn hole_crossing_shell_rejected() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(5.0, 5.0), (15.0, 5.0), (15.0, 7.0), (5.0, 7.0)]],
        )
        .unwrap();
        assert!(matches!(
            validate_polygon(&p),
            Err(ValidityError::RingsCross(0, usize::MAX))
        ));
    }

    #[test]
    fn nested_holes_rejected() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (20.0, 0.0), (20.0, 20.0), (0.0, 20.0)],
            vec![
                vec![(2.0, 2.0), (12.0, 2.0), (12.0, 12.0), (2.0, 12.0)],
                vec![(4.0, 4.0), (8.0, 4.0), (8.0, 8.0), (4.0, 8.0)],
            ],
        )
        .unwrap();
        assert!(matches!(
            validate_polygon(&p),
            Err(ValidityError::NestedHoles(..))
        ));
    }

    #[test]
    fn generated_polygons_are_valid() {
        // The datagen star polygons must satisfy the validity contract —
        // checked here structurally via a local reimplementation to
        // avoid a dependency cycle: a star-shaped vertex walk.
        let mut seed = 5u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [5usize, 12, 40] {
            let mut pts = Vec::new();
            for i in 0..n {
                let ang = (i as f64 / n as f64) * std::f64::consts::TAU;
                let r = 5.0 + 10.0 * rnd();
                pts.push((r * ang.cos(), r * ang.sin()));
            }
            let poly = Polygon::from_coords(pts, vec![]).unwrap();
            assert_eq!(validate_polygon(&poly), Ok(()), "n={n}");
        }
    }
}
