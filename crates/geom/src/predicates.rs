//! Robust geometric predicates.
//!
//! The central predicate is [`orient2d`]: the sign of the signed area of
//! the triangle `(a, b, c)`. Everything in the topology pipeline that must
//! be *decided* (rather than estimated) reduces to orientation signs:
//! segment intersection classification, point-on-segment tests, ray
//! crossing parity, and therefore the entire DE-9IM computation.
//!
//! A naive floating-point determinant can report the wrong sign when the
//! true value is near zero, which corrupts topology (e.g. a `meets` pair
//! misclassified as `intersects`). Following Shewchuk's classic approach
//! we first evaluate the determinant with a cheap error-bound filter; only
//! when the filter cannot certify the sign do we fall back to an exact
//! evaluation using floating-point expansion arithmetic (error-free
//! transformations). The exact path is hit rarely in practice, so the
//! common case stays at the cost of four subtractions and two
//! multiplications.

use crate::point::Point;

/// Result of an orientation test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b`
    /// (counter-clockwise turn).
    CounterClockwise,
    /// `c` lies to the right of the directed line `a -> b`
    /// (clockwise turn).
    Clockwise,
    /// `a`, `b`, `c` are exactly collinear.
    Collinear,
}

impl Orientation {
    /// Maps the sign of a determinant to an orientation.
    #[inline]
    pub fn from_sign(s: f64) -> Orientation {
        if s > 0.0 {
            Orientation::CounterClockwise
        } else if s < 0.0 {
            Orientation::Clockwise
        } else {
            Orientation::Collinear
        }
    }

    /// The opposite turn direction (collinear is its own reverse).
    #[inline]
    pub fn reverse(self) -> Orientation {
        match self {
            Orientation::CounterClockwise => Orientation::Clockwise,
            Orientation::Clockwise => Orientation::CounterClockwise,
            Orientation::Collinear => Orientation::Collinear,
        }
    }
}

/// Machine epsilon for `f64` halved, as used by Shewchuk's error bounds.
const EPSILON: f64 = f64::EPSILON / 2.0;
/// Error bound coefficient for the orient2d filter: (3 + 16ε)ε.
const CCWERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;

/// Exact orientation of point `c` relative to the directed line `a -> b`.
///
/// Returns [`Orientation::CounterClockwise`] when the triangle `(a, b, c)`
/// has positive signed area, [`Orientation::Clockwise`] when negative and
/// [`Orientation::Collinear`] when the three points are exactly collinear.
/// The answer is exact for all finite inputs (no epsilon tolerance).
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    Orientation::from_sign(orient2d_sign(a, b, c))
}

/// Sign of the signed area of the triangle `(a, b, c)` as `-1.0`, `0.0`
/// or `+1.0`-scaled value: positive for counter-clockwise, negative for
/// clockwise, zero for collinear. The magnitude is only meaningful in the
/// fast path; callers should use the sign alone.
pub fn orient2d_sign(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    // Fast filter: if |det| is safely above the rounding error accumulated
    // by the four subtractions and two multiplications, its sign is exact.
    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        // detleft == 0: det == -detright, computed exactly.
        return det;
    };

    let errbound = CCWERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }

    orient2d_exact(a, b, c)
}

/// Exact evaluation of the orient2d determinant with expansion arithmetic.
///
/// Expands `ax·by − ax·cy + ay·cx − ay·bx + bx·cy − by·cx` into a sum of
/// non-overlapping doubles and returns its most significant component,
/// whose sign equals the sign of the exact value.
fn orient2d_exact(a: Point, b: Point, c: Point) -> f64 {
    // Each product becomes a two-term expansion via an error-free
    // transformation; the six expansions are summed exactly.
    let (p1h, p1l) = two_product(a.x, b.y);
    let (p2h, p2l) = two_product(a.x, c.y);
    let (p3h, p3l) = two_product(a.y, c.x);
    let (p4h, p4l) = two_product(a.y, b.x);
    let (p5h, p5l) = two_product(b.x, c.y);
    let (p6h, p6l) = two_product(b.y, c.x);

    let mut acc: Vec<f64> = Vec::with_capacity(16);
    let mut tmp: Vec<f64> = Vec::with_capacity(16);
    grow_expansion(&mut acc, &mut tmp, p1l);
    grow_expansion(&mut acc, &mut tmp, p1h);
    grow_expansion(&mut acc, &mut tmp, -p2l);
    grow_expansion(&mut acc, &mut tmp, -p2h);
    grow_expansion(&mut acc, &mut tmp, p3l);
    grow_expansion(&mut acc, &mut tmp, p3h);
    grow_expansion(&mut acc, &mut tmp, -p4l);
    grow_expansion(&mut acc, &mut tmp, -p4h);
    grow_expansion(&mut acc, &mut tmp, p5l);
    grow_expansion(&mut acc, &mut tmp, p5h);
    grow_expansion(&mut acc, &mut tmp, -p6l);
    grow_expansion(&mut acc, &mut tmp, -p6h);

    // The expansion is sorted by increasing magnitude and non-overlapping;
    // the last nonzero component dominates the sum's sign.
    acc.iter().rev().copied().find(|v| *v != 0.0).unwrap_or(0.0)
}

/// Error-free transformation of a sum: returns `(s, e)` with `s = fl(a+b)`
/// and `a + b = s + e` exactly (Knuth's TwoSum).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bv = s - a;
    let av = s - bv;
    let br = b - bv;
    let ar = a - av;
    (s, ar + br)
}

/// Error-free transformation of a product using FMA-free splitting
/// (Dekker/Veltkamp): returns `(p, e)` with `p = fl(a*b)` and
/// `a * b = p + e` exactly.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let err1 = p - ah * bh;
    let err2 = err1 - al * bh;
    let err3 = err2 - ah * bl;
    let e = al * bl - err3;
    (p, e)
}

/// Veltkamp splitting of a double into high/low halves with 26-bit
/// significands, such that `a = hi + lo` exactly.
#[inline]
fn split(a: f64) -> (f64, f64) {
    const SPLITTER: f64 = 134_217_729.0; // 2^27 + 1
    let c = SPLITTER * a;
    let hi = c - (c - a);
    let lo = a - hi;
    (hi, lo)
}

/// Adds scalar `b` into expansion `e` (non-overlapping, increasing
/// magnitude), producing a valid expansion again. `tmp` is scratch space
/// reused between calls to avoid allocation.
fn grow_expansion(e: &mut Vec<f64>, tmp: &mut Vec<f64>, b: f64) {
    tmp.clear();
    let mut q = b;
    for &ei in e.iter() {
        let (s, err) = two_sum(q, ei);
        if err != 0.0 {
            tmp.push(err);
        }
        q = s;
    }
    if q != 0.0 || tmp.is_empty() {
        tmp.push(q);
    }
    std::mem::swap(e, tmp);
}

/// Returns `true` if point `p` lies on the closed segment `a -> b`.
///
/// Exact: `p` must be collinear with `a`, `b` and within the segment's
/// coordinate range.
#[inline]
pub fn point_on_segment(p: Point, a: Point, b: Point) -> bool {
    if orient2d(a, b, p) != Orientation::Collinear {
        return false;
    }
    in_closed_range(p.x, a.x, b.x) && in_closed_range(p.y, a.y, b.y)
}

#[inline]
fn in_closed_range(v: f64, lo: f64, hi: f64) -> bool {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    lo <= v && v <= hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_turns() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orient2d(a, b, Point::new(0.5, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(a, b, Point::new(0.5, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn reverse_orientation() {
        assert_eq!(
            Orientation::CounterClockwise.reverse(),
            Orientation::Clockwise
        );
        assert_eq!(
            Orientation::Clockwise.reverse(),
            Orientation::CounterClockwise
        );
        assert_eq!(Orientation::Collinear.reverse(), Orientation::Collinear);
    }

    /// The classic robustness stress: points nearly collinear where naive
    /// arithmetic flips signs. Walk tiny offsets along a line and demand
    /// consistent answers with the exact predicate's symmetry property
    /// orient(a,b,c) == -orient(b,a,c).
    #[test]
    fn near_degenerate_consistency() {
        let a = Point::new(12.0, 12.0);
        let b = Point::new(24.0, 24.0);
        for i in 0..64 {
            for j in 0..64 {
                let c = Point::new(0.5 + i as f64 * f64::EPSILON, 0.5 + j as f64 * f64::EPSILON);
                let o1 = orient2d(a, b, c);
                let o2 = orient2d(b, a, c);
                assert_eq!(o1, o2.reverse(), "i={i} j={j}");
                // Invariance under cyclic permutation.
                let o3 = orient2d(b, c, a);
                assert_eq!(o1, o3, "cyclic i={i} j={j}");
            }
        }
    }

    #[test]
    fn exact_collinear_detected() {
        // Points on the line y = x with coordinates that stress rounding.
        let a = Point::new(1e-30, 1e-30);
        let b = Point::new(1e30, 1e30);
        let c = Point::new(123.456, 123.456);
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn two_sum_exactness() {
        let (s, e) = two_sum(1e16, 1.0);
        // 1e16 + 1 is not representable; the error term must capture it.
        assert_eq!(s + e, 1e16 + 1.0); // f64 sum rounds, but s==fl(sum)
        assert_eq!(s, 1e16 + 1.0);
        assert_ne!(e, 0.0);
        // The pair must reconstruct exactly in higher precision terms:
        // s = 10000000000000002.0 rounded -> actually fl(1e16+1) == 1e16+2.
        // What matters is a + b == s + e exactly, checked via integers.
        let a = 1e16f64;
        let b = 1.0f64;
        assert_eq!(a as u64 as f64, a);
        // s + e == a + b exactly as rationals: verify with 128-bit ints.
        let total = (a as i128) + (b as i128);
        assert_eq!((s as i128) + (e as i128), total);
    }

    #[test]
    fn two_product_exactness() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 + 2.0 * f64::EPSILON;
        let (p, e) = two_product(a, b);
        // a*b = 1 + 3eps + 2eps^2; p rounds, e holds the rest.
        assert!(e != 0.0);
        assert!((p + e) >= p); // sanity: decomposition ordered
    }

    #[test]
    fn point_on_segment_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 10.0);
        assert!(point_on_segment(Point::new(5.0, 5.0), a, b));
        assert!(point_on_segment(a, a, b));
        assert!(point_on_segment(b, a, b));
        assert!(!point_on_segment(Point::new(5.0, 5.1), a, b));
        assert!(!point_on_segment(Point::new(11.0, 11.0), a, b));
    }

    #[test]
    fn filter_agrees_with_exact_on_random_grid() {
        // All answers on a modest integer grid are exactly representable,
        // so a plain integer determinant is an oracle.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 2001) as i64 - 1000
        };
        for _ in 0..2000 {
            let (ax, ay, bx, by, cx, cy) = (next(), next(), next(), next(), next(), next());
            let det = (ax - cx) * (by - cy) - (ay - cy) * (bx - cx);
            let expect = Orientation::from_sign(det as f64);
            let got = orient2d(
                Point::new(ax as f64, ay as f64),
                Point::new(bx as f64, by as f64),
                Point::new(cx as f64, cy as f64),
            );
            assert_eq!(got, expect);
        }
    }
}
