//! Plane sweep over segment bounding boxes.
//!
//! Finding all intersections between two polygon boundaries is the hot
//! inner loop of DE-9IM refinement. A full Bentley–Ottmann sweep is
//! unnecessary: like the production geometry libraries the paper compares
//! against, we sweep segment *MBRs* along x with a forward scan (the same
//! technique the paper's filter step uses for object MBRs \[39\]) and run
//! the exact segment test only on box-overlapping pairs. For polygon
//! boundaries with `n` total edges and `k` box-overlapping pairs this is
//! `O(n log n + k)` in practice.
//!
//! The sweep needs two sorted event lists plus the output hit list. On
//! the relate hot path these live in a caller-owned [`SweepScratch`] and
//! output vector handed to [`boundary_pairs_into`], so a warmed scratch
//! runs the sweep without allocating; [`boundary_pairs`] remains as the
//! allocating convenience wrapper.

use crate::seg_intersect::{intersect_segments, SegSegIntersection};
use crate::segment::Segment;

/// An intersection found between edge `ia` of boundary A and edge `ib` of
/// boundary B.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgePairHit {
    /// Index into the A edge list handed to [`boundary_pairs`].
    pub ia: usize,
    /// Index into the B edge list handed to [`boundary_pairs`].
    pub ib: usize,
    /// How the two edges intersect.
    pub kind: SegSegIntersection,
}

/// Reusable event lists for [`boundary_pairs_into`]. `clear()`-and-reuse:
/// each sweep empties the lists but keeps their capacity.
#[derive(Debug, Default)]
pub struct SweepScratch {
    a_sorted: Vec<(usize, Segment)>,
    b_sorted: Vec<(usize, Segment)>,
}

/// Reports every intersecting pair of edges between the two edge lists,
/// with its classification.
///
/// Set `stop_on_proper` to return early as soon as a proper crossing is
/// found — callers that only need to know "do the boundaries properly
/// cross?" (which decides the whole DE-9IM matrix) avoid the full scan.
pub fn boundary_pairs(
    a_edges: &[Segment],
    b_edges: &[Segment],
    stop_on_proper: bool,
) -> Vec<EdgePairHit> {
    let mut hits = Vec::new();
    boundary_pairs_into(
        a_edges,
        b_edges,
        stop_on_proper,
        &mut SweepScratch::default(),
        &mut hits,
    );
    hits
}

/// [`boundary_pairs`] into caller-owned buffers: `hits` is cleared and
/// filled, `scratch` holds the sweep's sorted event lists. The hot-path
/// entry used by the relate scratch arena.
pub fn boundary_pairs_into(
    a_edges: &[Segment],
    b_edges: &[Segment],
    stop_on_proper: bool,
    scratch: &mut SweepScratch,
    hits: &mut Vec<EdgePairHit>,
) {
    hits.clear();
    let a_sorted = &mut scratch.a_sorted;
    let b_sorted = &mut scratch.b_sorted;

    // Index + sort both lists by MBR xmin.
    {
        let _site = stj_obs::alloc::enter(stj_obs::AllocSite::SweepEvents);
        a_sorted.clear();
        a_sorted.extend(a_edges.iter().copied().enumerate());
        b_sorted.clear();
        b_sorted.extend(b_edges.iter().copied().enumerate());
    }
    let xmin = |s: &Segment| s.a.x.min(s.b.x);
    // Unstable sort with the original index as tie-break: reproduces the
    // stable order exactly without a stable sort's temp-buffer allocation.
    a_sorted.sort_unstable_by(|l, r| {
        xmin(&l.1)
            .partial_cmp(&xmin(&r.1))
            .expect("finite")
            .then(l.0.cmp(&r.0))
    });
    b_sorted.sort_unstable_by(|l, r| {
        xmin(&l.1)
            .partial_cmp(&xmin(&r.1))
            .expect("finite")
            .then(l.0.cmp(&r.0))
    });

    // Growth of `hits` during the scan is the intersection-list site.
    let _site = stj_obs::alloc::enter(stj_obs::AllocSite::IntersectionList);
    let mut i = 0;
    let mut j = 0;
    while i < a_sorted.len() && j < b_sorted.len() {
        let ax = xmin(&a_sorted[i].1);
        let bx = xmin(&b_sorted[j].1);
        if ax <= bx {
            // Scan forward in B while B's xmin is within A[i]'s x-range.
            let (ia, sa) = a_sorted[i];
            let a_mbr = sa.mbr();
            for &(ib, sb) in b_sorted[j..].iter() {
                if xmin(&sb) > a_mbr.max.x {
                    break;
                }
                if a_mbr.intersects(&sb.mbr()) {
                    let kind = intersect_segments(sa, sb);
                    if kind.is_some() {
                        let proper = matches!(kind, SegSegIntersection::Proper(_));
                        hits.push(EdgePairHit { ia, ib, kind });
                        if proper && stop_on_proper {
                            return;
                        }
                    }
                }
            }
            i += 1;
        } else {
            // Symmetric: scan forward in A for B[j].
            let (ib, sb) = b_sorted[j];
            let b_mbr = sb.mbr();
            for &(ia, sa) in a_sorted[i..].iter() {
                if xmin(&sa) > b_mbr.max.x {
                    break;
                }
                if b_mbr.intersects(&sa.mbr()) {
                    let kind = intersect_segments(sa, sb);
                    if kind.is_some() {
                        let proper = matches!(kind, SegSegIntersection::Proper(_));
                        hits.push(EdgePairHit { ia, ib, kind });
                        if proper && stop_on_proper {
                            return;
                        }
                    }
                }
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// Brute-force oracle.
    fn brute(a: &[Segment], b: &[Segment]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ia, sa) in a.iter().enumerate() {
            for (ib, sb) in b.iter().enumerate() {
                if intersect_segments(*sa, *sb).is_some() {
                    out.push((ia, ib));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sweep_pairs(a: &[Segment], b: &[Segment]) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = boundary_pairs(a, b, false)
            .into_iter()
            .map(|h| (h.ia, h.ib))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn simple_crossing_grid() {
        // Horizontal lines vs vertical lines: every pair crosses.
        let a: Vec<_> = (0..4).map(|i| seg(0.0, i as f64, 10.0, i as f64)).collect();
        let b: Vec<_> = (0..4)
            .map(|i| seg(i as f64 + 0.5, -1.0, i as f64 + 0.5, 11.0))
            .collect();
        let hits = sweep_pairs(&a, &b);
        assert_eq!(hits.len(), 16);
        assert_eq!(hits, brute(&a, &b));
    }

    #[test]
    fn no_intersections() {
        let a = vec![seg(0.0, 0.0, 1.0, 1.0), seg(2.0, 2.0, 3.0, 3.0)];
        let b = vec![seg(0.0, 5.0, 3.0, 5.0)];
        assert!(sweep_pairs(&a, &b).is_empty());
    }

    #[test]
    fn matches_bruteforce_on_random_segments() {
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let mk = |rnd: &mut dyn FnMut() -> f64, n: usize| -> Vec<Segment> {
                (0..n)
                    .map(|_| {
                        let x = rnd() * 100.0;
                        let y = rnd() * 100.0;
                        seg(x, y, x + rnd() * 20.0 - 10.0, y + rnd() * 20.0 - 10.0)
                    })
                    .collect()
            };
            let a = mk(&mut rnd, 30);
            let b = mk(&mut rnd, 30);
            assert_eq!(sweep_pairs(&a, &b), brute(&a, &b), "trial {trial}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        // The same scratch driven over different-size inputs (grid, tiny,
        // empty) must reproduce the one-shot wrapper's hits exactly,
        // including order.
        let a: Vec<_> = (0..4).map(|i| seg(0.0, i as f64, 10.0, i as f64)).collect();
        let b: Vec<_> = (0..4)
            .map(|i| seg(i as f64 + 0.5, -1.0, i as f64 + 0.5, 11.0))
            .collect();
        let tiny = vec![seg(0.0, 0.0, 10.0, 0.0)];
        let none: Vec<Segment> = Vec::new();
        let mut scratch = SweepScratch::default();
        let mut hits = Vec::new();
        for (l, r) in [(&a, &b), (&tiny, &b), (&a, &none), (&a, &b)] {
            for stop in [false, true] {
                boundary_pairs_into(l, r, stop, &mut scratch, &mut hits);
                assert_eq!(hits, boundary_pairs(l, r, stop));
            }
        }
    }

    #[test]
    fn stop_on_proper_short_circuits() {
        let a: Vec<_> = (0..100)
            .map(|i| seg(0.0, i as f64, 10.0, i as f64))
            .collect();
        let b: Vec<_> = (0..100)
            .map(|i| seg(i as f64 * 0.1, -1.0, i as f64 * 0.1, 101.0))
            .collect();
        let hits = boundary_pairs(&a, &b, true);
        assert!(matches!(
            hits.last().unwrap().kind,
            SegSegIntersection::Proper(_)
        ));
        // Far fewer than the full 10k pairs.
        assert!(hits.len() < 10_000);
    }

    #[test]
    fn touch_classification_propagates() {
        let a = vec![seg(0.0, 0.0, 10.0, 0.0)];
        let b = vec![seg(5.0, 0.0, 5.0, 5.0)];
        let hits = boundary_pairs(&a, &b, false);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].kind,
            SegSegIntersection::Touch(Point::new(5.0, 0.0))
        );
    }
}
