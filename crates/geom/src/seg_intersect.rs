//! Exact segment–segment intersection classification.
//!
//! The DE-9IM engine does not merely need to know *whether* two boundary
//! segments intersect — it needs to know *how*:
//!
//! - a **proper crossing** (interiors cross transversally) immediately
//!   decides the whole DE-9IM matrix (see `stj-de9im`);
//! - a **touch** (a single shared point involving an endpoint) becomes a
//!   noding point where boundaries are split;
//! - a **collinear overlap** contributes sub-edges lying *on* the other
//!   boundary.
//!
//! Classification is exact because it is driven entirely by
//! [`orient2d`]; only the *coordinates* of a
//! proper crossing point are computed in floating point (their topology —
//! strictly inside both segments — is already certified).

use crate::point::Point;
use crate::predicates::{orient2d, point_on_segment, Orientation};
use crate::segment::Segment;

/// How two segments intersect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegSegIntersection {
    /// The segments share no point.
    None,
    /// The segment interiors cross transversally at a single point that is
    /// strictly inside both segments.
    Proper(Point),
    /// The segments share exactly one point and at least one endpoint is
    /// involved (endpoint-endpoint or endpoint-on-interior).
    Touch(Point),
    /// The segments are collinear and share a non-degenerate sub-segment;
    /// the payload is that sub-segment's endpoints (in lexicographic
    /// order).
    CollinearOverlap(Point, Point),
}

impl SegSegIntersection {
    /// `true` unless the segments are disjoint.
    #[inline]
    pub fn is_some(&self) -> bool {
        !matches!(self, SegSegIntersection::None)
    }
}

/// Classifies the intersection of two closed segments.
pub fn intersect_segments(s1: Segment, s2: Segment) -> SegSegIntersection {
    // Degenerate segments reduce to point-on-segment tests.
    match (s1.is_degenerate(), s2.is_degenerate()) {
        (true, true) => {
            return if s1.a == s2.a {
                SegSegIntersection::Touch(s1.a)
            } else {
                SegSegIntersection::None
            };
        }
        (true, false) => {
            return if point_on_segment(s1.a, s2.a, s2.b) {
                SegSegIntersection::Touch(s1.a)
            } else {
                SegSegIntersection::None
            };
        }
        (false, true) => {
            return if point_on_segment(s2.a, s1.a, s1.b) {
                SegSegIntersection::Touch(s2.a)
            } else {
                SegSegIntersection::None
            };
        }
        (false, false) => {}
    }

    if !s1.mbr().intersects(&s2.mbr()) {
        return SegSegIntersection::None;
    }

    let o1 = orient2d(s1.a, s1.b, s2.a);
    let o2 = orient2d(s1.a, s1.b, s2.b);
    let o3 = orient2d(s2.a, s2.b, s1.a);
    let o4 = orient2d(s2.a, s2.b, s1.b);

    use Orientation::Collinear as C;

    // All collinear: overlap along the common supporting line.
    if o1 == C && o2 == C && o3 == C && o4 == C {
        return collinear_overlap(s1, s2);
    }

    // Proper crossing: strict side changes on both segments.
    if o1 != C && o2 != C && o3 != C && o4 != C && o1 != o2 && o3 != o4 {
        return SegSegIntersection::Proper(crossing_point(s1, s2));
    }

    // Remaining possibility: a touch at an endpoint, if any.
    // (An endpoint of one segment lies on the other.)
    for p in [s2.a, s2.b] {
        if point_on_segment(p, s1.a, s1.b) {
            return SegSegIntersection::Touch(p);
        }
    }
    for p in [s1.a, s1.b] {
        if point_on_segment(p, s2.a, s2.b) {
            return SegSegIntersection::Touch(p);
        }
    }
    SegSegIntersection::None
}

/// Overlap of two collinear segments: none, a single shared point, or a
/// shared sub-segment.
fn collinear_overlap(s1: Segment, s2: Segment) -> SegSegIntersection {
    // Order each segment's endpoints lexicographically and intersect the
    // 1-D ranges along the dominant axis (lexicographic order is a valid
    // linear order along any fixed line).
    let (a1, b1) = lex_sorted(s1);
    let (a2, b2) = lex_sorted(s2);
    let lo = if a1.lex_cmp(&a2).is_lt() { a2 } else { a1 };
    let hi = if b1.lex_cmp(&b2).is_lt() { b1 } else { b2 };
    match lo.lex_cmp(&hi) {
        std::cmp::Ordering::Greater => SegSegIntersection::None,
        std::cmp::Ordering::Equal => SegSegIntersection::Touch(lo),
        std::cmp::Ordering::Less => SegSegIntersection::CollinearOverlap(lo, hi),
    }
}

#[inline]
fn lex_sorted(s: Segment) -> (Point, Point) {
    if s.a.lex_cmp(&s.b).is_le() {
        (s.a, s.b)
    } else {
        (s.b, s.a)
    }
}

/// Coordinates of the proper crossing point of two segments already known
/// to cross transversally. Computed with the standard parametric formula;
/// the result is clamped into both segments' MBR intersection so that
/// rounding cannot move it outside either bounding box.
fn crossing_point(s1: Segment, s2: Segment) -> Point {
    let d1 = s1.b - s1.a;
    let d2 = s2.b - s2.a;
    let denom = d1.x * d2.y - d1.y * d2.x;
    debug_assert!(denom != 0.0, "proper crossing implies non-parallel");
    let t = ((s2.a.x - s1.a.x) * d2.y - (s2.a.y - s1.a.y) * d2.x) / denom;
    let p = s1.at(t.clamp(0.0, 1.0));
    // Clamp into the overlap box for numerical hygiene.
    if let Some(ib) = s1.mbr().intersection(&s2.mbr()) {
        Point::new(p.x.clamp(ib.min.x, ib.max.x), p.y.clamp(ib.min.y, ib.max.y))
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let r = intersect_segments(seg(0.0, 0.0, 10.0, 10.0), seg(0.0, 10.0, 10.0, 0.0));
        assert_eq!(r, SegSegIntersection::Proper(Point::new(5.0, 5.0)));
    }

    #[test]
    fn disjoint() {
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 1.0, 0.0), seg(0.0, 1.0, 1.0, 1.0)),
            SegSegIntersection::None
        );
        // MBRs overlap but segments don't touch.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 4.0, 4.0), seg(3.0, 0.0, 4.0, 0.5)),
            SegSegIntersection::None
        );
    }

    #[test]
    fn endpoint_touches() {
        // Shared endpoint.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 1.0, 1.0), seg(1.0, 1.0, 2.0, 0.0)),
            SegSegIntersection::Touch(Point::new(1.0, 1.0))
        );
        // Endpoint on interior (T junction).
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 10.0, 0.0), seg(5.0, 0.0, 5.0, 5.0)),
            SegSegIntersection::Touch(Point::new(5.0, 0.0))
        );
        // Symmetric T junction.
        assert_eq!(
            intersect_segments(seg(5.0, 0.0, 5.0, 5.0), seg(0.0, 0.0, 10.0, 0.0)),
            SegSegIntersection::Touch(Point::new(5.0, 0.0))
        );
    }

    #[test]
    fn collinear_cases() {
        // Overlapping sub-segment.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 10.0, 0.0), seg(5.0, 0.0, 15.0, 0.0)),
            SegSegIntersection::CollinearOverlap(Point::new(5.0, 0.0), Point::new(10.0, 0.0))
        );
        // Containment.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 10.0, 0.0), seg(2.0, 0.0, 4.0, 0.0)),
            SegSegIntersection::CollinearOverlap(Point::new(2.0, 0.0), Point::new(4.0, 0.0))
        );
        // Collinear, touching end-to-end: single point.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 5.0, 0.0), seg(5.0, 0.0, 9.0, 0.0)),
            SegSegIntersection::Touch(Point::new(5.0, 0.0))
        );
        // Collinear but disjoint.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 5.0, 0.0), seg(6.0, 0.0, 9.0, 0.0)),
            SegSegIntersection::None
        );
        // Identical segments.
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 5.0, 5.0), seg(0.0, 0.0, 5.0, 5.0)),
            SegSegIntersection::CollinearOverlap(Point::new(0.0, 0.0), Point::new(5.0, 5.0))
        );
        // Vertical collinear overlap (exercises lexicographic ordering on y).
        assert_eq!(
            intersect_segments(seg(1.0, 0.0, 1.0, 10.0), seg(1.0, 8.0, 1.0, 20.0)),
            SegSegIntersection::CollinearOverlap(Point::new(1.0, 8.0), Point::new(1.0, 10.0))
        );
    }

    #[test]
    fn degenerate_segments() {
        let p = seg(3.0, 3.0, 3.0, 3.0);
        assert_eq!(
            intersect_segments(p, seg(0.0, 0.0, 6.0, 6.0)),
            SegSegIntersection::Touch(Point::new(3.0, 3.0))
        );
        assert_eq!(
            intersect_segments(seg(0.0, 0.0, 6.0, 6.0), p),
            SegSegIntersection::Touch(Point::new(3.0, 3.0))
        );
        assert_eq!(
            intersect_segments(p, p),
            SegSegIntersection::Touch(Point::new(3.0, 3.0))
        );
        assert_eq!(
            intersect_segments(p, seg(4.0, 4.0, 4.0, 4.0)),
            SegSegIntersection::None
        );
        assert_eq!(
            intersect_segments(p, seg(0.0, 1.0, 6.0, 7.0)),
            SegSegIntersection::None
        );
    }

    #[test]
    fn proper_crossing_point_stays_in_boxes() {
        let s1 = seg(0.1, 0.1, 9.7, 3.3);
        let s2 = seg(2.0, 5.0, 4.0, -5.0);
        match intersect_segments(s1, s2) {
            SegSegIntersection::Proper(p) => {
                assert!(s1.mbr().contains_point(p));
                assert!(s2.mbr().contains_point(p));
            }
            other => panic!("expected proper crossing, got {other:?}"),
        }
    }

    #[test]
    fn symmetry() {
        // Classification must not depend on argument order (payloads may
        // differ only in representation, which these cases avoid).
        let cases = [
            (seg(0.0, 0.0, 10.0, 10.0), seg(0.0, 10.0, 10.0, 0.0)),
            (seg(0.0, 0.0, 10.0, 0.0), seg(5.0, 0.0, 5.0, 5.0)),
            (seg(0.0, 0.0, 10.0, 0.0), seg(5.0, 0.0, 15.0, 0.0)),
            (seg(0.0, 0.0, 1.0, 0.0), seg(0.0, 1.0, 1.0, 1.0)),
        ];
        for (a, b) in cases {
            assert_eq!(intersect_segments(a, b), intersect_segments(b, a));
        }
    }
}
