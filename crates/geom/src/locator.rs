//! Accelerated point location over a boundary edge set.
//!
//! DE-9IM refinement classifies O(n) sub-edge midpoints against each
//! polygon; a naive O(n) point-in-polygon per query makes refinement
//! O(n²). [`EdgeSetLocator`] buckets edges into horizontal strips so each
//! even–odd parity query only visits edges whose y-span overlaps the query
//! strip — expected O(1)–O(√n) edges per query for real-world boundaries.
//!
//! The even–odd rule over the *complete* boundary edge set gives correct
//! interior/exterior classification for valid polygons with holes and
//! multi-polygons alike, because every ring contributes its crossings.

use crate::point::Point;
use crate::polygon::Location;
use crate::predicates::{orient2d, point_on_segment, Orientation};
use crate::rect::Rect;
use crate::segment::Segment;

/// Strip-indexed even–odd point locator over a set of boundary edges.
pub struct EdgeSetLocator {
    edges: Vec<Segment>,
    /// Edge indices per horizontal strip.
    strips: Vec<Vec<u32>>,
    y0: f64,
    inv_dy: f64,
    mbr: Rect,
}

impl EdgeSetLocator {
    /// Builds a locator over `edges` (the complete boundary of one areal
    /// geometry). The strip count scales with the edge count.
    pub fn new(edges: Vec<Segment>) -> Self {
        assert!(!edges.is_empty(), "locator requires at least one edge");
        let mut mbr = Rect::empty();
        for e in &edges {
            mbr.grow_rect(&e.mbr());
        }
        let n_strips = (edges.len() / 4).clamp(1, 4096);
        let height = (mbr.max.y - mbr.min.y).max(f64::MIN_POSITIVE);
        let dy = height / n_strips as f64;
        let inv_dy = 1.0 / dy;
        let y0 = mbr.min.y;
        let strip_of = |y: f64| -> usize {
            (((y - y0) * inv_dy) as isize).clamp(0, n_strips as isize - 1) as usize
        };
        let mut strips = vec![Vec::new(); n_strips];
        for (i, e) in edges.iter().enumerate() {
            let lo = strip_of(e.a.y.min(e.b.y));
            let hi = strip_of(e.a.y.max(e.b.y));
            for s in &mut strips[lo..=hi] {
                s.push(i as u32);
            }
        }
        EdgeSetLocator {
            edges,
            strips,
            y0,
            inv_dy,
            mbr,
        }
    }

    /// The edge set's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// The underlying edges, in construction order.
    #[inline]
    pub fn edges(&self) -> &[Segment] {
        &self.edges
    }

    /// Exact even–odd location of `p` relative to the region bounded by
    /// the edge set.
    pub fn locate(&self, p: Point) -> Location {
        if !self.mbr.contains_point(p) {
            return Location::Outside;
        }
        let si = (((p.y - self.y0) * self.inv_dy) as isize).clamp(0, self.strips.len() as isize - 1)
            as usize;
        let mut inside = false;
        for &ei in &self.strips[si] {
            let e = self.edges[ei as usize];
            if point_on_segment(p, e.a, e.b) {
                return Location::Boundary;
            }
            if (e.a.y > p.y) != (e.b.y > p.y) {
                let (lo, hi) = if e.a.y < e.b.y {
                    (e.a, e.b)
                } else {
                    (e.b, e.a)
                };
                if orient2d(lo, hi, p) == Orientation::CounterClockwise {
                    inside = !inside;
                }
            }
        }
        if inside {
            Location::Inside
        } else {
            Location::Outside
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn locator_of(p: &Polygon) -> EdgeSetLocator {
        EdgeSetLocator::new(p.edges().collect())
    }

    #[test]
    fn agrees_with_polygon_locate_on_grid() {
        let poly = Polygon::from_coords(
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.0, 3.0),
                (3.0, 3.0),
                (3.0, 7.0),
                (10.0, 7.0),
                (10.0, 10.0),
                (0.0, 10.0),
            ],
            vec![vec![(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]],
        )
        .unwrap();
        let loc = locator_of(&poly);
        for i in -2..=22 {
            for j in -2..=22 {
                let p = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                assert_eq!(loc.locate(p), poly.locate(p), "at {p:?}");
            }
        }
    }

    #[test]
    fn boundary_detection() {
        let poly =
            Polygon::from_coords(vec![(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)], vec![])
                .unwrap();
        let loc = locator_of(&poly);
        assert_eq!(loc.locate(Point::new(2.0, 0.0)), Location::Boundary);
        assert_eq!(loc.locate(Point::new(4.0, 4.0)), Location::Boundary);
        assert_eq!(loc.locate(Point::new(2.0, 2.0)), Location::Inside);
        assert_eq!(loc.locate(Point::new(5.0, 2.0)), Location::Outside);
    }

    #[test]
    fn agrees_on_random_star_polygon() {
        let mut seed = 7u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 200;
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let ang = (i as f64 / n as f64) * std::f64::consts::TAU;
            let r = 5.0 + 10.0 * rnd();
            pts.push((r * ang.cos(), r * ang.sin()));
        }
        let poly = Polygon::from_coords(pts, vec![]).unwrap();
        let loc = locator_of(&poly);
        for _ in 0..2000 {
            let p = Point::new(rnd() * 40.0 - 20.0, rnd() * 40.0 - 20.0);
            assert_eq!(loc.locate(p), poly.locate(p), "at {p:?}");
        }
    }
}
