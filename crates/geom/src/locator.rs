//! Accelerated point location over a boundary edge set.
//!
//! DE-9IM refinement classifies O(n) sub-edge midpoints against each
//! polygon; a naive O(n) point-in-polygon per query makes refinement
//! O(n²). [`EdgeSetLocator`] buckets edges into horizontal strips so each
//! even–odd parity query only visits edges whose y-span overlaps the query
//! strip — expected O(1)–O(√n) edges per query for real-world boundaries.
//!
//! The even–odd rule over the *complete* boundary edge set gives correct
//! interior/exterior classification for valid polygons with holes and
//! multi-polygons alike, because every ring contributes its crossings.
//!
//! The strip index is stored CSR-style (one offsets array plus one flat
//! edge-index array) rather than as a `Vec<Vec<u32>>`: two allocations
//! instead of `n_strips + 1`, and a [`EdgeSetLocator::rebuild`] that
//! re-indexes a new edge set entirely inside the retained buffers, which
//! is what lets a relate scratch arena reuse one locator across calls.

use crate::point::Point;
use crate::polygon::Location;
use crate::predicates::{orient2d, point_on_segment, Orientation};
use crate::rect::Rect;
use crate::segment::Segment;

/// Strip-indexed even–odd point locator over a set of boundary edges.
pub struct EdgeSetLocator {
    edges: Vec<Segment>,
    /// CSR offsets: strip `s` owns `strip_edges[strip_offs[s]..strip_offs[s + 1]]`.
    strip_offs: Vec<u32>,
    /// Edge indices, grouped by strip, in edge order within each strip.
    strip_edges: Vec<u32>,
    y0: f64,
    inv_dy: f64,
    mbr: Rect,
}

impl EdgeSetLocator {
    /// Builds a locator over `edges` (the complete boundary of one areal
    /// geometry). The strip count scales with the edge count. An empty
    /// edge set yields a locator that answers `Outside` everywhere.
    pub fn new(edges: Vec<Segment>) -> Self {
        let mut loc = EdgeSetLocator::empty();
        loc.edges = edges;
        loc.reindex();
        loc
    }

    /// An indexless locator over no edges; answers `Outside` everywhere.
    /// Pair with [`rebuild`](Self::rebuild) to populate it in place.
    pub fn empty() -> Self {
        EdgeSetLocator {
            edges: Vec::new(),
            strip_offs: Vec::new(),
            strip_edges: Vec::new(),
            y0: 0.0,
            inv_dy: 0.0,
            mbr: Rect::empty(),
        }
    }

    /// Replaces the edge set in place: clears the edge buffer, lets
    /// `fill` repopulate it, then re-indexes — all inside the retained
    /// allocations, so a warmed locator rebuilds without allocating.
    pub fn rebuild(&mut self, fill: impl FnOnce(&mut Vec<Segment>)) {
        self.edges.clear();
        fill(&mut self.edges);
        self.reindex();
    }

    /// Recomputes MBR, strip geometry, and the CSR strip index from
    /// `self.edges`, reusing the offset and index buffers.
    fn reindex(&mut self) {
        self.mbr = Rect::empty();
        for e in &self.edges {
            self.mbr.grow_rect(&e.mbr());
        }
        let n_strips = (self.edges.len() / 4).clamp(1, 4096);
        let height = (self.mbr.max.y - self.mbr.min.y).max(f64::MIN_POSITIVE);
        let dy = height / n_strips as f64;
        self.inv_dy = 1.0 / dy;
        self.y0 = self.mbr.min.y;
        let (y0, inv_dy) = (self.y0, self.inv_dy);
        let strip_of = |y: f64| -> usize {
            (((y - y0) * inv_dy) as isize).clamp(0, n_strips as isize - 1) as usize
        };

        if self.edges.is_empty() {
            self.strip_offs.clear();
            self.strip_offs.resize(n_strips + 1, 0);
            self.strip_edges.clear();
            return;
        }

        // CSR build in three passes over the retained buffers: count
        // entries per strip, prefix-sum into start offsets, scatter with
        // the offsets as write cursors, then shift the cursors (now ends)
        // back into start offsets.
        let offs = &mut self.strip_offs;
        offs.clear();
        offs.resize(n_strips + 1, 0);
        for e in &self.edges {
            let lo = strip_of(e.a.y.min(e.b.y));
            let hi = strip_of(e.a.y.max(e.b.y));
            for s in lo..=hi {
                offs[s + 1] += 1;
            }
        }
        for s in 0..n_strips {
            offs[s + 1] += offs[s];
        }
        let total = offs[n_strips] as usize;
        self.strip_edges.clear();
        self.strip_edges.resize(total, 0);
        // Scattering in ascending edge order keeps each strip's indices
        // in edge order, matching the old per-strip push construction.
        for (i, e) in self.edges.iter().enumerate() {
            let lo = strip_of(e.a.y.min(e.b.y));
            let hi = strip_of(e.a.y.max(e.b.y));
            for cursor in &mut offs[lo..=hi] {
                self.strip_edges[*cursor as usize] = i as u32;
                *cursor += 1;
            }
        }
        for s in (1..=n_strips).rev() {
            offs[s] = offs[s - 1];
        }
        offs[0] = 0;
    }

    /// The edge set's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// The underlying edges, in construction order.
    #[inline]
    pub fn edges(&self) -> &[Segment] {
        &self.edges
    }

    /// Exact even–odd location of `p` relative to the region bounded by
    /// the edge set.
    pub fn locate(&self, p: Point) -> Location {
        if !self.mbr.contains_point(p) {
            return Location::Outside;
        }
        let n_strips = self.strip_offs.len() - 1;
        let si =
            (((p.y - self.y0) * self.inv_dy) as isize).clamp(0, n_strips as isize - 1) as usize;
        let mut inside = false;
        let (lo, hi) = (
            self.strip_offs[si] as usize,
            self.strip_offs[si + 1] as usize,
        );
        for &ei in &self.strip_edges[lo..hi] {
            let e = self.edges[ei as usize];
            if point_on_segment(p, e.a, e.b) {
                return Location::Boundary;
            }
            if (e.a.y > p.y) != (e.b.y > p.y) {
                let (lo, hi) = if e.a.y < e.b.y {
                    (e.a, e.b)
                } else {
                    (e.b, e.a)
                };
                if orient2d(lo, hi, p) == Orientation::CounterClockwise {
                    inside = !inside;
                }
            }
        }
        if inside {
            Location::Inside
        } else {
            Location::Outside
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn locator_of(p: &Polygon) -> EdgeSetLocator {
        EdgeSetLocator::new(p.edges().collect())
    }

    #[test]
    fn agrees_with_polygon_locate_on_grid() {
        let poly = Polygon::from_coords(
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.0, 3.0),
                (3.0, 3.0),
                (3.0, 7.0),
                (10.0, 7.0),
                (10.0, 10.0),
                (0.0, 10.0),
            ],
            vec![vec![(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]],
        )
        .unwrap();
        let loc = locator_of(&poly);
        for i in -2..=22 {
            for j in -2..=22 {
                let p = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                assert_eq!(loc.locate(p), poly.locate(p), "at {p:?}");
            }
        }
    }

    #[test]
    fn boundary_detection() {
        let poly =
            Polygon::from_coords(vec![(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)], vec![])
                .unwrap();
        let loc = locator_of(&poly);
        assert_eq!(loc.locate(Point::new(2.0, 0.0)), Location::Boundary);
        assert_eq!(loc.locate(Point::new(4.0, 4.0)), Location::Boundary);
        assert_eq!(loc.locate(Point::new(2.0, 2.0)), Location::Inside);
        assert_eq!(loc.locate(Point::new(5.0, 2.0)), Location::Outside);
    }

    #[test]
    fn empty_locator_is_all_outside() {
        let loc = EdgeSetLocator::empty();
        assert_eq!(loc.locate(Point::new(0.0, 0.0)), Location::Outside);
        let loc = EdgeSetLocator::new(Vec::new());
        assert_eq!(loc.locate(Point::new(1.0, -2.0)), Location::Outside);
    }

    #[test]
    fn rebuild_matches_fresh_construction() {
        let small =
            Polygon::from_coords(vec![(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)], vec![])
                .unwrap();
        let big = Polygon::from_coords(
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.0, 3.0),
                (3.0, 3.0),
                (3.0, 7.0),
                (10.0, 7.0),
                (10.0, 10.0),
                (0.0, 10.0),
            ],
            vec![vec![(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]],
        )
        .unwrap();
        // Cycle one locator big → small → big; answers must match a fresh
        // build at every step (shrinking must not leave stale index).
        let mut loc = EdgeSetLocator::empty();
        for poly in [&big, &small, &big] {
            loc.rebuild(|out| out.extend(poly.edges()));
            let fresh = locator_of(poly);
            for i in -2..=22 {
                for j in -2..=22 {
                    let p = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                    assert_eq!(loc.locate(p), fresh.locate(p), "at {p:?}");
                }
            }
        }
    }

    #[test]
    fn agrees_on_random_star_polygon() {
        let mut seed = 7u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 200;
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let ang = (i as f64 / n as f64) * std::f64::consts::TAU;
            let r = 5.0 + 10.0 * rnd();
            pts.push((r * ang.cos(), r * ang.sin()));
        }
        let poly = Polygon::from_coords(pts, vec![]).unwrap();
        let loc = locator_of(&poly);
        for _ in 0..2000 {
            let p = Point::new(rnd() * 40.0 - 20.0, rnd() * 40.0 - 20.0);
            assert_eq!(loc.locate(p), poly.locate(p), "at {p:?}");
        }
    }
}
