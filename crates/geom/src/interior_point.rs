//! Representative interior point of a polygon.
//!
//! The DE-9IM engine needs, for each polygon, one point guaranteed to lie
//! strictly in its interior (see `stj-de9im`'s completeness argument: for
//! a valid polygon-with-holes the interior is connected, so a single
//! representative point closes the shared-boundary cases). The classic
//! construction: pick a horizontal scanline that passes through no vertex,
//! intersect it with all boundary edges, and take the midpoint of the
//! widest interior interval.

use crate::point::Point;
use crate::polygon::{Location, Polygon};

/// Computes a point strictly inside `poly`.
///
/// Chooses a scanline `y` strictly between two consecutive distinct vertex
/// ordinates (so no vertex lies on it), collects the exact crossing
/// abscissae of all edges with the line, and returns the midpoint of the
/// widest inside interval between consecutive crossings.
///
/// # Panics
/// Panics if no interior point can be found, which cannot happen for a
/// valid polygon with non-empty interior. Use [`try_interior_point`] when
/// the input is not trusted to be valid.
pub fn interior_point(poly: &Polygon) -> Point {
    try_interior_point(poly).expect("interior_point: polygon has no detectable interior")
}

/// Computes a point strictly inside `poly`, or `None` when no interior
/// interval is detectable (degenerate sliver polygons with empty
/// interior). Non-panicking variant of [`interior_point`].
pub fn try_interior_point(poly: &Polygon) -> Option<Point> {
    // Candidate scanlines: midpoints of gaps between consecutive distinct
    // vertex ordinates, tried from the largest gap down. A valid polygon
    // has interior at some gap; trying several guards against degenerate
    // slivers where one gap's interior intervals are empty.
    let mut ys: Vec<f64> = poly
        .outer()
        .vertices()
        .iter()
        .chain(poly.holes().iter().flat_map(|h| h.vertices().iter()))
        .map(|p| p.y)
        .collect();
    ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ys.dedup();

    let mut gaps: Vec<(f64, f64)> = ys
        .windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| (w[1] - w[0], (w[0] + w[1]) * 0.5))
        .collect();
    // Widest gaps first: most likely to contain fat interior intervals.
    gaps.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));

    for &(_, y) in &gaps {
        if let Some(p) = interior_point_on_scanline(poly, y) {
            return Some(p);
        }
    }
    // Every gap midpoint failed — unreachable for valid polygons.
    None
}

/// Finds the widest interior interval of `poly` on the horizontal line at
/// `y` (assumed to avoid all vertices) and returns its midpoint.
fn interior_point_on_scanline(poly: &Polygon, y: f64) -> Option<Point> {
    let mut xs: Vec<f64> = Vec::new();
    for e in poly.edges() {
        let (a, b) = (e.a, e.b);
        // The scanline avoids vertices, so spanning is strict.
        if (a.y < y && b.y > y) || (b.y < y && a.y > y) {
            let t = (y - a.y) / (b.y - a.y);
            xs.push(a.x + t * (b.x - a.x));
        }
    }
    if xs.len() < 2 {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // Crossing parity: interval (xs[0], xs[1]) is inside, (xs[1], xs[2])
    // outside, and so on. Pick the widest inside interval whose midpoint
    // verifies as interior (verification guards against rounding in the
    // crossing abscissae).
    let mut best: Option<(f64, Point)> = None;
    for k in (0..xs.len().saturating_sub(1)).step_by(2) {
        let w = xs[k + 1] - xs[k];
        if w <= 0.0 {
            continue;
        }
        let cand = Point::new((xs[k] + xs[k + 1]) * 0.5, y);
        if poly.locate(cand) == Location::Inside && best.as_ref().is_none_or(|(bw, _)| w > *bw) {
            best = Some((w, cand));
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn assert_interior(poly: &Polygon) {
        let p = interior_point(poly);
        assert_eq!(poly.locate(p), Location::Inside, "point {p:?} not inside");
    }

    #[test]
    fn convex() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![],
        )
        .unwrap();
        assert_interior(&p);
    }

    #[test]
    fn with_hole() {
        // Hole occupies the center; interior point must land in the ring
        // of material around it.
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(1.0, 1.0), (9.0, 1.0), (9.0, 9.0), (1.0, 9.0)]],
        )
        .unwrap();
        assert_interior(&p);
    }

    #[test]
    fn concave_c_shape() {
        let p = Polygon::from_coords(
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.0, 3.0),
                (3.0, 3.0),
                (3.0, 7.0),
                (10.0, 7.0),
                (10.0, 10.0),
                (0.0, 10.0),
            ],
            vec![],
        )
        .unwrap();
        assert_interior(&p);
    }

    #[test]
    fn thin_triangle() {
        let p =
            Polygon::from_coords(vec![(0.0, 0.0), (100.0, 0.001), (100.0, 0.002)], vec![]).unwrap();
        assert_interior(&p);
    }

    #[test]
    fn many_random_star_polygons() {
        // Deterministic pseudo-random star polygons of varying complexity.
        let mut seed = 42u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [3usize, 5, 8, 17, 64, 257] {
            let mut pts = Vec::with_capacity(n);
            for i in 0..n {
                let ang = (i as f64 / n as f64) * std::f64::consts::TAU;
                let r = 1.0 + 4.0 * rnd();
                pts.push((100.0 + r * ang.cos(), 200.0 + r * ang.sin()));
            }
            let p = Polygon::from_coords(pts, vec![]).unwrap();
            assert_interior(&p);
        }
    }
}
