//! Borrowed polygon views over columnar vertex/ring pools.
//!
//! A [`PolyView`] is the zero-copy counterpart of [`Polygon`]: instead of
//! owning its rings it borrows slices of a dataset-wide vertex pool plus a
//! ring-offset table, so an arena can hand out `Copy`-able geometry
//! handles without allocating. [`GeomRef`] unifies both representations
//! behind one `Copy` type implementing [`Areal`], letting the DE-9IM
//! refinement run unchanged on owned and pooled geometry.

use crate::interior_point::InteriorScratch;
use crate::multipolygon::Areal;
use crate::point::Point;
use crate::polygon::{locate_in_ring, Location, Polygon};
use crate::rect::Rect;
use crate::segment::Segment;

/// A borrowed polygon: ring vertex slices carved out of a shared vertex
/// pool by a ring-offset table.
///
/// Ring `i` occupies `verts[ring_offs[i] as usize..ring_offs[i+1] as
/// usize]` (vertices stored unclosed, like [`crate::Ring`]). Ring 0 is the
/// outer ring; any further rings are holes. Winding is assumed normalized
/// at build time (outer counter-clockwise, holes clockwise) — the locate
/// and edge algorithms here are winding-agnostic, matching [`Polygon`].
///
/// The representative interior point is precomputed at build time and
/// stored in the arena's interior column; a NaN sentinel marks "no
/// detectable interior" (degenerate slivers), in which case
/// [`Areal::interior_points`] returns an empty set.
#[derive(Clone, Copy, Debug)]
pub struct PolyView<'a> {
    verts: &'a [Point],
    ring_offs: &'a [u64],
    mbr: Rect,
    interior: Point,
}

impl<'a> PolyView<'a> {
    /// Builds a view from its columns.
    ///
    /// `ring_offs` must hold `num_rings + 1` monotonically non-decreasing
    /// global offsets into `verts`, with at least one ring of at least
    /// three vertices. Callers (the arena, the v2 loader) validate this
    /// once per dataset; here it is only debug-asserted.
    #[inline]
    pub fn new(verts: &'a [Point], ring_offs: &'a [u64], mbr: Rect, interior: Point) -> Self {
        debug_assert!(ring_offs.len() >= 2, "PolyView needs >= 1 ring");
        debug_assert!(
            ring_offs.windows(2).all(|w| w[0] + 3 <= w[1]),
            "PolyView rings need >= 3 vertices each"
        );
        debug_assert!(
            ring_offs.last().is_none_or(|&e| e as usize <= verts.len()),
            "PolyView ring offsets out of pool bounds"
        );
        PolyView {
            verts,
            ring_offs,
            mbr,
            interior,
        }
    }

    /// Number of rings (outer + holes).
    #[inline]
    pub fn num_rings(&self) -> usize {
        self.ring_offs.len() - 1
    }

    /// Vertex slice of ring `i` (unclosed).
    #[inline]
    pub fn ring(&self, i: usize) -> &'a [Point] {
        &self.verts[self.ring_offs[i] as usize..self.ring_offs[i + 1] as usize]
    }

    /// The polygon's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// The precomputed representative interior point (NaN sentinel when
    /// none is known).
    #[inline]
    pub fn interior(&self) -> Point {
        self.interior
    }

    /// Total vertex count over all rings.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        (self.ring_offs[self.ring_offs.len() - 1] - self.ring_offs[0]) as usize
    }

    /// Locates `p` relative to the polygon (interior / boundary /
    /// exterior), with [`Polygon::locate`] semantics.
    pub fn locate(&self, p: Point) -> Location {
        let ring_box = |verts: &[Point]| Rect::of_points(verts.iter().copied());
        let outer = self.ring(0);
        match locate_in_ring(outer, &ring_box(outer), p) {
            Location::Outside => Location::Outside,
            Location::Boundary => Location::Boundary,
            Location::Inside => {
                for i in 1..self.num_rings() {
                    let hole = self.ring(i);
                    match locate_in_ring(hole, &ring_box(hole), p) {
                        Location::Inside => return Location::Outside,
                        Location::Boundary => return Location::Boundary,
                        Location::Outside => {}
                    }
                }
                Location::Inside
            }
        }
    }
}

impl Areal for PolyView<'_> {
    fn mbr(&self) -> Rect {
        self.mbr
    }

    fn collect_edges(&self, out: &mut Vec<Segment>) {
        for i in 0..self.num_rings() {
            let ring = self.ring(i);
            let n = ring.len();
            out.extend((0..n).map(|k| Segment::new(ring[k], ring[(k + 1) % n])));
        }
    }

    fn locate(&self, p: Point) -> Location {
        PolyView::locate(self, p)
    }

    fn collect_interior_points(&self, _scratch: &mut InteriorScratch, out: &mut Vec<Point>) {
        // Precomputed at arena build time; NaN sentinel means "none".
        if self.interior.is_finite() {
            out.push(self.interior);
        }
    }

    fn num_vertices(&self) -> usize {
        PolyView::num_vertices(self)
    }
}

/// A `Copy` handle to either an owned [`Polygon`] or a pooled
/// [`PolyView`], dispatching [`Areal`] to whichever it holds.
///
/// This is what object views carry through the join pipeline: owned
/// datasets and columnar arenas produce the same `GeomRef`-bearing views,
/// so the refinement stage has a single code path.
#[derive(Clone, Copy, Debug)]
pub enum GeomRef<'a> {
    /// Borrowed owned polygon (build-time `Dataset` path).
    Poly(&'a Polygon),
    /// Borrowed columnar view (arena path).
    View(PolyView<'a>),
}

impl Areal for GeomRef<'_> {
    fn mbr(&self) -> Rect {
        match self {
            GeomRef::Poly(p) => *p.mbr(),
            GeomRef::View(v) => *v.mbr(),
        }
    }

    fn collect_edges(&self, out: &mut Vec<Segment>) {
        match self {
            GeomRef::Poly(p) => out.extend(p.edges()),
            GeomRef::View(v) => v.collect_edges(out),
        }
    }

    fn locate(&self, p: Point) -> Location {
        match self {
            GeomRef::Poly(poly) => poly.locate(p),
            GeomRef::View(v) => v.locate(p),
        }
    }

    fn collect_interior_points(&self, scratch: &mut InteriorScratch, out: &mut Vec<Point>) {
        match self {
            GeomRef::Poly(p) => p.collect_interior_points(scratch, out),
            GeomRef::View(v) => v.collect_interior_points(scratch, out),
        }
    }

    fn num_vertices(&self) -> usize {
        match self {
            GeomRef::Poly(p) => p.num_vertices(),
            GeomRef::View(v) => v.num_vertices(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interior_point::interior_point;

    /// Flattens a polygon into pool columns and returns a view over them.
    fn columns(p: &Polygon) -> (Vec<Point>, Vec<u64>, Rect, Point) {
        let mut verts = Vec::new();
        let mut offs = vec![0u64];
        for ring in std::iter::once(p.outer()).chain(p.holes().iter()) {
            verts.extend_from_slice(ring.vertices());
            offs.push(verts.len() as u64);
        }
        (verts, offs, *p.mbr(), interior_point(p))
    }

    fn holed() -> Polygon {
        Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]],
        )
        .unwrap()
    }

    #[test]
    fn view_matches_polygon_locate() {
        let p = holed();
        let (verts, offs, mbr, ip) = columns(&p);
        let v = PolyView::new(&verts, &offs, mbr, ip);
        assert_eq!(v.num_rings(), 2);
        assert_eq!(v.num_vertices(), p.num_vertices());
        for (x, y) in [
            (1.0, 1.0),
            (5.0, 5.0),
            (4.0, 5.0),
            (0.0, 5.0),
            (-1.0, 5.0),
            (10.0, 10.0),
        ] {
            let pt = Point::new(x, y);
            assert_eq!(v.locate(pt), p.locate(pt), "at {pt:?}");
        }
    }

    #[test]
    fn view_areal_matches_polygon_areal() {
        let p = holed();
        let (verts, offs, mbr, ip) = columns(&p);
        let v = PolyView::new(&verts, &offs, mbr, ip);
        assert_eq!(Areal::mbr(&v), Areal::mbr(&p));
        assert_eq!(Areal::num_vertices(&v), Areal::num_vertices(&p));
        let (mut ev, mut ep) = (Vec::new(), Vec::new());
        v.collect_edges(&mut ev);
        p.collect_edges(&mut ep);
        assert_eq!(ev, ep);
        let pts = Areal::interior_points(&v);
        assert_eq!(pts.len(), 1);
        assert_eq!(p.locate(pts[0]), Location::Inside);
    }

    #[test]
    fn nan_interior_sentinel_yields_no_points() {
        let p = holed();
        let (verts, offs, mbr, _) = columns(&p);
        let v = PolyView::new(&verts, &offs, mbr, Point::new(f64::NAN, f64::NAN));
        assert!(Areal::interior_points(&v).is_empty());
    }

    #[test]
    fn geom_ref_dispatches_both_ways() {
        let p = holed();
        let (verts, offs, mbr, ip) = columns(&p);
        let v = PolyView::new(&verts, &offs, mbr, ip);
        let owned = GeomRef::Poly(&p);
        let pooled = GeomRef::View(v);
        let pt = Point::new(2.0, 2.0);
        assert_eq!(Areal::locate(&owned, pt), Areal::locate(&pooled, pt));
        assert_eq!(Areal::mbr(&owned), Areal::mbr(&pooled));
        assert_eq!(Areal::num_vertices(&owned), Areal::num_vertices(&pooled));
    }
}
