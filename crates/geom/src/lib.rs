//! `stj-geom`: the geometry kernel underneath the spatial topology join
//! pipeline.
//!
//! This crate implements, from scratch, every geometric primitive and
//! predicate the rest of the workspace needs:
//!
//! - [`Point`], [`Segment`], [`Rect`] (axis-aligned MBR), [`Polygon`]
//!   (outer ring + holes) and [`MultiPolygon`];
//! - robust orientation predicates ([`predicates::orient2d`]) using
//!   Shewchuk-style adaptive floating-point filters backed by exact
//!   expansion arithmetic;
//! - exact segment–segment intersection classification
//!   ([`seg_intersect::intersect_segments`]);
//! - point-in-polygon with explicit boundary detection
//!   ([`Polygon::locate`]);
//! - an interior ("representative") point construction
//!   ([`interior_point::interior_point`]);
//! - a plane sweep over segment bounding boxes that reports all
//!   intersecting boundary segment pairs between two polygons
//!   ([`sweep::boundary_pairs`]);
//! - WKT parsing/formatting for interoperability ([`wkt`]).
//!
//! The kernel is deliberately dependency-free: the paper's refinement step
//! uses boost::geometry, and this crate plays that role for the Rust
//! reproduction.

pub mod interior_point;
pub mod locator;
pub mod multipolygon;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod rect;
pub mod seg_intersect;
pub mod segment;
pub mod sweep;
pub mod validate;
pub mod view;
pub mod wkt;

pub use interior_point::{
    interior_point, try_interior_point, try_interior_point_with, InteriorScratch,
};
pub use locator::EdgeSetLocator;
pub use multipolygon::{Areal, MultiPolygon};
pub use point::Point;
pub use polygon::{locate_in_ring, Location, Polygon, Ring};
pub use predicates::{orient2d, Orientation};
pub use rect::Rect;
pub use seg_intersect::{intersect_segments, SegSegIntersection};
pub use segment::Segment;
pub use sweep::{boundary_pairs, boundary_pairs_into, EdgePairHit, SweepScratch};
pub use validate::{validate_polygon, validate_ring, ValidityError};
pub use view::{GeomRef, PolyView};
