//! Rings and polygons (with holes).

use crate::point::Point;
use crate::predicates::{orient2d, point_on_segment, Orientation};
use crate::rect::Rect;
use crate::segment::Segment;

/// Where a point lies relative to an areal geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    /// Strictly inside the geometry's interior.
    Inside,
    /// Exactly on the geometry's boundary.
    Boundary,
    /// Strictly outside (in the exterior).
    Outside,
}

/// A simple closed ring of vertices.
///
/// Stored *unclosed*: the edge from the last vertex back to the first is
/// implicit. Construction collapses consecutive duplicate vertices and
/// requires at least three distinct vertices. Rings do not enforce an
/// orientation; [`Polygon`] normalizes its rings on construction (outer
/// counter-clockwise, holes clockwise).
#[derive(Clone, Debug, PartialEq)]
pub struct Ring {
    vertices: Vec<Point>,
    mbr: Rect,
}

/// Errors raised by ring/polygon construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeomError {
    /// Fewer than three distinct vertices.
    TooFewVertices,
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::TooFewVertices => write!(f, "ring needs at least 3 distinct vertices"),
            GeomError::NonFiniteCoordinate => write!(f, "non-finite coordinate"),
        }
    }
}

impl std::error::Error for GeomError {}

impl Ring {
    /// Builds a ring from a vertex list.
    ///
    /// Consecutive duplicates (including a closing vertex equal to the
    /// first) are collapsed. Returns an error for non-finite coordinates
    /// or fewer than three remaining vertices.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        vertices.dedup();
        while vertices.len() > 1 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return Err(GeomError::TooFewVertices);
        }
        // `dedup` only removes *consecutive* duplicates: a zig-zag like
        // (0,0),(1,1),(0,0),(1,1) still passes the length check with only
        // two distinct vertices and zero area. Count distinct vertices
        // the O(n log n) way rather than trusting adjacency.
        let mut distinct: Vec<Point> = vertices.clone();
        distinct.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        distinct.dedup();
        if distinct.len() < 3 {
            return Err(GeomError::TooFewVertices);
        }
        let mbr = Rect::of_points(vertices.iter().copied());
        Ok(Ring { vertices, mbr })
    }

    /// The ring's vertices (unclosed).
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Rings are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ring's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// Iterates over the ring's edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Twice the signed area (positive for counter-clockwise orientation).
    ///
    /// Computed with the shoelace formula anchored at the first vertex for
    /// better conditioning on rings far from the origin.
    pub fn signed_area2(&self) -> f64 {
        let o = self.vertices[0];
        let mut acc = 0.0;
        for w in self.vertices.windows(2) {
            let (a, b) = (w[0] - o, w[1] - o);
            acc += a.x * b.y - a.y * b.x;
        }
        acc
    }

    /// Absolute enclosed area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area2().abs() * 0.5
    }

    /// Whether the ring winds counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area2() > 0.0
    }

    /// Reverses the winding direction in place.
    pub fn reverse(&mut self) {
        self.vertices.reverse();
    }

    /// Locates `p` relative to the closed region bounded by this ring
    /// (ignoring any holes — see [`Polygon::locate`] for full semantics).
    ///
    /// Uses exact ray-crossing parity: for a rightward ray from `p`, an
    /// edge contributes a crossing iff it spans `p.y` half-open upward or
    /// downward and `p` lies strictly on the corresponding side; boundary
    /// incidence is detected first with [`point_on_segment`]. Exactness
    /// follows from [`orient2d`].
    pub fn locate(&self, p: Point) -> Location {
        locate_in_ring(&self.vertices, &self.mbr, p)
    }
}

/// Locates `p` relative to the closed region bounded by the (unclosed)
/// ring `vertices` with bounding box `mbr` — the slice-based core of
/// [`Ring::locate`], shared with borrowed views over vertex pools.
///
/// Uses exact ray-crossing parity: for a rightward ray from `p`, an edge
/// contributes a crossing iff it spans `p.y` half-open upward or downward
/// and `p` lies strictly on the corresponding side; boundary incidence is
/// detected first with [`point_on_segment`]. Exactness follows from
/// [`orient2d`].
pub fn locate_in_ring(vertices: &[Point], mbr: &Rect, p: Point) -> Location {
    if !mbr.contains_point(p) {
        return Location::Outside;
    }
    let mut inside = false;
    let n = vertices.len();
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        if point_on_segment(p, a, b) {
            return Location::Boundary;
        }
        // Half-open vertical span avoids double counting at vertices.
        if (a.y > p.y) != (b.y > p.y) {
            // The edge crosses the horizontal line through p. It
            // crosses the rightward ray iff p is strictly left of the
            // edge, oriented to point upward.
            let (lo, hi) = if a.y < b.y { (a, b) } else { (b, a) };
            if orient2d(lo, hi, p) == Orientation::CounterClockwise {
                inside = !inside;
            }
        }
    }
    if inside {
        Location::Inside
    } else {
        Location::Outside
    }
}

/// A polygon: one outer ring plus zero or more hole rings.
///
/// Construction normalizes winding (outer counter-clockwise, holes
/// clockwise) so downstream code can rely on orientation. Validity
/// assumptions for the topology algorithms (matching the OGC "valid
/// polygon" rules the paper's datasets satisfy): rings are simple, holes
/// lie within the outer ring, and rings may touch at finitely many points
/// but not cross.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    outer: Ring,
    holes: Vec<Ring>,
    mbr: Rect,
    num_vertices: usize,
}

impl Polygon {
    /// Builds a polygon from an outer ring and holes, normalizing winding.
    pub fn new(mut outer: Ring, mut holes: Vec<Ring>) -> Self {
        if !outer.is_ccw() {
            outer.reverse();
        }
        for h in &mut holes {
            if h.is_ccw() {
                h.reverse();
            }
        }
        let mut mbr = *outer.mbr();
        for h in &holes {
            mbr.grow_rect(h.mbr());
        }
        let num_vertices = outer.len() + holes.iter().map(Ring::len).sum::<usize>();
        Polygon {
            outer,
            holes,
            mbr,
            num_vertices,
        }
    }

    /// Convenience constructor from bare vertex lists.
    pub fn from_coords(
        outer: Vec<(f64, f64)>,
        holes: Vec<Vec<(f64, f64)>>,
    ) -> Result<Self, GeomError> {
        let outer = Ring::new(outer.into_iter().map(Point::from).collect())?;
        let holes = holes
            .into_iter()
            .map(|h| Ring::new(h.into_iter().map(Point::from).collect()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Polygon::new(outer, holes))
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn rect(r: Rect) -> Self {
        Polygon::from_coords(
            vec![
                (r.min.x, r.min.y),
                (r.max.x, r.min.y),
                (r.max.x, r.max.y),
                (r.min.x, r.max.y),
            ],
            vec![],
        )
        .expect("rect polygon is valid")
    }

    /// The outer ring.
    #[inline]
    pub fn outer(&self) -> &Ring {
        &self.outer
    }

    /// The hole rings.
    #[inline]
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// The polygon's MBR.
    #[inline]
    pub fn mbr(&self) -> &Rect {
        &self.mbr
    }

    /// Total vertex count over all rings — the paper's complexity measure
    /// (Sec 4.3).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Iterates over all boundary edges (outer ring first, then holes).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.outer
            .edges()
            .chain(self.holes.iter().flat_map(|h| h.edges()))
    }

    /// Enclosed area (outer area minus hole areas).
    pub fn area(&self) -> f64 {
        self.outer.area() - self.holes.iter().map(Ring::area).sum::<f64>()
    }

    /// Locates `p` relative to the polygon: inside its interior, on its
    /// boundary (outer or hole ring), or outside (including inside holes).
    pub fn locate(&self, p: Point) -> Location {
        match self.outer.locate(p) {
            Location::Outside => Location::Outside,
            Location::Boundary => Location::Boundary,
            Location::Inside => {
                for h in &self.holes {
                    match h.locate(p) {
                        Location::Inside => return Location::Outside,
                        Location::Boundary => return Location::Boundary,
                        Location::Outside => {}
                    }
                }
                Location::Inside
            }
        }
    }

    /// Serialized size in bytes (vertex data as pairs of f64), used by the
    /// Table 2 storage accounting.
    pub fn serialized_bytes(&self) -> usize {
        self.num_vertices * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Ring {
        Ring::new(vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ])
        .unwrap()
    }

    #[test]
    fn ring_construction_rules() {
        assert_eq!(
            Ring::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(GeomError::TooFewVertices)
        );
        // Closing vertex and consecutive duplicates collapse.
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(r.len(), 3);
        assert!(Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(f64::NAN, 0.0),
            Point::new(1.0, 1.0)
        ])
        .is_err());
    }

    #[test]
    fn ring_rejects_too_few_distinct_vertices() {
        // Non-consecutive duplicates survive dedup but leave only two
        // distinct points — a degenerate zig-zag, not an areal ring.
        assert_eq!(
            Ring::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
            ]),
            Err(GeomError::TooFewVertices)
        );
        // Repeats of valid vertices are fine as long as 3 distinct remain.
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(r.is_ok());
    }

    #[test]
    fn ring_area_and_winding() {
        let r = square(0.0, 0.0, 2.0, 3.0);
        assert_eq!(r.area(), 6.0);
        assert!(r.is_ccw());
        let mut rev = r.clone();
        rev.reverse();
        assert!(!rev.is_ccw());
        assert_eq!(rev.area(), 6.0);
    }

    #[test]
    fn ring_edges_close_the_loop() {
        let r = square(0.0, 0.0, 1.0, 1.0);
        let edges: Vec<_> = r.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, edges[0].a);
    }

    #[test]
    fn ring_locate() {
        let r = square(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.locate(Point::new(5.0, 5.0)), Location::Inside);
        assert_eq!(r.locate(Point::new(0.0, 5.0)), Location::Boundary);
        assert_eq!(r.locate(Point::new(0.0, 0.0)), Location::Boundary);
        assert_eq!(r.locate(Point::new(10.0, 10.0)), Location::Boundary);
        assert_eq!(r.locate(Point::new(-0.1, 5.0)), Location::Outside);
        assert_eq!(r.locate(Point::new(15.0, 5.0)), Location::Outside);
    }

    #[test]
    fn ring_locate_concave() {
        // A "C" shape: point in the notch is outside.
        let r = Ring::new(
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.0, 3.0),
                (3.0, 3.0),
                (3.0, 7.0),
                (10.0, 7.0),
                (10.0, 10.0),
                (0.0, 10.0),
            ]
            .into_iter()
            .map(Point::from)
            .collect(),
        )
        .unwrap();
        assert_eq!(r.locate(Point::new(6.0, 5.0)), Location::Outside);
        assert_eq!(r.locate(Point::new(1.5, 5.0)), Location::Inside);
        assert_eq!(r.locate(Point::new(3.0, 5.0)), Location::Boundary);
    }

    #[test]
    fn ring_locate_ray_through_vertex() {
        // A diamond whose leftmost vertex is at the test point's y: the
        // rightward ray from an inside point passes exactly through the
        // right vertex.
        let r = Ring::new(
            vec![(0.0, 0.0), (5.0, -5.0), (10.0, 0.0), (5.0, 5.0)]
                .into_iter()
                .map(Point::from)
                .collect(),
        )
        .unwrap();
        assert_eq!(r.locate(Point::new(5.0, 0.0)), Location::Inside);
        assert_eq!(r.locate(Point::new(-1.0, 0.0)), Location::Outside);
        assert_eq!(r.locate(Point::new(11.0, 0.0)), Location::Outside);
    }

    #[test]
    fn polygon_normalizes_winding() {
        let mut outer = square(0.0, 0.0, 10.0, 10.0);
        outer.reverse(); // clockwise on purpose
        let hole = square(2.0, 2.0, 4.0, 4.0); // ccw on purpose
        let p = Polygon::new(outer, vec![hole]);
        assert!(p.outer().is_ccw());
        assert!(!p.holes()[0].is_ccw());
    }

    #[test]
    fn polygon_locate_with_hole() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]],
        )
        .unwrap();
        assert_eq!(p.locate(Point::new(1.0, 1.0)), Location::Inside);
        assert_eq!(p.locate(Point::new(5.0, 5.0)), Location::Outside); // in hole
        assert_eq!(p.locate(Point::new(4.0, 5.0)), Location::Boundary); // hole edge
        assert_eq!(p.locate(Point::new(0.0, 5.0)), Location::Boundary); // outer edge
        assert_eq!(p.locate(Point::new(-1.0, 5.0)), Location::Outside);
    }

    #[test]
    fn polygon_area_subtracts_holes() {
        let p = Polygon::from_coords(
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
            vec![vec![(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]],
        )
        .unwrap();
        assert_eq!(p.area(), 100.0 - 4.0);
        assert_eq!(p.num_vertices(), 8);
        assert_eq!(p.serialized_bytes(), 8 * 16);
    }

    #[test]
    fn polygon_mbr_and_edges() {
        let p = Polygon::from_coords(vec![(1.0, 1.0), (9.0, 2.0), (8.0, 9.0)], vec![]).unwrap();
        assert_eq!(*p.mbr(), Rect::from_coords(1.0, 1.0, 9.0, 9.0));
        assert_eq!(p.edges().count(), 3);
        let pr = Polygon::rect(Rect::from_coords(0.0, 0.0, 2.0, 2.0));
        assert_eq!(pr.area(), 4.0);
    }
}
