//! Allocation attribution: site-tagged counting-allocator hooks.
//!
//! The join makes millions of small allocations per run (the bench
//! harness counts ~5.6M on the 102k-object OBE self-join), almost all
//! of them in the DE-9IM refine path. Knowing the total is not enough
//! to attack the problem; this module splits it by *site*.
//!
//! The mechanism has three parts:
//!
//! 1. A binary installs a counting `#[global_allocator]` that forwards
//!    every allocation's size to [`note_alloc`] (the `stj` CLI and
//!    `join_bench` both do).
//! 2. Hot allocation sites in the refine path scope a [`SiteGuard`]
//!    (via [`enter`]) that tags the current thread with an
//!    [`AllocSite`] while the guard lives. The tag lives in a
//!    const-initialized `thread_local` `Cell`, so touching it never
//!    allocates — which matters inside a global allocator.
//! 3. [`note_alloc`] charges each allocation to the thread's current
//!    site in a global atomic table, read back with [`snapshot`].
//!
//! Recording is gated on a process-global `TRACKING` flag: when off
//! (the default) [`note_alloc`] is a single relaxed atomic load, so
//! the hooks cost nothing measurable on untraced runs. [`enter`]
//! always maintains the thread's tag stack regardless of the flag —
//! that keeps nested guards correct across mid-scope toggles — but a
//! tag set while tracking is off is never read.

use crate::json::Json;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// A refine-path allocation site. `Other` absorbs everything that runs
/// outside a [`SiteGuard`] (arena loading, candidate buffers, I/O).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocSite {
    Other = 0,
    /// Noding a geometry into a prepared edge set (edge extraction,
    /// locator build, interior points).
    Noding = 1,
    /// Building and sorting the sweep's per-input event lists.
    SweepEvents = 2,
    /// Sub-edge classification: per-edge hit lists, parameter splits,
    /// collinear-overlap ranges.
    SubEdge = 3,
    /// The edge-pair intersection hit list the sweep accumulates.
    IntersectionList = 4,
}

/// Number of sites, including `Other`.
pub const NUM_SITES: usize = 5;

impl AllocSite {
    /// All sites, in counter-table order.
    pub const ALL: [AllocSite; NUM_SITES] = [
        AllocSite::Other,
        AllocSite::Noding,
        AllocSite::SweepEvents,
        AllocSite::SubEdge,
        AllocSite::IntersectionList,
    ];

    /// Stable label used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            AllocSite::Other => "other",
            AllocSite::Noding => "noding",
            AllocSite::SweepEvents => "sweep_events",
            AllocSite::SubEdge => "sub_edge",
            AllocSite::IntersectionList => "intersection_list",
        }
    }
}

static TRACKING: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SITE_CALLS: [AtomicU64; NUM_SITES] = [ZERO; NUM_SITES];
static SITE_BYTES: [AtomicU64; NUM_SITES] = [ZERO; NUM_SITES];

thread_local! {
    /// The thread's current site tag. Const-initialized so reading it
    /// from inside the global allocator cannot itself allocate.
    static CURRENT_SITE: Cell<u8> = const { Cell::new(0) };
}

/// Turns attribution on or off process-wide.
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Relaxed);
}

/// Whether attribution is currently on.
pub fn tracking() -> bool {
    TRACKING.load(Relaxed)
}

/// Zeroes the site table.
pub fn reset() {
    for i in 0..NUM_SITES {
        SITE_CALLS[i].store(0, Relaxed);
        SITE_BYTES[i].store(0, Relaxed);
    }
}

/// Tags the current thread with `site` until the guard drops, then
/// restores the previous tag (guards nest).
///
/// The tag is set unconditionally — `TRACKING` gates only
/// [`note_alloc`]. A guard that consulted the flag at construction
/// time would mis-attribute when tracking toggles while it lives: an
/// inner guard built during an off window would leave the outer site
/// in place, silently charging its allocations to the wrong row once
/// tracking comes back on. Two TLS `Cell` accesses are cheap enough
/// that unconditional tagging costs nothing measurable.
#[inline]
pub fn enter(site: AllocSite) -> SiteGuard {
    let prev = CURRENT_SITE
        .try_with(|c| {
            let prev = c.get();
            c.set(site as u8);
            prev
        })
        .unwrap_or(0);
    SiteGuard { prev }
}

/// RAII tag restorer returned by [`enter`].
pub struct SiteGuard {
    prev: u8,
}

impl Drop for SiteGuard {
    fn drop(&mut self) {
        let _ = CURRENT_SITE.try_with(|c| c.set(self.prev));
    }
}

/// Charges one allocation of `size` bytes to the calling thread's
/// current site. Called from a binary's `#[global_allocator]` on every
/// `alloc`/`realloc`; must not allocate (it doesn't: `try_with` over a
/// const-initialized TLS cell plus relaxed atomics).
#[inline]
pub fn note_alloc(size: usize) {
    if !TRACKING.load(Relaxed) {
        return;
    }
    // TLS may be gone during thread teardown; charge `Other` then.
    let site = CURRENT_SITE.try_with(Cell::get).unwrap_or(0) as usize;
    SITE_CALLS[site].fetch_add(1, Relaxed);
    SITE_BYTES[site].fetch_add(size as u64, Relaxed);
}

/// A point-in-time copy of the site table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub calls: [u64; NUM_SITES],
    pub bytes: [u64; NUM_SITES],
}

impl AllocSnapshot {
    /// Reads the current counters.
    pub fn capture() -> AllocSnapshot {
        let mut snap = AllocSnapshot::default();
        for i in 0..NUM_SITES {
            snap.calls[i] = SITE_CALLS[i].load(Relaxed);
            snap.bytes[i] = SITE_BYTES[i].load(Relaxed);
        }
        snap
    }

    /// Counters accumulated since `earlier` (for bracketing one join).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        let mut snap = AllocSnapshot::default();
        for i in 0..NUM_SITES {
            snap.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
            snap.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
        }
        snap
    }

    /// Total allocation calls across all sites.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Sites with at least one recorded allocation.
    pub fn live_sites(&self) -> usize {
        self.calls.iter().filter(|&&c| c > 0).count()
    }

    /// The `alloc` block of `stj-join-report/v1`: totals plus a
    /// per-site `{calls, bytes}` breakdown.
    pub fn to_json(&self) -> Json {
        let mut sites = Json::Obj(Vec::new());
        for site in AllocSite::ALL {
            let i = site as usize;
            sites.push(
                site.name(),
                Json::object([
                    ("calls", Json::U64(self.calls[i])),
                    ("bytes", Json::U64(self.bytes[i])),
                ]),
            );
        }
        Json::object([
            ("total_calls", Json::U64(self.total_calls())),
            ("total_bytes", Json::U64(self.bytes.iter().sum())),
            ("sites", sites),
        ])
    }
}

/// Takes [`AllocSnapshot::capture`]; alias kept for call-site brevity.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot::capture()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tracking state is process-global; serialize the tests that
    /// toggle it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracking_records_nothing() {
        let _l = LOCK.lock().unwrap();
        reset();
        set_tracking(false);
        let _g = enter(AllocSite::Noding);
        note_alloc(128);
        assert_eq!(snapshot().total_calls(), 0);
    }

    #[test]
    fn guards_attribute_and_nest() {
        let _l = LOCK.lock().unwrap();
        reset();
        set_tracking(true);
        let before = snapshot();
        {
            let _g = enter(AllocSite::Noding);
            note_alloc(100);
            {
                let _h = enter(AllocSite::SubEdge);
                note_alloc(10);
                note_alloc(10);
            }
            // Inner guard dropped: back to Noding.
            note_alloc(100);
        }
        // Outer guard dropped: back to Other.
        note_alloc(1);
        set_tracking(false);
        let d = snapshot().since(&before);
        assert_eq!(d.calls[AllocSite::Noding as usize], 2);
        assert_eq!(d.bytes[AllocSite::Noding as usize], 200);
        assert_eq!(d.calls[AllocSite::SubEdge as usize], 2);
        assert_eq!(d.bytes[AllocSite::SubEdge as usize], 20);
        assert_eq!(d.calls[AllocSite::Other as usize], 1);
        assert!(d.live_sites() >= 3);
    }

    #[test]
    fn nested_guards_survive_tracking_toggle() {
        let _l = LOCK.lock().unwrap();
        reset();
        // Outer guard built while tracking is OFF: it must still tag
        // the thread, so that sites observed after tracking turns on
        // are attributed to the innermost live guard, and drops
        // restore correctly.
        set_tracking(false);
        let before = snapshot();
        {
            let _outer = enter(AllocSite::Noding);
            set_tracking(true);
            note_alloc(100); // charged to Noding, not Other
            {
                let _inner = enter(AllocSite::SweepEvents);
                note_alloc(10); // inner shadows outer
            }
            note_alloc(100); // inner dropped: back to Noding
        }
        note_alloc(1); // outer dropped: back to Other
        set_tracking(false);
        let d = snapshot().since(&before);
        assert_eq!(d.calls[AllocSite::Noding as usize], 2);
        assert_eq!(d.bytes[AllocSite::Noding as usize], 200);
        assert_eq!(d.calls[AllocSite::SweepEvents as usize], 1);
        assert_eq!(d.bytes[AllocSite::SweepEvents as usize], 10);
        assert_eq!(d.calls[AllocSite::Other as usize], 1);
    }

    #[test]
    fn snapshot_json_lists_every_site() {
        let text = AllocSnapshot::default().to_json().render();
        for site in AllocSite::ALL {
            assert!(text.contains(site.name()), "{text}");
        }
        assert!(text.contains("total_calls"), "{text}");
    }
}
