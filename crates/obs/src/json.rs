//! A minimal JSON document model and emitter.
//!
//! Hand-rolled (the workspace builds with no external dependencies):
//! just enough to assemble and pretty-print the join/bench telemetry
//! documents — objects with insertion-ordered keys, arrays, strings
//! with RFC 8259 escaping, and numbers. Non-finite floats render as
//! `null` so the output is always strictly valid JSON.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer, rendered exactly (no f64 round-trip).
    U64(u64),
    /// Signed integer, rendered exactly.
    I64(i64),
    /// Float; NaN / infinities render as `null`.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn object<const N: usize>(entries: [(&str, Json); N]) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Appends a key to an object (panics on non-objects).
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (n, item) in items.iter().enumerate() {
                        if n > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (n, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write(out, depth + 1);
                        if n + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (n, (key, value)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if n + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::F64(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structural validator: enough of a parser to prove the emitter
    /// produces well-formed JSON (values, nesting, commas, escapes).
    fn validate(s: &str) -> Result<(), String> {
        let b = s.trim().as_bytes();
        let mut pos = 0usize;
        parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_whitespace() {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("eof".into()),
            Some(b'{') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, pos);
                    parse_string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected : at {pos}"));
                    }
                    *pos += 1;
                    parse_value(b, pos)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected , or }} at {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    parse_value(b, pos)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected , or ] at {pos}")),
                    }
                }
            }
            Some(b'"') => parse_string(b, pos),
            Some(_) => {
                // Literal or number: consume the token and check it.
                let start = *pos;
                while *pos < b.len() && !b",]}\n\r\t ".contains(&b[*pos]) {
                    *pos += 1;
                }
                let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                match tok {
                    "null" | "true" | "false" => Ok(()),
                    t if t.parse::<f64>().is_ok() => Ok(()),
                    t => Err(format!("bad token {t:?}")),
                }
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at {pos}"));
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'\\' => *pos += 2,
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                _ => *pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn sample() -> Json {
        Json::object([
            ("name", Json::str("join \"quoted\" \\ path\n")),
            ("count", Json::U64(u64::MAX)),
            ("neg", Json::I64(-42)),
            ("ratio", Json::F64(0.125)),
            ("bad_float", Json::F64(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::Arr(vec![
                    Json::Arr(vec![Json::U64(1), Json::U64(2)]),
                    Json::object([("k", Json::str("v"))]),
                ]),
            ),
        ])
    }

    #[test]
    fn emitted_json_is_well_formed() {
        let rendered = sample().render();
        validate(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
    }

    #[test]
    fn exact_u64_rendering() {
        assert_eq!(
            Json::U64(18446744073709551615).render().trim(),
            "18446744073709551615"
        );
        assert_eq!(Json::I64(-7).render().trim(), "-7");
    }

    #[test]
    fn nan_and_infinity_render_null() {
        assert_eq!(Json::F64(f64::NAN).render().trim(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render().trim(), "null");
        assert_eq!(Json::F64(1.5).render().trim(), "1.5");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd\te\u{1}").render();
        assert_eq!(s.trim(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn push_extends_objects() {
        let mut o = Json::Obj(vec![]);
        o.push("x", Json::U64(1));
        assert_eq!(o.render().trim(), "{\n  \"x\": 1\n}");
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::U64(3));
    }
}
