//! A minimal JSON document model, emitter and parser.
//!
//! Hand-rolled (the workspace builds with no external dependencies):
//! just enough to assemble and pretty-print the join/bench telemetry
//! documents — objects with insertion-ordered keys, arrays, strings
//! with RFC 8259 escaping, and numbers. Non-finite floats render as
//! `null` so the output is always strictly valid JSON. [`Json::parse`]
//! reads the same documents back, which is what `stj bench-diff` and
//! the trace-validation tests are built on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer, rendered exactly (no f64 round-trip).
    U64(u64),
    /// Signed integer, rendered exactly.
    I64(i64),
    /// Float; NaN / infinities render as `null`.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn object<const N: usize>(entries: [(&str, Json); N]) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Appends a key to an object (panics on non-objects).
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Parses a JSON document. Integers land in [`Json::U64`] /
    /// [`Json::I64`] when they fit exactly; everything else numeric is
    /// [`Json::F64`]. Errors carry a byte offset.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an unsigned integer (exact `U64` only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a float (accepting any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (n, item) in items.iter().enumerate() {
                        if n > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (n, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write(out, depth + 1);
                        if n + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (n, (key, value)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if n + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(_) => {
            // Literal or number: consume the token, then classify it.
            let start = *pos;
            while *pos < b.len() && !b",]}: \n\r\t".contains(&b[*pos]) {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            match tok {
                "null" => Ok(Json::Null),
                "true" => Ok(Json::Bool(true)),
                "false" => Ok(Json::Bool(false)),
                t => parse_number(t).ok_or_else(|| format!("bad token {t:?} at byte {start}")),
            }
        }
    }
}

fn parse_number(tok: &str) -> Option<Json> {
    if !tok.contains(['.', 'e', 'E']) {
        if let Ok(n) = tok.parse::<u64>() {
            return Some(Json::U64(n));
        }
        if let Ok(n) = tok.parse::<i64>() {
            return Some(Json::I64(n));
        }
    }
    tok.parse::<f64>()
        .ok()
        .filter(|f| f.is_finite())
        .map(Json::F64)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Unpaired surrogates degrade to the
                        // replacement character rather than erroring.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(&c) => {
                // Copy a whole multi-byte UTF-8 scalar.
                let len = match c {
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    0xf0..=0xf7 => 4,
                    _ => return Err(format!("bad UTF-8 at byte {pos}")),
                };
                let s = b
                    .get(*pos..*pos + len)
                    .and_then(|x| std::str::from_utf8(x).ok())
                    .ok_or_else(|| format!("bad UTF-8 at byte {pos}"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::F64(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::object([
            ("name", Json::str("join \"quoted\" \\ path\n")),
            ("count", Json::U64(u64::MAX)),
            ("neg", Json::I64(-42)),
            ("ratio", Json::F64(0.125)),
            ("bad_float", Json::F64(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::Arr(vec![
                    Json::Arr(vec![Json::U64(1), Json::U64(2)]),
                    Json::object([("k", Json::str("v"))]),
                ]),
            ),
        ])
    }

    #[test]
    fn emitted_json_is_well_formed() {
        let rendered = sample().render();
        Json::parse(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        // NaN renders as null, so swap it for a finite float before
        // asserting a perfect round-trip.
        let mut doc = sample();
        if let Json::Obj(entries) = &mut doc {
            for (k, v) in entries.iter_mut() {
                if k == "bad_float" {
                    *v = Json::F64(2.5);
                }
            }
        }
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_classifies_numbers() {
        let doc = Json::parse(r#"{"u": 18446744073709551615, "i": -7, "f": 1.25e3}"#).unwrap();
        assert_eq!(doc.get("u"), Some(&Json::U64(u64::MAX)));
        assert_eq!(doc.get("i"), Some(&Json::I64(-7)));
        assert_eq!(doc.get("f"), Some(&Json::F64(1250.0)));
    }

    #[test]
    fn parse_decodes_escapes() {
        let doc = Json::parse(r#""a\"b\\c\ndA λ""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndA λ"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"runs": [{"wall_ns": 12, "exec": "st"}]}"#).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs[0].get("wall_ns").and_then(Json::as_u64), Some(12));
        assert_eq!(runs[0].get("exec").and_then(Json::as_str), Some("st"));
        assert_eq!(runs[0].get("wall_ns").and_then(Json::as_f64), Some(12.0));
    }

    #[test]
    fn exact_u64_rendering() {
        assert_eq!(
            Json::U64(18446744073709551615).render().trim(),
            "18446744073709551615"
        );
        assert_eq!(Json::I64(-7).render().trim(), "-7");
    }

    #[test]
    fn nan_and_infinity_render_null() {
        assert_eq!(Json::F64(f64::NAN).render().trim(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render().trim(), "null");
        assert_eq!(Json::F64(1.5).render().trim(), "1.5");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd\te\u{1}").render();
        assert_eq!(s.trim(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn push_extends_objects() {
        let mut o = Json::Obj(vec![]);
        o.push("x", Json::U64(1));
        assert_eq!(o.render().trim(), "{\n  \"x\": 1\n}");
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::U64(3));
    }
}
