//! `stj-obs`: the observability layer for the spatial topology join.
//!
//! The paper's experimental story (EDBT 2026, Figures 7–9) is about
//! *where* join time goes: which pipeline stage decides each pair, and
//! at what latency. This crate provides the measurement machinery the
//! rest of the workspace instruments itself with:
//!
//! - [`hist::Histogram`] — log2-bucketed, mergeable latency histograms
//!   with p50/p95/p99/max summaries;
//! - [`profile`] — the statically-dispatched [`profile::Profiler`]
//!   trait ([`profile::Disabled`] is a true no-op; [`profile::Recorder`]
//!   collects a [`profile::JoinProfile`] per worker thread, merged
//!   exactly after the join);
//! - [`json::Json`] — a dependency-free JSON document model (emitter
//!   *and* parser) backing `stj join --stats-json`, `stj bench-diff`,
//!   and the bench harness's `BENCH_*.json`;
//! - [`progress::Progress`] — a pairs/sec + worker-utilization
//!   heartbeat on stderr;
//! - [`metrics`] — shared-state counters, gauges and histograms for
//!   long-lived services (`stj serve`'s `/stats` endpoint);
//! - [`trace`] — the flight recorder: per-worker lock-free span rings
//!   over tile tasks, exported as Chrome trace-event JSON
//!   (`stj join --trace`, loadable in Perfetto);
//! - [`sched`] — per-worker busy/idle/task-claim/skew-split tallies
//!   and the derived imbalance ratio for the streaming executor;
//! - [`alloc`] — site-tagged allocation attribution fed by a counting
//!   `#[global_allocator]` in the binaries;
//! - [`prom`] — a Prometheus text-exposition writer over the service
//!   metrics (`stj serve`'s `/metrics` endpoint).
//!
//! The crate has no dependencies (the build environment is offline) and
//! no knowledge of geometry: callers pass stage/class identifiers in
//! and label them at JSON-emission time.

pub mod alloc;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod prom;
pub mod sched;
pub mod trace;

pub use alloc::{AllocSite, AllocSnapshot};
pub use hist::Histogram;
pub use json::Json;
pub use metrics::{Counter, Gauge, SharedHistogram};
pub use profile::{ClassStats, Disabled, JoinProfile, Profiler, Recorder, Stage, StageStats};
pub use progress::{Progress, ProgressBatch};
pub use prom::PromWriter;
pub use sched::{SchedReport, WorkerSched};
pub use trace::{JoinTrace, SpanRecord, SpanRing, WorkerTrace, DEFAULT_TRACE_SPANS};
