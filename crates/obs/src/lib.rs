//! `stj-obs`: the observability layer for the spatial topology join.
//!
//! The paper's experimental story (EDBT 2026, Figures 7–9) is about
//! *where* join time goes: which pipeline stage decides each pair, and
//! at what latency. This crate provides the measurement machinery the
//! rest of the workspace instruments itself with:
//!
//! - [`hist::Histogram`] — log2-bucketed, mergeable latency histograms
//!   with p50/p95/p99/max summaries;
//! - [`profile`] — the statically-dispatched [`profile::Profiler`]
//!   trait ([`profile::Disabled`] is a true no-op; [`profile::Recorder`]
//!   collects a [`profile::JoinProfile`] per worker thread, merged
//!   exactly after the join);
//! - [`json::Json`] — a dependency-free JSON document model backing
//!   `stj join --stats-json`, and the bench harness's `BENCH_*.json`;
//! - [`progress::Progress`] — a pairs/sec heartbeat on stderr;
//! - [`metrics`] — shared-state counters, gauges and histograms for
//!   long-lived services (`stj serve`'s `/stats` endpoint).
//!
//! The crate has no dependencies (the build environment is offline) and
//! no knowledge of geometry: callers pass stage/class identifiers in
//! and label them at JSON-emission time.

pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;

pub use hist::Histogram;
pub use json::Json;
pub use metrics::{Counter, Gauge, SharedHistogram};
pub use profile::{ClassStats, Disabled, JoinProfile, Profiler, Recorder, Stage, StageStats};
pub use progress::{Progress, ProgressBatch};
