//! Log2-bucketed latency histograms.
//!
//! A [`Histogram`] records `u64` samples (nanoseconds, by convention)
//! into power-of-two buckets: bucket `i > 0` covers `[2^(i-1), 2^i)`
//! and bucket `0` holds exact zeros. Recording is a handful of integer
//! instructions — cheap enough to sit on a per-pair hot path when
//! profiling is enabled — and histograms merge by bucket-wise addition,
//! so per-thread instances combine into an exact aggregate (the same
//! totals as a sequential run; see `PipelineStats::merge` in
//! `stj-core`).
//!
//! Quantiles are resolved to the upper bound of the containing bucket
//! (clamped to the observed maximum), i.e. they are exact to within the
//! ~2x bucket resolution, which is the right fidelity for "is p99
//! refinement latency microseconds or milliseconds" questions.

use crate::json::Json;

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A mergeable log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: `0` for `0`, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive value range covered by bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            1 => (1, 1),
            64.. => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`0` when empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0` when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), resolved to the upper bound
    /// of the containing bucket and clamped to the observed min/max.
    /// Returns `0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise merge: `self` afterwards equals a histogram that
    /// recorded both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_bounds(i).0, n))
            .collect()
    }

    /// JSON rendering used by join reports and the bench telemetry:
    /// summary quantiles in nanoseconds plus the sparse bucket list.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("count", Json::U64(self.count)),
            ("sum_ns", Json::U64(self.sum)),
            ("mean_ns", Json::F64(self.mean())),
            ("min_ns", Json::U64(self.min())),
            ("p50_ns", Json::U64(self.p50())),
            ("p95_ns", Json::U64(self.p95())),
            ("p99_ns", Json::U64(self.p99())),
            ("max_ns", Json::U64(self.max)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Json::Arr(vec![Json::U64(lo), Json::U64(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        let mut expected_lo = 0u64;
        for i in 0..64 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i}");
            assert!(lo <= hi);
            expected_lo = hi + 1;
        }
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantiles_bracket_true_values_within_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // True p50 is 500; the containing bucket is [512,1023] for 501+,
        // [256,511] for 500 — log2 resolution means at most 2x off.
        let p50 = h.p50();
        assert!((250..=1000).contains(&p50), "{p50}");
        let p99 = h.p99();
        assert!((495..=1000).contains(&p99), "{p99}");
        // Quantiles are monotone.
        assert!(h.quantile(0.1) <= h.p50());
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn quantile_of_uniform_single_bucket_is_exactish() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7);
        }
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p99(), 7);
        assert_eq!(h.max(), 7);
        assert_eq!(h.mean(), 7.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..500u64 {
            all.record(v * 3);
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        assert_eq!(merged.count(), 500);
        assert_eq!(merged.sum(), all.sum());
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        assert_eq!(h.nonzero_buckets(), vec![(0, 2), (4, 1)]);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let rendered = h.to_json().render();
        for key in ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns", "buckets"] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }
}
