//! Shared-state metrics for long-lived services.
//!
//! The join-side profiling in [`crate::profile`] is deliberately
//! thread-private (each worker owns a recorder, merged once at the end
//! of a run). A resident server has the opposite shape: many
//! short-lived requests on many threads updating the *same* metrics for
//! the lifetime of the process, sampled at arbitrary points by a
//! `/stats` endpoint. This module provides the three primitives that
//! shape needs:
//!
//! - [`Counter`] — a monotonically increasing `u64` (requests served,
//!   cache hits, bytes moved);
//! - [`Gauge`] — a current-value-plus-high-water-mark pair (queue
//!   depth, in-flight requests);
//! - [`SharedHistogram`] — a mutex-guarded [`Histogram`] for
//!   cross-thread latency recording (per-endpoint latency; the mutex is
//!   held for a few nanoseconds per record, far off any hot loop).
//!
//! All three are `Sync`, cheap to update, and snapshot without stopping
//! writers.

use crate::hist::Histogram;
use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increments and returns the new count — a process-unique sequence
    /// number (request trace ids).
    #[inline]
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The count as a JSON number.
    pub fn to_json(&self) -> Json {
        Json::U64(self.get())
    }
}

/// A current value with a high-water mark — e.g. a queue-depth gauge
/// whose peak reveals how close the service came to shedding load.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Increments the value, updating the peak.
    #[inline]
    pub fn inc(&self) {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Decrements the value. Saturates at zero (a decrement racing a
    /// snapshot must never underflow to `u64::MAX`).
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Adds `n` to the value, updating the peak — for gauges tracking a
    /// quantity rather than a population count (e.g. queued bytes).
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `n` from the value, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Sets an absolute value, updating the peak.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest value ever observed.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// `{"current": .., "peak": ..}`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("current", Json::U64(self.get())),
            ("peak", Json::U64(self.peak())),
        ])
    }
}

/// A [`Histogram`] shared across threads behind a mutex.
#[derive(Debug, Default)]
pub struct SharedHistogram(Mutex<Histogram>);

impl SharedHistogram {
    /// An empty shared histogram.
    pub fn new() -> SharedHistogram {
        SharedHistogram::default()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.0.lock().expect("histogram lock").record(value);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram lock").clone()
    }

    /// JSON rendering of the snapshot (see [`Histogram::to_json`]).
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_json(), Json::U64(42));
        assert_eq!(c.next(), 43);
        assert_eq!(c.next(), 44);
    }

    #[test]
    fn gauge_tracks_peak_and_saturates() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 3);
        g.set(10);
        assert_eq!(g.peak(), 10);
        g.set(0);
        g.dec(); // saturates, no underflow
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 10);
        g.add(7);
        g.sub(3);
        assert_eq!(g.get(), 4);
        g.sub(100); // saturates, no underflow
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 10);
    }

    #[test]
    fn gauge_concurrent_updates_balance() {
        let g = Gauge::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        g.inc();
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(g.get(), 0);
        assert!(g.peak() >= 1);
    }

    #[test]
    fn shared_histogram_merges_across_threads() {
        let h = SharedHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..100 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 400);
    }
}
