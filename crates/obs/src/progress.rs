//! Join progress heartbeats.
//!
//! A [`Progress`] meter counts processed candidate pairs with a single
//! shared atomic; worker threads add in batches (every few thousand
//! pairs) so the counter never contends on the per-pair path. A monitor
//! thread — see [`Progress::run_reporter`] — periodically prints a
//! `pairs/sec` heartbeat line to stderr, keeping stdout clean for
//! pipeable join output.
//!
//! Executors that track scheduler metrics also feed per-task busy time
//! into the meter ([`Progress::add_busy`] after
//! [`Progress::set_workers`]); the heartbeat then appends worker
//! utilization — busy time over `workers × elapsed` — so a stalled
//! line readily distinguishes "one skewed task pinning one worker"
//! from "everyone still busy".

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Worker batch size: add to the shared counter every this many pairs.
pub const BATCH: u64 = 4096;

/// A shared join-progress counter.
#[derive(Debug)]
pub struct Progress {
    done: AtomicU64,
    total: u64,
    start: Instant,
    /// Workers feeding [`Progress::add_busy`]; `0` hides utilization.
    workers: AtomicU64,
    busy_ns: AtomicU64,
}

impl Progress {
    /// A meter expecting `total` pairs (use `0` when unknown).
    pub fn new(total: u64) -> Progress {
        Progress {
            done: AtomicU64::new(0),
            total,
            start: Instant::now(),
            workers: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// Declares how many workers will report busy time; heartbeats
    /// include a utilization figure once this is nonzero.
    pub fn set_workers(&self, n: usize) {
        self.workers.store(n as u64, Ordering::Relaxed);
    }

    /// Records `ns` nanoseconds of worker busy time (called at task
    /// boundaries, not per pair).
    #[inline]
    pub fn add_busy(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Mean busy fraction across declared workers so far, or `None`
    /// before [`Progress::set_workers`].
    pub fn utilization(&self) -> Option<f64> {
        let workers = self.workers.load(Ordering::Relaxed);
        if workers == 0 {
            return None;
        }
        let elapsed = self.start.elapsed().as_nanos() as u64;
        if elapsed == 0 {
            return Some(0.0);
        }
        let busy = self.busy_ns.load(Ordering::Relaxed);
        Some((busy as f64 / (workers * elapsed) as f64).min(1.0))
    }

    /// Records `n` more processed pairs.
    #[inline]
    pub fn add(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Pairs recorded so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// The expected total supplied at construction.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// One heartbeat line, e.g.
    /// `progress: 1234567/2000000 pairs (61.7%), 812345 pairs/sec`.
    pub fn report_line(&self) -> String {
        let done = self.done();
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let mut line = if self.total > 0 {
            let pct = 100.0 * done as f64 / self.total as f64;
            format!(
                "progress: {done}/{} pairs ({pct:.1}%), {rate:.0} pairs/sec",
                self.total
            )
        } else {
            format!("progress: {done} pairs, {rate:.0} pairs/sec")
        };
        if let Some(util) = self.utilization() {
            let workers = self.workers.load(Ordering::Relaxed);
            line.push_str(&format!(", {workers} workers {:.0}% busy", 100.0 * util));
        }
        line
    }

    /// Heartbeat loop for a monitor thread: prints [`report_line`] to
    /// stderr every `interval` until `stop` is set, then prints a final
    /// line. Returns the number of heartbeats printed (including the
    /// final one).
    ///
    /// [`report_line`]: Progress::report_line
    pub fn run_reporter(&self, stop: &AtomicBool, interval: Duration) -> u64 {
        let mut beats = 0u64;
        while !stop.load(Ordering::Acquire) {
            // Sleep in short slices so a finished join never waits a
            // full interval for the monitor to exit.
            let slice = Duration::from_millis(25).min(interval);
            let mut slept = Duration::ZERO;
            while slept < interval && !stop.load(Ordering::Acquire) {
                std::thread::sleep(slice);
                slept += slice;
            }
            if stop.load(Ordering::Acquire) {
                break;
            }
            eprintln!("{}", self.report_line());
            beats += 1;
        }
        eprintln!("{}", self.report_line());
        let _ = std::io::stderr().flush();
        beats + 1
    }
}

/// A worker-local batcher that flushes to a shared [`Progress`] every
/// [`BATCH`] pairs (and on drop), keeping atomic traffic off the
/// per-pair path.
pub struct ProgressBatch<'a> {
    progress: &'a Progress,
    pending: u64,
}

impl<'a> ProgressBatch<'a> {
    /// A batcher feeding `progress`.
    pub fn new(progress: &'a Progress) -> ProgressBatch<'a> {
        ProgressBatch {
            progress,
            pending: 0,
        }
    }

    /// Counts one pair, flushing when the batch fills.
    #[inline]
    pub fn tick(&mut self) {
        self.pending += 1;
        if self.pending >= BATCH {
            self.progress.add(self.pending);
            self.pending = 0;
        }
    }
}

impl Drop for ProgressBatch<'_> {
    fn drop(&mut self) {
        if self.pending > 0 {
            self.progress.add(self.pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_up() {
        let p = Progress::new(100);
        p.add(40);
        p.add(2);
        assert_eq!(p.done(), 42);
        assert_eq!(p.total(), 100);
        let line = p.report_line();
        assert!(line.contains("42/100"), "{line}");
        assert!(line.contains("pairs/sec"), "{line}");
    }

    #[test]
    fn unknown_total_line_has_no_percentage() {
        let p = Progress::new(0);
        p.add(7);
        let line = p.report_line();
        assert!(line.contains("7 pairs"), "{line}");
        assert!(!line.contains('%'), "{line}");
    }

    #[test]
    fn utilization_appears_once_workers_report_busy_time() {
        let p = Progress::new(0);
        assert!(p.utilization().is_none());
        p.set_workers(2);
        std::thread::sleep(Duration::from_millis(5));
        let elapsed = Duration::from_millis(5).as_nanos() as u64;
        // Both workers fully busy for the measured window (and then
        // some, to absorb scheduling slop): clamps to 100%.
        p.add_busy(4 * elapsed);
        let util = p.utilization().expect("workers declared");
        assert!(util > 0.5, "{util}");
        let line = p.report_line();
        assert!(line.contains("2 workers"), "{line}");
        assert!(line.contains("% busy"), "{line}");
    }

    #[test]
    fn batcher_flushes_on_fill_and_drop() {
        let p = Progress::new(0);
        {
            let mut b = ProgressBatch::new(&p);
            for _ in 0..BATCH + 10 {
                b.tick();
            }
            assert_eq!(p.done(), BATCH);
        }
        assert_eq!(p.done(), BATCH + 10);
    }

    #[test]
    fn reporter_exits_on_stop() {
        let p = Progress::new(10);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| p.run_reporter(&stop, Duration::from_millis(10)));
            p.add(10);
            std::thread::sleep(Duration::from_millis(60));
            stop.store(true, Ordering::Release);
            let beats = handle.join().expect("reporter panicked");
            assert!(beats >= 1);
        });
    }
}
