//! The flight recorder: per-worker span rings and Chrome trace export.
//!
//! The aggregate stage histograms in [`crate::profile`] say *how much*
//! time each pipeline stage took; they cannot say *when*, or on which
//! worker, or whether one skewed tile task serialized the whole join.
//! The flight recorder answers those questions: each streaming worker
//! owns a [`SpanRing`] — a fixed-capacity ring buffer of
//! [`SpanRecord`]s, one per tile task — and the executor assembles the
//! rings into a [`JoinTrace`] after the parallel region ends.
//!
//! Design constraints, in order:
//!
//! - **Zero cost when disabled.** No ring is allocated and no span is
//!   recorded unless tracing was requested; the per-task overhead of an
//!   untraced run is a branch on an `Option`.
//! - **Lock-free.** Each ring is owned by exactly one worker thread for
//!   the lifetime of the parallel region, so recording a span is a few
//!   plain stores — no atomics, no locks, no sharing until the scoped
//!   threads join.
//! - **Bounded memory.** The ring overwrites its oldest span once full
//!   (keeping the newest, which is what you want when a long join dies
//!   near the end) and counts what it dropped.
//!
//! [`JoinTrace::to_chrome_json`] renders the Chrome trace-event format
//! (`chrome://tracing`, <https://ui.perfetto.dev>): one `"X"` complete
//! event per task span on a `tid` per worker, plus a synthesized
//! trailing `idle` span from each worker's last task to the end of the
//! parallel region so skew is directly visible as idle tails.

use crate::json::Json;
use crate::profile::Stage;

/// Spans kept per worker before the ring starts overwriting. At 80
/// bytes per span this bounds a worker's recorder at ~5 MiB.
pub const DEFAULT_TRACE_SPANS: usize = 64 * 1024;

/// One tile-task span, timestamped relative to the trace epoch (the
/// start of the parallel region).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global task index (claim order, not execution order).
    pub task: u32,
    /// Tile the task draws from.
    pub tile: u32,
    /// Split depth: 0 for a whole-tile task, 1 for a slice of a dense
    /// tile that skew-splitting divided (the scheme splits one level).
    pub split_depth: u8,
    /// Nanoseconds from the trace epoch to the task claim.
    pub start_ns: u64,
    /// Task duration: candidate generation plus pipeline processing.
    pub dur_ns: u64,
    /// Candidate pairs the task generated.
    pub pairs: u64,
    /// Links (qualifying pairs) the task emitted.
    pub links: u64,
    /// Per-stage nanos spent inside the task, indexed by
    /// [`Stage`] (zeros when the profiler was disabled).
    pub stage_ns: [u64; 3],
}

/// A fixed-capacity ring of spans, newest-wins on overflow. Owned by
/// one worker; never shared while recording.
#[derive(Debug)]
pub struct SpanRing {
    buf: Vec<SpanRecord>,
    cap: usize,
    /// Oldest slot once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl SpanRing {
    /// An empty ring holding at most `cap` spans (`cap` ≥ 1).
    pub fn new(cap: usize) -> SpanRing {
        SpanRing {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Records a span, overwriting the oldest once full.
    pub fn push(&mut self, span: SpanRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained spans in recording order (oldest first).
    pub fn into_spans(mut self) -> Vec<SpanRecord> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

/// One worker's slice of the trace.
#[derive(Clone, Debug)]
pub struct WorkerTrace {
    /// Worker index (the Chrome `tid`).
    pub worker: usize,
    /// Nanoseconds from the epoch to the worker entering its claim loop.
    pub start_ns: u64,
    /// Nanoseconds from the epoch to the worker leaving its claim loop.
    pub end_ns: u64,
    /// Spans overwritten in the ring (0 unless the join outran it).
    pub dropped: u64,
    /// Retained task spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

/// The assembled flight-recorder output for one join.
#[derive(Clone, Debug)]
pub struct JoinTrace {
    /// Wall time of the parallel region, epoch to last worker joined.
    pub wall_ns: u64,
    pub workers: Vec<WorkerTrace>,
}

impl JoinTrace {
    /// Fraction of the region wall time each worker's spans account
    /// for, counting task spans plus the spawn/idle spans the export
    /// synthesizes. The uncovered remainder is claim overhead.
    pub fn span_coverage(&self) -> Vec<f64> {
        self.workers
            .iter()
            .map(|w| {
                let busy: u64 = w.spans.iter().map(|s| s.dur_ns).sum();
                let idle = self.wall_ns.saturating_sub(w.end_ns) + w.start_ns;
                if self.wall_ns == 0 {
                    1.0
                } else {
                    (busy + idle) as f64 / self.wall_ns as f64
                }
            })
            .collect()
    }

    /// Renders the Chrome trace-event JSON document (Perfetto-loadable):
    /// `{"traceEvents": [...]}` with timestamps in microseconds. Spawn
    /// latency and idle tails are synthesized as `sched`-category spans
    /// so scheduling skew is directly visible per worker.
    pub fn to_chrome_json(&self) -> Json {
        let us = |ns: u64| Json::F64(ns as f64 / 1000.0);
        let mut events = Vec::new();
        for w in &self.workers {
            let tid = Json::U64(w.worker as u64);
            events.push(Json::object([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::U64(1)),
                ("tid", tid.clone()),
                (
                    "args",
                    Json::object([("name", Json::str(format!("worker-{}", w.worker)))]),
                ),
            ]));
            // Thread spawn latency: the gap between the epoch and this
            // worker entering its claim loop.
            if w.start_ns > 0 {
                events.push(Json::object([
                    ("name", Json::str("spawn")),
                    ("cat", Json::str("sched")),
                    ("ph", Json::str("X")),
                    ("ts", us(0)),
                    ("dur", us(w.start_ns)),
                    ("pid", Json::U64(1)),
                    ("tid", tid.clone()),
                    ("args", Json::object([])),
                ]));
            }
            for s in &w.spans {
                let mut args = Json::object([
                    ("task", Json::U64(s.task as u64)),
                    ("tile", Json::U64(s.tile as u64)),
                    ("split_depth", Json::U64(s.split_depth as u64)),
                    ("pairs", Json::U64(s.pairs)),
                    ("links", Json::U64(s.links)),
                ]);
                for stage in Stage::ALL {
                    args.push(
                        &format!("{}_ns", stage.name()),
                        Json::U64(s.stage_ns[stage as usize]),
                    );
                }
                events.push(Json::object([
                    ("name", Json::str("tile-task")),
                    ("cat", Json::str("join")),
                    ("ph", Json::str("X")),
                    ("ts", us(s.start_ns)),
                    ("dur", us(s.dur_ns)),
                    ("pid", Json::U64(1)),
                    ("tid", tid.clone()),
                    ("args", args),
                ]));
            }
            // A worker that ran out of tasks before the region ended
            // sat idle in the tail; make that visible.
            if self.wall_ns > w.end_ns {
                events.push(Json::object([
                    ("name", Json::str("idle")),
                    ("cat", Json::str("sched")),
                    ("ph", Json::str("X")),
                    ("ts", us(w.end_ns)),
                    ("dur", us(self.wall_ns - w.end_ns)),
                    ("pid", Json::U64(1)),
                    ("tid", tid.clone()),
                    (
                        "args",
                        Json::object([("dropped_spans", Json::U64(w.dropped))]),
                    ),
                ]));
            }
        }
        Json::object([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task: u32) -> SpanRecord {
        SpanRecord {
            task,
            tile: task / 4,
            start_ns: task as u64 * 1000,
            dur_ns: 900,
            pairs: 10,
            links: 1,
            ..SpanRecord::default()
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let mut ring = SpanRing::new(8);
        for t in 0..5 {
            ring.push(span(t));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let tasks: Vec<u32> = ring.into_spans().iter().map(|s| s.task).collect();
        assert_eq!(tasks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraparound_keeps_newest_spans_in_order() {
        let mut ring = SpanRing::new(4);
        for t in 0..10 {
            ring.push(span(t));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let tasks: Vec<u32> = ring.into_spans().iter().map(|s| s.task).collect();
        assert_eq!(tasks, vec![6, 7, 8, 9], "newest spans survive, in order");
    }

    fn sample_trace() -> JoinTrace {
        JoinTrace {
            wall_ns: 10_000,
            workers: vec![
                WorkerTrace {
                    worker: 0,
                    start_ns: 0,
                    end_ns: 10_000,
                    dropped: 0,
                    spans: (0..10).map(span).collect(),
                },
                WorkerTrace {
                    worker: 1,
                    start_ns: 0,
                    end_ns: 5_000,
                    dropped: 2,
                    spans: (0..5).map(span).collect(),
                },
            ],
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_required_keys() {
        let doc = sample_trace().to_chrome_json();
        let parsed = Json::parse(&doc.render()).expect("trace JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 2 metadata + 15 task spans + 1 idle span (worker 1 only).
        assert_eq!(events.len(), 18);
        for e in events {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
            }
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(matches!(ph, "X" | "M"), "unexpected phase {ph}");
            if ph == "X" {
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
            }
        }
        let idle = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("idle"))
            .count();
        assert_eq!(idle, 1, "only the early-finishing worker gets an idle span");
    }

    #[test]
    fn span_coverage_counts_busy_plus_trailing_idle() {
        let cov = sample_trace().span_coverage();
        // Worker 0: 10 × 900 ns busy over 10 µs = 0.90.
        assert!((cov[0] - 0.90).abs() < 1e-9, "{cov:?}");
        // Worker 1: 5 × 900 ns busy + 5 µs idle tail = 0.95.
        assert!((cov[1] - 0.95).abs() < 1e-9, "{cov:?}");
    }
}
