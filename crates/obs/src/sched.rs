//! Scheduler contention metrics for the streaming executor.
//!
//! The streaming join hands out tile tasks from a shared atomic
//! counter; workers never block mid-run, so all lost time is either
//! claim overhead or the idle tail a worker spends waiting for the
//! slowest sibling to finish. These types record, per worker, how much
//! of the parallel region was busy versus idle, how many tasks it
//! claimed, and how many of those were skew-splits — enough to tell a
//! skewed-tile problem ("one worker busy 4× longer than the mean")
//! from an allocator or memory-bandwidth problem ("everyone equally
//! busy, nobody faster with more threads").

use crate::json::Json;

/// One worker's tallies for a single join.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSched {
    /// Worker index.
    pub worker: usize,
    /// Nanoseconds spent executing claimed tasks.
    pub busy_ns: u64,
    /// Tasks claimed and run.
    pub tasks: u64,
    /// ... of which were slices of a skew-split dense tile.
    pub splits: u64,
    /// Candidate pairs generated.
    pub pairs: u64,
    /// Links emitted.
    pub links: u64,
}

impl WorkerSched {
    /// A zeroed tally for `worker`.
    pub fn new(worker: usize) -> WorkerSched {
        WorkerSched {
            worker,
            ..WorkerSched::default()
        }
    }
}

/// The assembled per-join scheduler report.
#[derive(Clone, Debug, Default)]
pub struct SchedReport {
    /// Wall time of the parallel region.
    pub wall_ns: u64,
    pub workers: Vec<WorkerSched>,
}

impl SchedReport {
    /// A report over `workers` for a region that took `wall_ns`.
    pub fn new(wall_ns: u64, workers: Vec<WorkerSched>) -> SchedReport {
        SchedReport { wall_ns, workers }
    }

    /// A worker's idle time: region wall minus its busy time.
    pub fn idle_ns(&self, w: &WorkerSched) -> u64 {
        self.wall_ns.saturating_sub(w.busy_ns)
    }

    /// Mean busy fraction across workers (1.0 = perfectly packed).
    pub fn utilization(&self) -> f64 {
        let denom = self.wall_ns.saturating_mul(self.workers.len() as u64);
        if denom == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        busy as f64 / denom as f64
    }

    /// Max worker busy time over the mean: 1.0 is perfect balance,
    /// values near the worker count mean one worker did all the work.
    pub fn imbalance_ratio(&self) -> f64 {
        let n = self.workers.len() as u64;
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        if n == 0 || busy == 0 {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
        max as f64 / (busy as f64 / n as f64)
    }

    /// Total skew-split tasks across workers.
    pub fn splits(&self) -> u64 {
        self.workers.iter().map(|w| w.splits).sum()
    }

    /// The `sched` block of `stj-join-report/v1`.
    pub fn to_json(&self) -> Json {
        let mut workers = Vec::new();
        for w in &self.workers {
            workers.push(Json::object([
                ("worker", Json::U64(w.worker as u64)),
                ("busy_ns", Json::U64(w.busy_ns)),
                ("idle_ns", Json::U64(self.idle_ns(w))),
                ("tasks", Json::U64(w.tasks)),
                ("splits", Json::U64(w.splits)),
                ("pairs", Json::U64(w.pairs)),
                ("links", Json::U64(w.links)),
            ]));
        }
        Json::object([
            ("wall_ns", Json::U64(self.wall_ns)),
            ("utilization", Json::F64(self.utilization())),
            ("imbalance_ratio", Json::F64(self.imbalance_ratio())),
            ("splits", Json::U64(self.splits())),
            ("workers", Json::Arr(workers)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(i: usize, busy_ns: u64, tasks: u64) -> WorkerSched {
        WorkerSched {
            worker: i,
            busy_ns,
            tasks,
            splits: 0,
            pairs: tasks * 100,
            links: tasks,
        }
    }

    #[test]
    fn balanced_workers_have_unit_imbalance() {
        let r = SchedReport::new(1000, vec![worker(0, 900, 4), worker(1, 900, 4)]);
        assert!((r.imbalance_ratio() - 1.0).abs() < 1e-9);
        assert!((r.utilization() - 0.9).abs() < 1e-9);
        assert_eq!(r.idle_ns(&r.workers[0]), 100);
    }

    #[test]
    fn skew_shows_up_as_imbalance() {
        let r = SchedReport::new(1000, vec![worker(0, 1000, 1), worker(1, 200, 9)]);
        // max 1000 over mean 600.
        assert!((r.imbalance_ratio() - 1000.0 / 600.0).abs() < 1e-9);
        assert!(r.utilization() < 0.61);
    }

    #[test]
    fn degenerate_reports_stay_finite() {
        let empty = SchedReport::new(0, Vec::new());
        assert_eq!(empty.utilization(), 0.0);
        assert_eq!(empty.imbalance_ratio(), 1.0);
        let text = empty.to_json().render();
        assert!(text.contains("imbalance_ratio"), "{text}");
    }

    #[test]
    fn json_carries_per_worker_rows() {
        let r = SchedReport::new(1000, vec![worker(0, 700, 3)]);
        let doc = Json::parse(&r.to_json().render()).unwrap();
        let rows = doc.get("workers").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("idle_ns").and_then(Json::as_u64), Some(300));
        assert_eq!(rows[0].get("tasks").and_then(Json::as_u64), Some(3));
    }
}
