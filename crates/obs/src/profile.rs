//! Per-stage join profiling.
//!
//! The *find relation* pipeline decides each candidate pair in one of
//! three stages — MBR classification, intermediate raster filter,
//! DE-9IM refinement — and the paper's whole argument is the cost
//! breakdown across them (Figures 7–9, Tables 3/5). A [`Profiler`]
//! observes a pipeline run at exactly that granularity: per-stage
//! invocation latencies ([`Histogram`]s), per-stage decision counts,
//! and a per-MBR-class breakdown of pair volume and refinement rate.
//!
//! Profiling is **statically dispatched**: pipeline entry points are
//! generic over `P: Profiler`, and the [`Disabled`] implementation is a
//! zero-sized type whose methods are empty `#[inline]` bodies with a
//! `()` timer — the uninstrumented hot path monomorphizes to exactly
//! the code it was before profiling existed. [`Recorder`] is the live
//! implementation; each worker thread owns one (no locks, no atomics on
//! the pair path) and the per-thread [`JoinProfile`]s are merged after
//! the join, giving aggregates identical to a sequential run.

use crate::hist::Histogram;
use crate::json::Json;
use std::time::Instant;

/// The three cost stages of the find-relation pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// MBR classification (always runs; decides disjoint/cross pairs).
    MbrClassify = 0,
    /// Intermediate raster filter over the `P`/`C` interval lists.
    IntermediateFilter = 1,
    /// DE-9IM refinement of undetermined pairs.
    Refinement = 2,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 3] = [
        Stage::MbrClassify,
        Stage::IntermediateFilter,
        Stage::Refinement,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Stage::MbrClassify => "mbr_classify",
            Stage::IntermediateFilter => "intermediate_filter",
            Stage::Refinement => "refinement",
        }
    }
}

/// Slots reserved for MBR-class counters. The pipeline currently uses
/// six classes (Figure 4); extra slots keep the layout stable if more
/// classifications appear.
pub const MAX_MBR_CLASSES: usize = 8;

/// Latency histogram plus decision count for one stage.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageStats {
    /// Latencies of every invocation of this stage, in nanoseconds.
    pub latency: Histogram,
    /// Pairs whose relation this stage decided.
    pub decided: u64,
}

impl StageStats {
    fn merge(&mut self, other: &StageStats) {
        self.latency.merge(&other.latency);
        self.decided += other.decided;
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("decided", Json::U64(self.decided)),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// Pair volume and refinement count for one MBR class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Candidate pairs classified into this MBR class.
    pub pairs: u64,
    /// Of those, pairs that fell through to DE-9IM refinement.
    pub refined: u64,
}

/// The merged observation of one (or part of one) join run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JoinProfile {
    /// Per-stage latency histograms and decision counts, indexed by
    /// [`Stage`] discriminant.
    pub stages: [StageStats; 3],
    /// Per-MBR-class pair statistics, indexed by the class id the
    /// pipeline supplies (`stj-index`'s `MbrRelation` discriminant).
    pub classes: [ClassStats; MAX_MBR_CLASSES],
}

impl JoinProfile {
    /// An empty profile.
    pub fn new() -> JoinProfile {
        JoinProfile::default()
    }

    /// Stats for one stage.
    pub fn stage(&self, stage: Stage) -> &StageStats {
        &self.stages[stage as usize]
    }

    /// Merges another profile (e.g. a worker thread's) into this one.
    /// Merging is associative and commutative, so any merge tree over
    /// the same per-pair observations yields identical totals.
    pub fn merge(&mut self, other: &JoinProfile) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.pairs += b.pairs;
            a.refined += b.refined;
        }
    }

    /// Total pairs decided across all stages.
    pub fn pairs_decided(&self) -> u64 {
        self.stages.iter().map(|s| s.decided).sum()
    }

    /// JSON rendering: `{"stages": {...}, "mbr_classes": {...}}`.
    /// `class_labels[i]` names class id `i`; classes with no pairs are
    /// omitted, as are label-less slots.
    pub fn to_json(&self, class_labels: &[&str]) -> Json {
        let stages = Json::Obj(
            Stage::ALL
                .iter()
                .map(|&s| (s.name().to_string(), self.stage(s).to_json()))
                .collect(),
        );
        let classes = Json::Obj(
            self.classes
                .iter()
                .enumerate()
                .filter(|&(i, c)| c.pairs > 0 && i < class_labels.len())
                .map(|(i, c)| {
                    (
                        class_labels[i].to_string(),
                        Json::object([
                            ("pairs", Json::U64(c.pairs)),
                            ("refined", Json::U64(c.refined)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::object([("stages", stages), ("mbr_classes", classes)])
    }
}

/// Observation interface the pipeline entry points are generic over.
///
/// All methods are expected to be `#[inline]`-trivial when
/// `ENABLED == false` so the disabled path compiles to nothing.
pub trait Profiler {
    /// Whether this implementation records anything. Lets call sites
    /// skip non-trivial setup (e.g. label formatting) statically.
    const ENABLED: bool;

    /// Opaque start-of-stage token ( `()` when disabled, an [`Instant`]
    /// when recording).
    type Timer: Copy;

    /// Marks the start of a stage invocation.
    fn start(&mut self) -> Self::Timer;

    /// Records the latency of a stage invocation begun at `timer`.
    fn stage(&mut self, stage: Stage, timer: Self::Timer);

    /// Records that `stage` decided the current pair.
    fn decided(&mut self, stage: Stage);

    /// Records the current pair's MBR class and whether it ultimately
    /// needed refinement.
    fn mbr_class(&mut self, class: usize, refined: bool);

    /// Running per-stage latency totals in nanoseconds (all zeros for
    /// disabled implementations). The flight recorder snapshots this
    /// around each tile task to attribute stage time to spans.
    fn stage_ns_totals(&self) -> [u64; 3] {
        [0; 3]
    }

    /// Consumes the profiler, yielding its collected profile (`None`
    /// for disabled implementations).
    fn finish(self) -> Option<JoinProfile>
    where
        Self: Sized;
}

/// The zero-cost no-op profiler: statically disabled, so profiled entry
/// points monomorphize to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default)]
pub struct Disabled;

impl Profiler for Disabled {
    const ENABLED: bool = false;
    type Timer = ();

    #[inline(always)]
    fn start(&mut self) {}

    #[inline(always)]
    fn stage(&mut self, _stage: Stage, _timer: ()) {}

    #[inline(always)]
    fn decided(&mut self, _stage: Stage) {}

    #[inline(always)]
    fn mbr_class(&mut self, _class: usize, _refined: bool) {}

    #[inline(always)]
    fn finish(self) -> Option<JoinProfile> {
        None
    }
}

/// The recording profiler: one per worker thread, merged afterwards.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    /// The observations so far.
    pub profile: JoinProfile,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Consumes the recorder, yielding its profile.
    pub fn into_profile(self) -> JoinProfile {
        self.profile
    }
}

impl Profiler for Recorder {
    const ENABLED: bool = true;
    type Timer = Instant;

    #[inline]
    fn start(&mut self) -> Instant {
        Instant::now()
    }

    #[inline]
    fn stage(&mut self, stage: Stage, timer: Instant) {
        let ns = timer.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.profile.stages[stage as usize].latency.record(ns);
    }

    #[inline]
    fn decided(&mut self, stage: Stage) {
        self.profile.stages[stage as usize].decided += 1;
    }

    #[inline]
    fn mbr_class(&mut self, class: usize, refined: bool) {
        let slot = &mut self.profile.classes[class.min(MAX_MBR_CLASSES - 1)];
        slot.pairs += 1;
        slot.refined += u64::from(refined);
    }

    fn stage_ns_totals(&self) -> [u64; 3] {
        let mut totals = [0u64; 3];
        for (i, t) in totals.iter_mut().enumerate() {
            *t = self.profile.stages[i].latency.sum();
        }
        totals
    }

    #[inline]
    fn finish(self) -> Option<JoinProfile> {
        Some(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder(decide_everything_at: Stage, pairs: u64) -> Recorder {
        let mut r = Recorder::new();
        for i in 0..pairs {
            let t = r.start();
            r.stage(Stage::MbrClassify, t);
            r.decided(decide_everything_at);
            r.mbr_class((i % 3) as usize, decide_everything_at == Stage::Refinement);
        }
        r
    }

    #[test]
    fn recorder_counts_decisions_and_classes() {
        let r = sample_recorder(Stage::IntermediateFilter, 9);
        let p = &r.profile;
        assert_eq!(p.stage(Stage::IntermediateFilter).decided, 9);
        assert_eq!(p.stage(Stage::Refinement).decided, 0);
        assert_eq!(p.stage(Stage::MbrClassify).latency.count(), 9);
        assert_eq!(p.classes[0].pairs, 3);
        assert_eq!(p.classes[1].pairs, 3);
        assert_eq!(p.classes[2].pairs, 3);
        assert_eq!(p.classes[0].refined, 0);
        assert_eq!(p.pairs_decided(), 9);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let a = sample_recorder(Stage::MbrClassify, 5).into_profile();
        let b = sample_recorder(Stage::Refinement, 7).into_profile();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Histograms record real (differing) latencies, but counts and
        // totals must match in both merge orders.
        assert_eq!(ab.pairs_decided(), 12);
        assert_eq!(ba.pairs_decided(), 12);
        for s in Stage::ALL {
            assert_eq!(ab.stage(s).decided, ba.stage(s).decided);
            assert_eq!(ab.stage(s).latency.count(), ba.stage(s).latency.count());
        }
        assert_eq!(ab.classes, ba.classes);
    }

    #[test]
    // The unit binding is the point: exercise the API exactly as the
    // generic pipeline does, where `Timer` happens to be `()`.
    #[allow(clippy::let_unit_value)]
    fn disabled_profiler_is_inert() {
        let mut p = Disabled;
        let t = p.start();
        p.stage(Stage::Refinement, t);
        p.decided(Stage::Refinement);
        p.mbr_class(2, true);
        const { assert!(!Disabled::ENABLED) };
        assert_eq!(std::mem::size_of::<Disabled>(), 0);
    }

    #[test]
    fn out_of_range_class_is_clamped() {
        let mut r = Recorder::new();
        r.mbr_class(99, true);
        assert_eq!(r.profile.classes[MAX_MBR_CLASSES - 1].pairs, 1);
    }

    #[test]
    fn json_includes_only_populated_labelled_classes() {
        let r = sample_recorder(Stage::MbrClassify, 3);
        let doc = r.profile.to_json(&["disjoint", "equal", "inside"]).render();
        assert!(doc.contains("\"mbr_classify\""), "{doc}");
        assert!(doc.contains("\"intermediate_filter\""), "{doc}");
        assert!(doc.contains("\"refinement\""), "{doc}");
        assert!(doc.contains("\"disjoint\""), "{doc}");
        assert!(doc.contains("\"p99_ns\""), "{doc}");
    }
}
