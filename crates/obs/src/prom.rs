//! Prometheus text-exposition-format writer.
//!
//! Renders the `stj-obs` service primitives ([`crate::metrics`],
//! [`crate::hist::Histogram`]) in the Prometheus text format
//! (version 0.0.4): `# HELP`/`# TYPE` headers, one `name{labels} value`
//! sample per line, histograms as cumulative `_bucket{le=...}` series
//! plus `_sum` and `_count`. This backs `stj serve`'s `GET /metrics`.
//!
//! Like everything in this crate it is dependency-free; the writer is
//! a thin push API over a `String` and the caller decides names,
//! labels and help strings. Histogram `le` bounds are the upper edges
//! of the log2 buckets that actually hold samples — Prometheus only
//! requires that bounds be sorted and cumulative, not that every
//! series use the same set.

use crate::hist::Histogram;
use std::fmt::Write as _;

/// Content-Type for HTTP responses carrying this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// An append-only builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    /// Metric families already given HELP/TYPE headers (a family may
    /// emit several label permutations).
    announced: Vec<String>,
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    fn announce(&mut self, name: &str, help: &str, kind: &str) {
        if self.announced.iter().any(|n| n == name) {
            return;
        }
        self.announced.push(name.to_string());
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = writeln!(self.out, "{name}{} {value}", render_labels(labels));
    }

    /// A monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.announce(name, help, "counter");
        self.sample(name, labels, value as f64);
    }

    /// A gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.announce(name, help, "gauge");
        self.sample(name, labels, value);
    }

    /// A full histogram family: cumulative `_bucket` series over the
    /// non-empty log2 buckets, a `+Inf` bucket, `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.announce(name, help, "histogram");
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (lo, n) in h.nonzero_buckets() {
            cumulative += n;
            let (_, hi) = Histogram::bucket_bounds(Histogram::bucket_of(lo));
            let le = format!("{hi}");
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", &le));
            self.sample(&bucket_name, &ls, cumulative as f64);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&bucket_name, &ls, h.count() as f64);
        self.sample(&format!("{name}_sum"), labels, h.sum() as f64);
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers_and_labels() {
        let mut w = PromWriter::new();
        w.counter("stj_requests_total", "Requests handled.", &[], 7);
        w.gauge(
            "stj_in_flight",
            "Now processing.",
            &[("proto", "http")],
            2.0,
        );
        let text = w.finish();
        assert!(text.contains("# HELP stj_requests_total Requests handled.\n"));
        assert!(text.contains("# TYPE stj_requests_total counter\n"));
        assert!(text.contains("\nstj_requests_total 7\n") || text.starts_with("# HELP"));
        assert!(text.contains("stj_in_flight{proto=\"http\"} 2\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 900, 1000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.histogram("stj_lat_ns", "Latency.", &[("endpoint", "relate")], &h);
        let text = w.finish();
        assert!(text.contains("# TYPE stj_lat_ns histogram\n"), "{text}");
        assert!(
            text.contains("stj_lat_ns_bucket{endpoint=\"relate\",le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("stj_lat_ns_bucket{endpoint=\"relate\",le=\"3\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("stj_lat_ns_bucket{endpoint=\"relate\",le=\"+Inf\"} 5\n"),
            "{text}"
        );
        assert!(
            text.contains("stj_lat_ns_sum{endpoint=\"relate\"} 1905\n"),
            "{text}"
        );
        assert!(
            text.contains("stj_lat_ns_count{endpoint=\"relate\"} 5\n"),
            "{text}"
        );
    }

    #[test]
    fn repeated_families_announce_once() {
        let mut w = PromWriter::new();
        w.counter("c_total", "C.", &[("k", "a")], 1);
        w.counter("c_total", "C.", &[("k", "b")], 2);
        let text = w.finish();
        assert_eq!(text.matches("# HELP c_total").count(), 1, "{text}");
        assert!(text.contains("c_total{k=\"a\"} 1\n"));
        assert!(text.contains("c_total{k=\"b\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.gauge("g", "G.", &[("path", "a\"b\\c\nd")], 1.0);
        let text = w.finish();
        assert!(text.contains("g{path=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }
}
