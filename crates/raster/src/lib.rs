//! `stj-raster`: raster interval approximations (APRIL) for spatial
//! objects.
//!
//! Implements the substrate of the paper's intermediate filter (Sec 2.3):
//!
//! - [`hilbert`]: Hilbert curve cell enumeration (order ≤ 16, matching
//!   the paper's `2^16 × 2^16` grids);
//! - [`grid::Grid`]: the shared per-scenario raster grid;
//! - [`intervals::IntervalList`]: normalized interval lists with the four
//!   linear merge-join relations of Sec 3.2 (`overlap`, `match`,
//!   `inside`, `contains`);
//! - [`mod@rasterize`]: quadtree-descent rasterization emitting `P`/`C`
//!   interval lists in time proportional to the boundary footprint;
//! - [`april::AprilApprox`]: the per-object `(P, C)` approximation pair.

pub mod april;
pub mod grid;
pub mod hilbert;
pub mod intervals;
pub mod rasterize;

pub use april::{AprilApprox, AprilRef};
pub use grid::Grid;
pub use intervals::{
    ivs_contains, ivs_inside, ivs_matches, ivs_overlaps, IntervalList, IntervalsRef,
};
pub use rasterize::rasterize;
