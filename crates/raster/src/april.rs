//! The APRIL object approximation: a Progressive and a Conservative
//! interval list per object.

use crate::grid::Grid;
use crate::intervals::{IntervalList, IntervalsRef};
use crate::rasterize::rasterize;
use stj_geom::Polygon;

/// A borrowed, `Copy`-able APRIL approximation: two interval-slice views
/// (progressive + conservative) carved out of an owned [`AprilApprox`] or
/// a columnar interval pool. The intermediate-filter relations run on
/// this type so both representations share one code path.
#[derive(Clone, Copy, Debug)]
pub struct AprilRef<'a> {
    /// Progressive list (full cells).
    pub p: IntervalsRef<'a>,
    /// Conservative list (full + partial cells).
    pub c: IntervalsRef<'a>,
}

/// The APRIL approximation of one object on a shared [`Grid`].
///
/// - `p` (*Progressive*): intervals over cells lying **entirely in the
///   object's interior** — a lower approximation; any cell of `p` proves
///   interior material.
/// - `c` (*Conservative*): intervals over **all cells the object
///   touches** — an upper approximation; a cell outside `c` proves
///   absence.
///
/// Invariant: `p ⊆ c` (cell-set inclusion).
#[derive(Clone, Debug, PartialEq)]
pub struct AprilApprox {
    /// Progressive list (full cells).
    pub p: IntervalList,
    /// Conservative list (full + partial cells).
    pub c: IntervalList,
}

impl AprilApprox {
    /// Builds the approximation of `poly` on `grid`.
    ///
    /// This is the paper's per-object preprocessing step — executed once
    /// per object, off the measured join path.
    pub fn build(poly: &Polygon, grid: &Grid) -> AprilApprox {
        let (p, c) = rasterize(poly, grid);
        debug_assert!(p.inside(&c), "progressive list must be within conservative");
        AprilApprox { p, c }
    }

    /// Builds the approximation of `poly` on `grid` and caps it at
    /// `max_intervals` intervals per list in one call.
    ///
    /// This is the entry point for *ad-hoc probe* polygons — e.g. an
    /// online `relate` query rasterizing a request geometry once and
    /// reusing the approximation across every candidate of the probe —
    /// where the polygon is not part of a preprocessed dataset but must
    /// receive exactly the same treatment (same rasterization, same
    /// budget coarsening) as stored objects so filter decisions agree
    /// with the offline pipeline bit-for-bit.
    pub fn build_capped(poly: &Polygon, grid: &Grid, max_intervals: usize) -> AprilApprox {
        AprilApprox::build(poly, grid).with_max_intervals(max_intervals)
    }

    /// An approximation with empty lists (used for placeholder slots in
    /// tests; a real object always has a non-empty `c`).
    pub fn empty() -> AprilApprox {
        AprilApprox {
            p: IntervalList::new(),
            c: IntervalList::new(),
        }
    }

    /// Caps the approximation at `max_intervals` intervals per list by
    /// progressively coarsening both lists (APRIL-style compression).
    ///
    /// Each coarsening step snaps `C` outward and `P` inward to
    /// power-of-two-aligned Hilbert ranges, so both stay *sound*
    /// (`C` conservative, `P` progressive) with strictly fewer
    /// intervals. Huge objects (counties, large parks) would otherwise
    /// carry tens of thousands of intervals, making the intermediate
    /// filter's merge-joins as expensive as the refinement they exist to
    /// avoid.
    pub fn with_max_intervals(self, max_intervals: usize) -> AprilApprox {
        if self.c.len().max(self.p.len()) <= max_intervals {
            return self;
        }
        // Re-derive from the originals at each step so the erosion is
        // exactly one alignment of 2^bits, not a compounding of all
        // previous attempts.
        for bits in (2..=24).step_by(2) {
            let c = self.c.coarsen_conservative(bits);
            let p = self.p.coarsen_progressive(bits);
            if c.len().max(p.len()) <= max_intervals || bits == 24 {
                debug_assert!(p.inside(&c));
                return AprilApprox { p, c };
            }
        }
        unreachable!("loop always returns at bits == 24");
    }

    /// A borrowed [`AprilRef`] over both lists.
    #[inline]
    pub fn as_ref(&self) -> AprilRef<'_> {
        AprilRef {
            p: self.p.as_ref(),
            c: self.c.as_ref(),
        }
    }

    /// Serialized size in bytes of both lists (Table 2 accounting: each
    /// interval as two `u32` cell ids).
    pub fn serialized_bytes(&self) -> usize {
        self.p.serialized_bytes() + self.c.serialized_bytes()
    }

    /// Total interval count across both lists.
    pub fn num_intervals(&self) -> usize {
        self.p.len() + self.c.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stj_geom::Rect;

    fn grid() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 64.0, 64.0), 6)
    }

    #[test]
    fn build_square() {
        let g = grid();
        let poly = Polygon::rect(Rect::from_coords(10.0, 10.0, 30.0, 30.0));
        let a = AprilApprox::build(&poly, &g);
        assert!(!a.c.is_empty());
        assert!(!a.p.is_empty());
        assert!(a.p.inside(&a.c));
        assert!(a.p.num_cells() < a.c.num_cells());
        assert!(a.serialized_bytes() > 0);
        assert_eq!(a.num_intervals(), a.p.len() + a.c.len());
    }

    #[test]
    fn small_objects_have_empty_p() {
        // The paper's Sec 4.3 observation: tiny polygons produce few or no
        // full cells. A polygon within one cell has an empty P list.
        let g = grid();
        let poly = Polygon::from_coords(vec![(5.1, 5.1), (5.6, 5.1), (5.4, 5.8)], vec![]).unwrap();
        let a = AprilApprox::build(&poly, &g);
        assert!(a.p.is_empty());
        assert_eq!(a.c.num_cells(), 1);
    }

    #[test]
    fn disjoint_objects_have_disjoint_c() {
        let g = grid();
        let a = AprilApprox::build(&Polygon::rect(Rect::from_coords(1.0, 1.0, 8.0, 8.0)), &g);
        let b = AprilApprox::build(
            &Polygon::rect(Rect::from_coords(40.0, 40.0, 60.0, 60.0)),
            &g,
        );
        assert!(!a.c.overlaps(&b.c));
    }

    #[test]
    fn contained_object_lists_nest() {
        let g = grid();
        let outer = AprilApprox::build(&Polygon::rect(Rect::from_coords(8.0, 8.0, 56.0, 56.0)), &g);
        let inner = AprilApprox::build(
            &Polygon::rect(Rect::from_coords(24.0, 24.0, 40.0, 40.0)),
            &g,
        );
        // The inner object's conservative cells sit inside the outer
        // object's progressive cells (it is deep inside).
        assert!(inner.c.inside(&outer.p));
        assert!(inner.c.inside(&outer.c));
    }

    #[test]
    fn identical_objects_have_identical_lists() {
        let g = grid();
        let p1 = Polygon::from_coords(vec![(3.0, 3.0), (20.0, 5.0), (12.0, 25.0)], vec![]).unwrap();
        let p2 = p1.clone();
        let a1 = AprilApprox::build(&p1, &g);
        let a2 = AprilApprox::build(&p2, &g);
        assert!(a1.c.matches(&a2.c));
        assert!(a1.p.matches(&a2.p));
    }

    #[test]
    fn interval_budget_caps_and_stays_sound() {
        let g = Grid::new(Rect::from_coords(0.0, 0.0, 64.0, 64.0), 10);
        // A big polygon: thousands of boundary cells at order 10.
        let poly = Polygon::rect(Rect::from_coords(1.3, 1.3, 62.7, 62.7));
        let full = AprilApprox::build(&poly, &g);
        assert!(full.c.len() > 256);
        let capped = full.clone().with_max_intervals(256);
        assert!(capped.c.len() <= 256);
        assert!(capped.p.len() <= 256);
        // Soundness: capped C covers everything the full C covered;
        // capped P stays within the full P.
        assert!(full.c.inside(&capped.c));
        assert!(capped.p.inside(&full.p));
        assert!(capped.p.inside(&capped.c));
        // A generous budget leaves the approximation untouched.
        let untouched = full.clone().with_max_intervals(usize::MAX);
        assert_eq!(untouched, full);
    }

    #[test]
    fn edge_budgets_stay_sound() {
        // `build_capped` at the degenerate budgets: 0, 1, and a budget
        // at or above the natural interval count. Whatever the budget,
        // the capped lists must keep the APRIL contract — capped C
        // covers the full C, capped P stays within the full P, and
        // P ⊆ C — because an unsound probe approximation would flip
        // filter verdicts against the offline pipeline.
        let g = Grid::new(Rect::from_coords(0.0, 0.0, 64.0, 64.0), 10);
        let poly = Polygon::rect(Rect::from_coords(1.3, 1.3, 62.7, 62.7));
        let full = AprilApprox::build(&poly, &g);

        // Budget 0 cannot be met — a non-empty object always needs at
        // least one conservative interval — so coarsening bottoms out
        // at the maximum alignment instead of returning an empty
        // (unsound) C list.
        let zero = AprilApprox::build_capped(&poly, &g, 0);
        assert!(!zero.c.is_empty());
        assert!(full.c.inside(&zero.c));
        assert!(zero.p.inside(&full.p));
        assert!(zero.p.inside(&zero.c));

        // Budget 1: maximal coarsening that actually satisfies the cap.
        let one = AprilApprox::build_capped(&poly, &g, 1);
        assert!(one.c.len() <= 1);
        assert!(one.p.len() <= 1);
        assert!(full.c.inside(&one.c));
        assert!(one.p.inside(&full.p));
        assert!(one.p.inside(&one.c));

        // A budget at the natural interval count leaves the lists
        // untouched, as does anything larger.
        let natural = full.c.len().max(full.p.len());
        assert_eq!(AprilApprox::build_capped(&poly, &g, natural), full);
        assert_eq!(AprilApprox::build_capped(&poly, &g, natural + 1), full);
    }

    #[test]
    fn coarsening_directions() {
        use crate::intervals::IntervalList;
        let l = IntervalList::from_ranges(vec![(3, 9), (17, 18), (33, 47)]);
        let cons = l.coarsen_conservative(2); // align to multiples of 4
        assert_eq!(cons.intervals(), &[(0, 12), (16, 20), (32, 48)]);
        assert!(l.inside(&cons));
        let prog = l.coarsen_progressive(2);
        assert_eq!(prog.intervals(), &[(4, 8), (36, 44)]); // (17,18) vanishes
        assert!(prog.inside(&l));
    }

    #[test]
    fn empty_placeholder() {
        let e = AprilApprox::empty();
        assert!(e.p.is_empty() && e.c.is_empty());
        assert_eq!(e.serialized_bytes(), 0);
    }
}
