//! The global raster grid shared by all objects of a join scenario.

use stj_geom::{Point, Rect};

use crate::hilbert::MAX_ORDER;

/// A `2^order × 2^order` uniform grid over a rectangular data space.
///
/// All APRIL approximations taking part in one join must be built on the
/// *same* grid — interval ids are only comparable within a grid. The paper
/// uses independent `2^16 × 2^16` grids per data scenario (Sec 4.1);
/// [`Grid::new`] with `order = 16` reproduces that.
///
/// Cells are half-open `[x_i, x_{i+1}) × [y_j, y_{j+1})`, except that the
/// topmost/rightmost cells are closed so the grid exactly tiles the
/// (closed) data space.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    extent: Rect,
    order: u32,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Creates a grid of `2^order × 2^order` cells over `extent`.
    ///
    /// # Panics
    /// Panics if `order` is 0 or exceeds [`MAX_ORDER`], or if `extent` is
    /// empty/degenerate.
    pub fn new(extent: Rect, order: u32) -> Grid {
        assert!((1..=MAX_ORDER).contains(&order), "order must be in 1..=16");
        assert!(
            !extent.is_empty() && extent.width() > 0.0 && extent.height() > 0.0,
            "grid extent must have positive area"
        );
        let side = (1u64 << order) as f64;
        Grid {
            extent,
            order,
            cell_w: extent.width() / side,
            cell_h: extent.height() / side,
        }
    }

    /// The curve/grid order.
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Cells per side (`2^order`).
    #[inline]
    pub fn side(&self) -> u32 {
        1 << self.order
    }

    /// Total number of cells (`4^order`).
    #[inline]
    pub fn num_cells(&self) -> u64 {
        1u64 << (2 * self.order)
    }

    /// The grid's data-space extent.
    #[inline]
    pub fn extent(&self) -> &Rect {
        &self.extent
    }

    /// Cell width in data-space units.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_w
    }

    /// Cell height in data-space units.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_h
    }

    /// Column index of data-space `x` (clamped into range).
    #[inline]
    pub fn col_of(&self, x: f64) -> u32 {
        let c = ((x - self.extent.min.x) / self.cell_w) as i64;
        c.clamp(0, i64::from(self.side() - 1)) as u32
    }

    /// Row index of data-space `y` (clamped into range).
    #[inline]
    pub fn row_of(&self, y: f64) -> u32 {
        let r = ((y - self.extent.min.y) / self.cell_h) as i64;
        r.clamp(0, i64::from(self.side() - 1)) as u32
    }

    /// Cell `(col, row)` containing point `p` (clamped into the grid).
    #[inline]
    pub fn cell_of(&self, p: Point) -> (u32, u32) {
        (self.col_of(p.x), self.row_of(p.y))
    }

    /// Data-space rectangle of cell `(col, row)`.
    pub fn cell_rect(&self, col: u32, row: u32) -> Rect {
        debug_assert!(col < self.side() && row < self.side());
        let x0 = self.extent.min.x + f64::from(col) * self.cell_w;
        let y0 = self.extent.min.y + f64::from(row) * self.cell_h;
        Rect::from_coords(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// Data-space rectangle of the aligned block with lower-left cell
    /// `(col, row)` and side `2^level` cells.
    pub fn block_rect(&self, col: u32, row: u32, level: u32) -> Rect {
        let side = f64::from(1u32 << level);
        let x0 = self.extent.min.x + f64::from(col) * self.cell_w;
        let y0 = self.extent.min.y + f64::from(row) * self.cell_h;
        Rect::from_coords(x0, y0, x0 + side * self.cell_w, y0 + side * self.cell_h)
    }

    /// Center point of cell `(col, row)`.
    #[inline]
    pub fn cell_center(&self, col: u32, row: u32) -> Point {
        Point::new(
            self.extent.min.x + (f64::from(col) + 0.5) * self.cell_w,
            self.extent.min.y + (f64::from(row) + 0.5) * self.cell_h,
        )
    }

    /// Center-line ordinate of cell row `row`.
    #[inline]
    pub fn row_center_y(&self, row: u32) -> f64 {
        self.extent.min.y + (f64::from(row) + 0.5) * self.cell_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::new(Rect::from_coords(0.0, 0.0, 16.0, 16.0), 2) // 4x4 cells of 4x4 units
    }

    #[test]
    fn indexing_and_rects() {
        let g = grid4();
        assert_eq!(g.side(), 4);
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(3.999, 3.999)), (0, 0));
        assert_eq!(g.cell_of(Point::new(4.0, 4.0)), (1, 1));
        assert_eq!(g.cell_of(Point::new(15.999, 0.0)), (3, 0));
        // Clamping: points outside land in border cells.
        assert_eq!(g.cell_of(Point::new(-5.0, 99.0)), (0, 3));
        assert_eq!(g.cell_rect(1, 2), Rect::from_coords(4.0, 8.0, 8.0, 12.0));
        assert_eq!(g.cell_center(1, 2), Point::new(6.0, 10.0));
        assert_eq!(g.row_center_y(2), 10.0);
    }

    #[test]
    fn block_rect_spans_children() {
        let g = grid4();
        assert_eq!(g.block_rect(0, 0, 2), *g.extent());
        assert_eq!(
            g.block_rect(2, 2, 1),
            Rect::from_coords(8.0, 8.0, 16.0, 16.0)
        );
        assert_eq!(g.block_rect(3, 1, 0), g.cell_rect(3, 1));
    }

    #[test]
    fn non_square_extent() {
        let g = Grid::new(Rect::from_coords(-10.0, 0.0, 10.0, 5.0), 3);
        assert_eq!(g.cell_width(), 20.0 / 8.0);
        assert_eq!(g.cell_height(), 5.0 / 8.0);
        assert_eq!(g.cell_of(Point::new(-10.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(9.999, 4.999)), (7, 7));
    }

    #[test]
    #[should_panic]
    fn zero_area_extent_rejected() {
        let _ = Grid::new(Rect::from_coords(0.0, 0.0, 0.0, 10.0), 4);
    }

    #[test]
    #[should_panic]
    fn order_bounds_enforced() {
        let _ = Grid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 17);
    }
}
