//! Hilbert curve encoding for grid cells.
//!
//! APRIL (and Raster Intervals before it) enumerate grid cells along a
//! Hilbert space-filling curve so that spatially clustered cells form few,
//! long runs of consecutive ids — exactly what makes interval lists a
//! compact object approximation. A further property this crate's
//! rasterizer exploits: every quadtree-aligned `2^k × 2^k` block of cells
//! maps to one *contiguous* id range of length `4^k`.

/// Maximum supported curve order (grid of `2^16 × 2^16` cells, the
/// granularity used throughout the paper's experiments). Cell ids then
/// span `[0, 2^32)` and fit in a `u32`; this crate uses `u64` ids so that
/// exclusive interval ends cannot overflow.
pub const MAX_ORDER: u32 = 16;

/// Converts cell coordinates `(x, y)` to the Hilbert distance for a curve
/// of the given `order` (grid side `2^order`).
///
/// # Panics
/// Debug-panics if `order > MAX_ORDER` or a coordinate is out of range.
pub fn xy_to_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(x < (1 << order) && y < (1 << order));
    let mut d: u64 = 0;
    let mut s: u32 = 1 << (order - 1);
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * u64::from((3 * rx) ^ ry);
        rotate(s, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

/// Converts a Hilbert distance back to cell coordinates for a curve of
/// the given `order`.
pub fn d_to_xy(order: u32, d: u64) -> (u32, u32) {
    debug_assert!(order <= MAX_ORDER);
    debug_assert!(d < 1u64 << (2 * order));
    let mut t = d;
    let (mut x, mut y) = (0u32, 0u32);
    let mut s: u32 = 1;
    while s < (1 << order) {
        let rx = (1 & (t / 2)) as u32;
        let ry = (1 & (t ^ u64::from(rx))) as u32;
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Rotates/reflects a quadrant as required by the Hilbert recursion.
#[inline]
fn rotate(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// The contiguous Hilbert id range `[start, end)` covered by the aligned
/// block whose lower-left cell is `(x0, y0)` and whose side is
/// `2^level` cells.
///
/// `(x0, y0)` must be aligned to the block size. Alignment guarantees the
/// block equals one node of the Hilbert quadtree, hence a contiguous
/// range of length `4^level`.
pub fn block_range(order: u32, x0: u32, y0: u32, level: u32) -> (u64, u64) {
    debug_assert!(level <= order);
    let side: u32 = 1 << level;
    debug_assert!(
        x0.is_multiple_of(side) && y0.is_multiple_of(side),
        "block must be quadtree-aligned"
    );
    let cells = 1u64 << (2 * level);
    let d = xy_to_d(order, x0, y0);
    let start = d & !(cells - 1);
    (start, start + cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_orders() {
        for order in 1..=6u32 {
            let side = 1u32 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = xy_to_d(order, x, y);
                    assert_eq!(d_to_xy(order, d), (x, y), "order {order} ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn bijective_order2() {
        // All 16 ids hit exactly once.
        let mut seen = [false; 16];
        for x in 0..4 {
            for y in 0..4 {
                let d = xy_to_d(2, x, y) as usize;
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn curve_is_continuous() {
        // Consecutive ids map to 4-adjacent cells — the defining Hilbert
        // property.
        for order in [3u32, 5, 8] {
            let n = 1u64 << (2 * order);
            let (mut px, mut py) = d_to_xy(order, 0);
            for d in 1..n.min(1 << 12) {
                let (x, y) = d_to_xy(order, d);
                let dist = x.abs_diff(px) + y.abs_diff(py);
                assert_eq!(dist, 1, "order {order} step {d}");
                (px, py) = (x, y);
            }
        }
    }

    #[test]
    fn known_order1_layout() {
        // Order 1: the curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(xy_to_d(1, 0, 0), 0);
        assert_eq!(xy_to_d(1, 0, 1), 1);
        assert_eq!(xy_to_d(1, 1, 1), 2);
        assert_eq!(xy_to_d(1, 1, 0), 3);
    }

    #[test]
    fn roundtrip_max_order_samples() {
        let order = MAX_ORDER;
        let side = 1u64 << order;
        let mut seed = 12345u64;
        for _ in 0..1000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (seed >> 16) as u32 & (side as u32 - 1);
            let y = (seed >> 40) as u32 & (side as u32 - 1);
            let d = xy_to_d(order, x, y);
            assert!(d < side * side);
            assert_eq!(d_to_xy(order, d), (x, y));
        }
    }

    #[test]
    fn block_ranges_tile_the_curve() {
        // At order 4, level-2 blocks partition the 256 ids into 16
        // contiguous ranges of 16.
        let order = 4;
        let mut covered = vec![false; 256];
        for bx in 0..4u32 {
            for by in 0..4u32 {
                let (s, e) = block_range(order, bx * 4, by * 4, 2);
                assert_eq!(e - s, 16);
                for d in s..e {
                    let (x, y) = d_to_xy(order, d);
                    assert!(x / 4 == bx && y / 4 == by, "id {d} escapes block");
                    assert!(!covered[d as usize]);
                    covered[d as usize] = true;
                }
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn block_range_level0_is_single_cell() {
        let (s, e) = block_range(8, 13, 77, 0);
        assert_eq!(e - s, 1);
        assert_eq!(s, xy_to_d(8, 13, 77));
    }

    #[test]
    fn block_range_full_grid() {
        let (s, e) = block_range(5, 0, 0, 5);
        assert_eq!((s, e), (0, 1 << 10));
    }
}
