//! Sorted interval lists over Hilbert cell ids and the four list
//! relations of Sec 3.2.
//!
//! An [`IntervalList`] is a normalized sequence of half-open `[start,
//! end)` ranges: sorted, pairwise disjoint and non-adjacent (adjacent
//! runs are merged). Normalization is what makes each of the paper's four
//! relations a single linear merge-join:
//!
//! - **overlap** — some cell id belongs to both lists;
//! - **match** — the lists denote identical cell sets;
//! - **inside** — every interval of `X` is contained in one interval of
//!   `Y` (⇔ cell-set inclusion, thanks to normalization);
//! - **contains** — the converse of inside.
//!
//! The relations are implemented over bare `&[(u64, u64)]` slices
//! ([`ivs_overlaps`], [`ivs_matches`], [`ivs_inside`], [`ivs_contains`])
//! so an owned [`IntervalList`] and a borrowed span of a columnar
//! interval pool ([`IntervalsRef`]) share one code path.

/// Length ratio beyond which the list relations switch from merge-join
/// to per-interval binary search over the longer list.
const GALLOP_FACTOR: usize = 16;

/// `X, Y overlap` over normalized slices: the lists share at least one
/// cell id.
///
/// Single-pass merge-join, `O(|X| + |Y|)`; when one list is much shorter
/// it switches to per-interval binary search, `O(|X| log |Y|)` — the
/// common case when a tiny object (building) is checked against a huge
/// one (park, county).
pub fn ivs_overlaps(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    if a.len() * GALLOP_FACTOR < b.len() {
        return overlaps_gallop(a, b);
    }
    if b.len() * GALLOP_FACTOR < a.len() {
        return overlaps_gallop(b, a);
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (s1, e1) = a[i];
        let (s2, e2) = b[j];
        if s1 < e2 && s2 < e1 {
            return true;
        }
        if e1 <= e2 {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// Overlap via binary search: `small` must be the (much) shorter list.
fn overlaps_gallop(small: &[(u64, u64)], big: &[(u64, u64)]) -> bool {
    for &(s, e) in small {
        // First interval of `big` ending after `s` is the only one that
        // can overlap `[s, e)` from the left.
        let idx = big.partition_point(|&(_, be)| be <= s);
        if idx < big.len() && big[idx].0 < e {
            return true;
        }
    }
    false
}

/// `X, Y match` over normalized slices: identical interval sequences
/// (⇔ identical cell sets, thanks to normalization).
#[inline]
pub fn ivs_matches(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    a == b
}

/// `X inside Y` over normalized slices: every interval of `a` is
/// contained in one interval of `b` (⇔ cell-set inclusion).
///
/// Single-pass merge-join, `O(|X| + |Y|)`, switching to binary search
/// (`O(|X| log |Y|)`) when `b` is much longer.
pub fn ivs_inside(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    if a.len() * GALLOP_FACTOR < b.len() {
        return a.iter().all(|&(s, e)| {
            // The first Y interval ending at or after `e` is the only
            // candidate container.
            let idx = b.partition_point(|&(_, ye)| ye < e);
            idx < b.len() && b[idx].0 <= s
        });
    }
    let mut j = 0;
    'outer: for &(s, e) in a {
        while j < b.len() {
            let (ys, ye) = b[j];
            if ye < e {
                // This Y interval ends before X's does; X can only be
                // covered by a later Y interval (Y intervals are
                // disjoint and sorted).
                j += 1;
                continue;
            }
            if ys <= s {
                continue 'outer; // covered by b[j]
            }
            return false; // the first Y interval reaching e starts too late
        }
        return false;
    }
    true
}

/// `X contains Y` over normalized slices: the converse of [`ivs_inside`].
#[inline]
pub fn ivs_contains(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    ivs_inside(b, a)
}

/// A borrowed, `Copy`-able view of a normalized interval list — a span of
/// a columnar interval pool, or a whole [`IntervalList`] via
/// [`IntervalList::as_ref`]. Supports the same four relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalsRef<'a> {
    ivs: &'a [(u64, u64)],
}

impl<'a> IntervalsRef<'a> {
    /// Wraps a normalized slice (sorted, disjoint, non-adjacent, each
    /// `end > start`). Normalization is the caller's invariant — arena
    /// construction and the v2 loader validate it once per dataset.
    #[inline]
    pub fn new(ivs: &'a [(u64, u64)]) -> Self {
        IntervalsRef { ivs }
    }

    /// The underlying intervals.
    #[inline]
    pub fn intervals(self) -> &'a [(u64, u64)] {
        self.ivs
    }

    /// Number of intervals.
    #[inline]
    pub fn len(self) -> usize {
        self.ivs.len()
    }

    /// Whether the list denotes the empty cell set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.ivs.is_empty()
    }

    /// See [`ivs_overlaps`].
    #[inline]
    pub fn overlaps(self, other: IntervalsRef<'_>) -> bool {
        ivs_overlaps(self.ivs, other.ivs)
    }

    /// See [`ivs_matches`].
    #[inline]
    pub fn matches(self, other: IntervalsRef<'_>) -> bool {
        ivs_matches(self.ivs, other.ivs)
    }

    /// See [`ivs_inside`].
    #[inline]
    pub fn inside(self, other: IntervalsRef<'_>) -> bool {
        ivs_inside(self.ivs, other.ivs)
    }

    /// See [`ivs_contains`].
    #[inline]
    pub fn contains(self, other: IntervalsRef<'_>) -> bool {
        ivs_contains(self.ivs, other.ivs)
    }
}

/// A normalized list of half-open `[start, end)` id intervals.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct IntervalList {
    ivs: Vec<(u64, u64)>,
    num_cells: u64,
}

impl IntervalList {
    /// The empty list.
    pub fn new() -> IntervalList {
        IntervalList::default()
    }

    /// Builds a list from arbitrary `[start, end)` ranges, normalizing
    /// (sorting, dropping empties, merging overlaps and adjacencies).
    pub fn from_ranges(mut ranges: Vec<(u64, u64)>) -> IntervalList {
        ranges.retain(|&(s, e)| e > s);
        ranges.sort_unstable();
        let mut ivs: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match ivs.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => ivs.push((s, e)),
            }
        }
        let num_cells = ivs.iter().map(|&(s, e)| e - s).sum();
        IntervalList { ivs, num_cells }
    }

    /// Builds a list from individual cell ids (need not be sorted or
    /// unique).
    pub fn from_cells(mut cells: Vec<u64>) -> IntervalList {
        cells.sort_unstable();
        cells.dedup();
        let mut ivs: Vec<(u64, u64)> = Vec::new();
        for c in cells {
            match ivs.last_mut() {
                Some(last) if c == last.1 => last.1 += 1,
                _ => ivs.push((c, c + 1)),
            }
        }
        let num_cells = ivs.iter().map(|&(s, e)| e - s).sum();
        IntervalList { ivs, num_cells }
    }

    /// The normalized intervals.
    #[inline]
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.ivs
    }

    /// Number of intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Whether the list denotes the empty cell set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total number of cells covered.
    #[inline]
    pub fn num_cells(&self) -> u64 {
        self.num_cells
    }

    /// Whether cell `id` belongs to the list (binary search).
    pub fn contains_cell(&self, id: u64) -> bool {
        match self.ivs.binary_search_by(|&(s, _)| s.cmp(&id)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => id < self.ivs[i - 1].1,
        }
    }

    /// Iterates over every covered cell id (test/debug helper — linear in
    /// the *cell* count, not the interval count).
    pub fn iter_cells(&self) -> impl Iterator<Item = u64> + '_ {
        self.ivs.iter().flat_map(|&(s, e)| s..e)
    }

    /// Serialized size in bytes, counting each interval as two `u32` ids
    /// (valid for grid orders up to 16) — the accounting used for the
    /// paper's Table 2.
    #[inline]
    pub fn serialized_bytes(&self) -> usize {
        self.ivs.len() * 8
    }

    /// Conservative coarsening: aligns every interval *outward* to
    /// multiples of `2^bits` (start rounded down, end rounded up) and
    /// re-merges.
    ///
    /// The result covers a superset of the original cells with far fewer
    /// intervals — still a sound *conservative* approximation. Because
    /// Hilbert block boundaries are power-of-two aligned, rounding to
    /// `2^bits` corresponds to snapping to level-`bits/2` quadtree
    /// blocks.
    pub fn coarsen_conservative(&self, bits: u32) -> IntervalList {
        let mask = (1u64 << bits) - 1;
        IntervalList::from_ranges(
            self.ivs
                .iter()
                .map(|&(s, e)| (s & !mask, (e + mask) & !mask))
                .collect(),
        )
    }

    /// Progressive coarsening: aligns every interval *inward* to
    /// multiples of `2^bits` (start rounded up, end rounded down),
    /// dropping intervals that vanish.
    ///
    /// The result covers a subset of the original cells — still a sound
    /// *progressive* approximation.
    pub fn coarsen_progressive(&self, bits: u32) -> IntervalList {
        let mask = (1u64 << bits) - 1;
        IntervalList::from_ranges(
            self.ivs
                .iter()
                .map(|&(s, e)| ((s + mask) & !mask, e & !mask))
                .filter(|&(s, e)| e > s)
                .collect(),
        )
    }

    /// A borrowed [`IntervalsRef`] over this list.
    #[inline]
    pub fn as_ref(&self) -> IntervalsRef<'_> {
        IntervalsRef::new(&self.ivs)
    }

    /// `X, Y overlap`: the lists share at least one cell id. See
    /// [`ivs_overlaps`].
    #[inline]
    pub fn overlaps(&self, other: &IntervalList) -> bool {
        ivs_overlaps(&self.ivs, &other.ivs)
    }

    /// `X, Y match`: identical interval lists (⇔ identical cell sets,
    /// thanks to normalization).
    #[inline]
    pub fn matches(&self, other: &IntervalList) -> bool {
        ivs_matches(&self.ivs, &other.ivs)
    }

    /// `X inside Y`: every interval of `self` is contained in one
    /// interval of `other` (⇔ the cell set of `self` is a subset of
    /// `other`'s). See [`ivs_inside`]; the cached cell counts give an
    /// extra O(1) early exit the slice path cannot have.
    #[inline]
    pub fn inside(&self, other: &IntervalList) -> bool {
        if self.num_cells > other.num_cells {
            return false;
        }
        ivs_inside(&self.ivs, &other.ivs)
    }

    /// `X contains Y`: every interval of `other` is contained in one
    /// interval of `self`.
    #[inline]
    pub fn contains(&self, other: &IntervalList) -> bool {
        other.inside(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn il(ranges: &[(u64, u64)]) -> IntervalList {
        IntervalList::from_ranges(ranges.to_vec())
    }

    #[test]
    fn normalization_merges_and_sorts() {
        let l = il(&[(10, 12), (0, 3), (3, 5), (11, 15), (20, 20)]);
        assert_eq!(l.intervals(), &[(0, 5), (10, 15)]);
        assert_eq!(l.num_cells(), 10);
        assert_eq!(l.len(), 2);
        assert_eq!(l.serialized_bytes(), 16);
    }

    #[test]
    fn from_cells_builds_runs() {
        let l = IntervalList::from_cells(vec![7, 1, 2, 3, 9, 8, 3]);
        assert_eq!(l.intervals(), &[(1, 4), (7, 10)]);
        let cells: Vec<u64> = l.iter_cells().collect();
        assert_eq!(cells, vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn contains_cell_lookup() {
        let l = il(&[(5, 8), (12, 13), (100, 200)]);
        for id in [5, 6, 7, 12, 100, 199] {
            assert!(l.contains_cell(id), "{id}");
        }
        for id in [0, 4, 8, 11, 13, 99, 200, 1000] {
            assert!(!l.contains_cell(id), "{id}");
        }
        assert!(!IntervalList::new().contains_cell(0));
    }

    #[test]
    fn overlap_cases() {
        let a = il(&[(0, 5), (10, 15)]);
        assert!(a.overlaps(&il(&[(4, 6)])));
        assert!(a.overlaps(&il(&[(14, 20)])));
        assert!(a.overlaps(&a));
        assert!(!a.overlaps(&il(&[(5, 10)]))); // half-open: touching ≠ overlap
        assert!(!a.overlaps(&il(&[(15, 100)])));
        assert!(!a.overlaps(&IntervalList::new()));
        assert!(!IntervalList::new().overlaps(&a));
        // Symmetry.
        assert!(il(&[(4, 6)]).overlaps(&a));
        assert!(!il(&[(5, 10)]).overlaps(&a));
    }

    #[test]
    fn match_cases() {
        let a = il(&[(0, 5), (10, 15)]);
        let b = il(&[(10, 12), (0, 5), (12, 15)]); // same set, different input form
        assert!(a.matches(&b));
        assert!(!a.matches(&il(&[(0, 5)])));
        assert!(IntervalList::new().matches(&IntervalList::new()));
    }

    #[test]
    fn inside_cases() {
        let big = il(&[(0, 10), (20, 30)]);
        assert!(il(&[(2, 5)]).inside(&big));
        assert!(il(&[(0, 10)]).inside(&big));
        assert!(il(&[(2, 5), (25, 30)]).inside(&big));
        assert!(big.inside(&big));
        assert!(IntervalList::new().inside(&big));
        // Straddles a gap.
        assert!(!il(&[(5, 25)]).inside(&big));
        // Reaches past the end.
        assert!(!il(&[(25, 31)]).inside(&big));
        // Entirely in the gap.
        assert!(!il(&[(12, 15)]).inside(&big));
        // A set can't be inside the empty set.
        assert!(!il(&[(0, 1)]).inside(&IntervalList::new()));
        // Spanning two adjacent-but-separate Y intervals fails even if
        // every cell is covered... (cannot happen post-normalization, but
        // inclusion across a true gap must fail).
        assert!(!il(&[(8, 22)]).inside(&big));
    }

    #[test]
    fn contains_is_converse_of_inside() {
        let big = il(&[(0, 10), (20, 30)]);
        let small = il(&[(2, 5), (22, 23)]);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
    }

    #[test]
    fn gallop_paths_agree_with_merge_join() {
        // Asymmetric sizes force the binary-search paths; compare against
        // set semantics.
        use std::collections::HashSet;
        let big_ranges: Vec<(u64, u64)> = (0..2000u64).map(|i| (i * 10, i * 10 + 6)).collect();
        let big = IntervalList::from_ranges(big_ranges.clone());
        let big_set: HashSet<u64> = big_ranges.iter().flat_map(|&(s, e)| s..e).collect();
        let mut seed = 77u64;
        let mut rnd = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..500 {
            let s0 = rnd(20_100);
            let len = 1 + rnd(15);
            let small = IntervalList::from_ranges(vec![(s0, s0 + len)]);
            let small_set: HashSet<u64> = (s0..s0 + len).collect();
            assert_eq!(
                small.overlaps(&big),
                !small_set.is_disjoint(&big_set),
                "overlap gallop small->big at {s0}+{len}"
            );
            assert_eq!(
                big.overlaps(&small),
                !small_set.is_disjoint(&big_set),
                "overlap gallop big->small at {s0}+{len}"
            );
            assert_eq!(
                small.inside(&big),
                small_set.is_subset(&big_set),
                "inside gallop at {s0}+{len}"
            );
            assert_eq!(
                big.contains(&small),
                small_set.is_subset(&big_set),
                "contains gallop at {s0}+{len}"
            );
        }
    }

    #[test]
    fn slice_refs_agree_with_owned_lists() {
        let a = il(&[(0, 5), (10, 15), (20, 40)]);
        let cases = [
            il(&[(4, 6)]),
            il(&[(5, 10)]),
            il(&[(0, 5), (10, 15), (20, 40)]),
            il(&[(11, 14), (22, 23)]),
            il(&[]),
            il(&[(0, 100)]),
        ];
        for b in &cases {
            let (ra, rb) = (a.as_ref(), b.as_ref());
            assert_eq!(ra.overlaps(rb), a.overlaps(b));
            assert_eq!(ra.matches(rb), a.matches(b));
            assert_eq!(ra.inside(rb), a.inside(b));
            assert_eq!(ra.contains(rb), a.contains(b));
            assert_eq!(rb.inside(ra), b.inside(&a));
        }
        assert_eq!(a.as_ref().len(), a.len());
        assert!(!a.as_ref().is_empty());
        assert_eq!(a.as_ref().intervals(), a.intervals());
    }

    #[test]
    fn relations_agree_with_set_semantics() {
        // Cross-check all four relations against naive HashSet semantics
        // on pseudo-random lists.
        use std::collections::HashSet;
        let mut seed = 99u64;
        let mut rnd = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..200 {
            let mk = |rnd: &mut dyn FnMut(u64) -> u64| {
                let n = rnd(8);
                let mut v = Vec::new();
                for _ in 0..n {
                    let s = rnd(40);
                    v.push((s, s + 1 + rnd(6)));
                }
                v
            };
            let ra = mk(&mut rnd);
            let rb = mk(&mut rnd);
            let a = IntervalList::from_ranges(ra.clone());
            let b = IntervalList::from_ranges(rb.clone());
            let sa: HashSet<u64> = ra.iter().flat_map(|&(s, e)| s..e).collect();
            let sb: HashSet<u64> = rb.iter().flat_map(|&(s, e)| s..e).collect();
            assert_eq!(a.overlaps(&b), !sa.is_disjoint(&sb), "{ra:?} {rb:?}");
            assert_eq!(a.matches(&b), sa == sb, "{ra:?} {rb:?}");
            assert_eq!(a.inside(&b), sa.is_subset(&sb), "{ra:?} {rb:?}");
            assert_eq!(a.contains(&b), sb.is_subset(&sa), "{ra:?} {rb:?}");
        }
    }
}
